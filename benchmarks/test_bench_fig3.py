"""Figure 3 at paper scale: two co-located VMs."""

from __future__ import annotations

from functools import partial

from repro.experiments.fig34 import (
    run_bw_cpu_subfig,
    run_bw_util_subfig,
    run_cpu_subfig,
    run_io_cpu_subfig,
    run_io_util_subfig,
)


def _assert_passed(result):
    assert result.passed, [c.render() for c in result.failed_checks()]


def test_fig3a(benchmark):
    _assert_passed(
        benchmark.pedantic(partial(run_cpu_subfig, 2), rounds=1, iterations=1)
    )


def test_fig3b(benchmark):
    _assert_passed(
        benchmark.pedantic(
            partial(run_io_util_subfig, 2), rounds=1, iterations=1
        )
    )


def test_fig3c(benchmark):
    _assert_passed(
        benchmark.pedantic(
            partial(run_io_cpu_subfig, 2), rounds=1, iterations=1
        )
    )


def test_fig3d(benchmark):
    _assert_passed(
        benchmark.pedantic(
            partial(run_bw_util_subfig, 2), rounds=1, iterations=1
        )
    )


def test_fig3e(benchmark):
    _assert_passed(
        benchmark.pedantic(
            partial(run_bw_cpu_subfig, 2), rounds=1, iterations=1
        )
    )
