"""Figure 10 at paper scale: VOA vs VOU placement.

Full protocol: scenarios 0-3, 10 random placement orders each, 500
RUBiS clients, 120 s measured per trial.
"""

from __future__ import annotations

from repro.experiments.fig10 import run_fig10

_cache = {}


def _results(paper_models):
    if "fig10" not in _cache:
        _, multi = paper_models
        _cache["fig10"] = {
            r.experiment_id: r for r in run_fig10(model=multi)
        }
    return _cache["fig10"]


def test_fig10_full_run(benchmark, paper_models):
    _, multi = paper_models
    results = benchmark.pedantic(
        lambda: run_fig10(model=multi), rounds=1, iterations=1
    )
    _cache["fig10"] = {r.experiment_id: r for r in results}
    assert len(results) == 2
    for r in results:
        assert r.passed, (
            r.experiment_id,
            [c.render() for c in r.failed_checks()],
        )


def test_fig10a(paper_models):
    result = _results(paper_models)["fig10a"]
    assert result.passed, [c.render() for c in result.failed_checks()]


def test_fig10b(paper_models):
    result = _results(paper_models)["fig10b"]
    assert result.passed, [c.render() for c in result.failed_checks()]
