"""Figure 2 at paper scale: single-VM micro-benchmark sweeps,
120 s of 1 Hz sampling per intensity level."""

from __future__ import annotations

from repro.experiments.fig2 import (
    run_fig2a,
    run_fig2b,
    run_fig2c,
    run_fig2d,
    run_fig2e,
)


def _assert_passed(result):
    assert result.passed, [c.render() for c in result.failed_checks()]


def test_fig2a(benchmark):
    result = benchmark.pedantic(run_fig2a, rounds=1, iterations=1)
    _assert_passed(result)


def test_fig2b(benchmark):
    result = benchmark.pedantic(run_fig2b, rounds=1, iterations=1)
    _assert_passed(result)


def test_fig2c(benchmark):
    result = benchmark.pedantic(run_fig2c, rounds=1, iterations=1)
    _assert_passed(result)


def test_fig2d(benchmark):
    result = benchmark.pedantic(run_fig2d, rounds=1, iterations=1)
    _assert_passed(result)


def test_fig2e(benchmark):
    result = benchmark.pedantic(run_fig2e, rounds=1, iterations=1)
    _assert_passed(result)
