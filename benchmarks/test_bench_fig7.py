"""Figure 7 at paper scale: prediction-error CDFs for one RUBiS pair.

Full protocol: 300..700 clients, 10-minute 1 Hz runs, the Eq. (2) model
trained on the complete micro-benchmark sweep.  The benchmark times the
whole figure; the per-subfigure tests assert each panel's shape checks.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig789 import run_fig7

_cache = {}


def _results(paper_models):
    if "fig7" not in _cache:
        single, multi = paper_models
        _cache["fig7"] = {
            r.experiment_id: r
            for r in run_fig7(single_model=single, multi_model=multi)
        }
    return _cache["fig7"]


def test_fig7_full_run(benchmark, paper_models):
    single, multi = paper_models
    results = benchmark.pedantic(
        lambda: run_fig7(single_model=single, multi_model=multi),
        rounds=1,
        iterations=1,
    )
    _cache["fig7"] = {r.experiment_id: r for r in results}
    assert len(results) == 4
    for r in results:
        assert r.passed, (
            r.experiment_id,
            [c.render() for c in r.failed_checks()],
        )


@pytest.mark.parametrize("sub", ["a", "b", "c", "d"])
def test_fig7_checks(paper_models, sub):
    result = _results(paper_models)[f"fig7{sub}"]
    assert result.passed, [c.render() for c in result.failed_checks()]
