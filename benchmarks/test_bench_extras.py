"""Benchmarks for the extension artifacts (memconst, toolover) and the
SEDF scheduler ablation."""

from __future__ import annotations

import pytest

from repro.experiments.extras import run_memconst, run_toolover
from repro.xen import SedfScheduler, weighted_water_fill


def _assert_passed(result):
    assert result.passed, [c.render() for c in result.failed_checks()]


def test_memconst(benchmark):
    _assert_passed(benchmark.pedantic(run_memconst, rounds=1, iterations=1))


def test_toolover(benchmark):
    _assert_passed(benchmark.pedantic(run_toolover, rounds=1, iterations=1))


def test_sedf_vs_credit_ablation(benchmark):
    """DESIGN.md ablation 4: a reservation scheduler without extratime
    cannot reproduce the paper's work-conserving saturation anchors."""

    def run_sedf():
        sched = SedfScheduler(ncpus=2)
        sched.add_vcpu("a", period=0.1, slice_s=0.05, demand_frac=1.0)
        sched.add_vcpu("b", period=0.1, slice_s=0.05, demand_frac=1.0)
        return sched.allocate()

    got = benchmark(run_sedf)
    fluid = weighted_water_fill([100.0, 100.0], [256, 256], 189.6)
    # Credit fluid limit hits the paper's 94.8 % anchor; pure SEDF
    # reservations cap at 50 % -- a 1.9x gap.
    assert fluid[0] == pytest.approx(94.8, abs=0.2)
    assert got["a"] == pytest.approx(50.0, abs=0.2)
    assert fluid[0] / got["a"] > 1.8


def test_pmconsist(benchmark):
    from repro.experiments.extras import run_pmconsist

    _assert_passed(benchmark.pedantic(run_pmconsist, rounds=1, iterations=1))


def test_purity(benchmark):
    from repro.experiments.extras import run_purity

    _assert_passed(benchmark(run_purity))


def test_calibration_sensitivity(benchmark):
    """The headline anchors respond to their intended constants and are
    inert to unrelated ones (DESIGN.md calibration contract)."""
    from repro.analysis import sensitivity_matrix

    def build():
        return sensitivity_matrix(
            [
                "dom0_cpu_base",
                "dom0_ctl_quad",
                "hyp_cpu_base",
                "hyp_ctl_quad",
            ],
            {
                "dom0@99": lambda cal: cal.dom0_ctl_demand([99.0]),
                "hyp@99": lambda cal: cal.hyp_ctl_demand([99.0]),
            },
        )

    matrix = benchmark(build)
    assert matrix["dom0_cpu_base"]["dom0@99"].significant
    assert matrix["dom0_ctl_quad"]["dom0@99"].significant
    assert not matrix["dom0_cpu_base"]["hyp@99"].significant
    assert not matrix["hyp_ctl_quad"]["dom0@99"].significant
    assert matrix["hyp_ctl_quad"]["hyp@99"].significant


def test_fig6(benchmark):
    from repro.experiments.fig6 import run_fig6

    _assert_passed(benchmark.pedantic(run_fig6, rounds=1, iterations=1))
