"""Shared fixtures for the paper-scale benchmark suite.

The overhead models are trained once per session at full paper scale
(the 120 s / 1-2-4-VM Table II sweep) and reused by every prediction
and placement benchmark.
"""

from __future__ import annotations

import pytest

from repro.experiments.prediction import trained_models


@pytest.fixture(scope="session")
def paper_models():
    """(single_vm_model, multi_vm_model) trained at paper scale."""
    return trained_models(duration=120.0)
