"""Shared fixtures for the paper-scale benchmark suite.

The overhead models are trained once per session at full paper scale
(the 120 s / 1-2-4-VM Table II sweep) and reused by every prediction
and placement benchmark.

``pytest benchmarks --jobs N`` fans experiment cells out over N worker
processes via the perf executor (0 = all CPUs); results are merged in
cell order, so benchmark outputs are identical to serial runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.prediction import trained_models
from repro.perf.executor import set_default_jobs


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiment cell fan-out "
        "(0 = all CPUs, 1 = serial)",
    )


@pytest.fixture(scope="session", autouse=True)
def _executor_jobs(request: pytest.FixtureRequest):
    """Install the session-wide ``--jobs`` executor default."""
    jobs = request.config.getoption("--jobs")
    set_default_jobs(jobs)
    yield
    set_default_jobs(1)


@pytest.fixture(scope="session")
def paper_models():
    """(single_vm_model, multi_vm_model) trained at paper scale."""
    return trained_models(duration=120.0)
