"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. **Scheduler fidelity**: the water-fill fluid limit vs the discrete
   credit engine vs a naive equal-share allocator on the paper's
   saturation scenario.  Equal-share *fails* the 95 % / 47 % anchors --
   work conservation is load-bearing.
2. **Regression robustness**: OLS vs Rousseeuw LMS with corrupted
   training samples.
3. **alpha(N) form**: constant vs linear (the paper's choice) vs
   quadratic colocation coefficients, scored on held-out 3-VM data.
4. **DES vs analytic steady state**: the 120 s measured means match the
   converged machine snapshot, at very different cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    MultiVMOverheadModel,
    TrainingConfig,
    alpha_constant,
    alpha_linear,
    alpha_quadratic,
    error_report,
    fit_lms,
    fit_ols,
    gather_training_samples,
    samples_from_report,
)
from repro.monitor import MeasurementScript
from repro.sim import Simulator
from repro.workloads import CpuHog, PingLoad
from repro.xen import CreditScheduler, PhysicalMachine, VMSpec, fair_share, weighted_water_fill


class TestSchedulerAblation:
    def test_water_fill_vs_credit_engine(self, benchmark):
        """Fluid limit reproduces the discrete engine's allocation."""

        def discrete():
            cs = CreditScheduler(ncpus=2)
            for k in range(4):
                cs.add_vcpu(f"v{k}", demand_frac=0.95)
            return cs.run(6.0)

        got = benchmark(discrete)
        fluid = weighted_water_fill([95.0] * 4, [256.0] * 4, 200.0)
        for k in range(4):
            assert got[f"v{k}"] == pytest.approx(fluid[k], abs=6.0)

    def test_fair_share_misses_the_paper_anchors(self):
        """Without work conservation the 2-VM point lands at 84.8 %,
        not the measured 95 % (Dom0's unused share is stranded)."""
        remaining = 225.0 - 12.0 - 23.4
        wf = weighted_water_fill([100.0, 100.0, 23.4], [1, 1, 1], 225.0 - 12.0)
        fs = fair_share([100.0, 100.0, 23.4], 225.0 - 12.0)
        # Water-fill: Dom0 takes 23.4, guests split the rest ~95 each.
        assert wf[0] == pytest.approx(94.8, abs=0.5)
        # Equal share strands (71 - 23.4) points of Dom0's slice.
        assert fs[0] == pytest.approx(71.0, abs=0.5)
        assert sum(fs) < sum(wf) - 40.0
        assert remaining / 2 == pytest.approx(94.8, abs=0.1)


class TestRegressionAblation:
    @staticmethod
    def _corrupted_problem(outlier_frac: float):
        rng = np.random.default_rng(12)
        X = rng.uniform(0, 100, size=(400, 4))
        coef = np.array([0.12, 0.0, 0.004, 0.01])
        y = 16.8 + X @ coef + rng.normal(0, 0.3, 400)
        n_out = int(outlier_frac * len(y))
        y[:n_out] += rng.uniform(30, 80, n_out)
        return X, y, coef

    def test_lms_beats_ols_under_outliers(self, benchmark):
        X, y, coef = self._corrupted_problem(0.3)
        lms = benchmark.pedantic(
            lambda: fit_lms(X, y, rng=np.random.default_rng(0), n_subsets=400),
            rounds=1,
            iterations=1,
        )
        ols = fit_ols(X, y)
        lms_err = np.abs(lms.coef - coef).max()
        ols_err = np.abs(ols.coef - coef).max()
        assert lms_err < 0.01
        assert ols_err > 3 * lms_err

    def test_ols_wins_on_clean_data(self):
        X, y, coef = self._corrupted_problem(0.0)
        ols = fit_ols(X, y)
        lms = fit_lms(X, y, rng=np.random.default_rng(0), n_subsets=200)
        ols_err = np.abs(ols.coef - coef).max()
        lms_err = np.abs(lms.coef - coef).max()
        # On clean data OLS is the efficient estimator; LMS (with its
        # RLS polish) should be close but not better by much.
        assert ols_err < 0.005
        assert lms_err < 0.02


@pytest.fixture(scope="module")
def alpha_ablation_data():
    """Training samples (N=1,2,4) plus held-out 3-VM mixed samples."""
    train = gather_training_samples(
        TrainingConfig(vm_counts=(1, 2, 4), duration=40.0, warmup=3.0)
    )
    sim = Simulator(seed=404)
    pm = PhysicalMachine(sim, name="pm1")
    vms = [pm.create_vm(VMSpec(name=f"vm{k}")) for k in range(3)]
    CpuHog(40.0).attach(vms[0])
    CpuHog(25.0).attach(vms[1])
    PingLoad(900.0).attach(vms[2])
    pm.start()
    sim.run_until(3.0)
    held_out = samples_from_report(
        MeasurementScript(pm).run(duration=60.0)
    )
    return train, held_out


class TestAlphaAblation:
    def _score(self, alpha, data):
        train, held_out = data
        model = MultiVMOverheadModel.fit(train, alpha=alpha)
        pred = model.predict_samples(held_out)
        measured = np.array([s.targets["dom0.cpu"] for s in held_out])
        return error_report(pred["dom0.cpu"], measured).p90

    def test_linear_alpha_is_adequate(self, benchmark, alpha_ablation_data):
        """The paper assumes alpha(N) linear in N; on held-out 3-VM data
        the linear form must predict well and not lose badly to the
        alternatives."""
        linear = benchmark.pedantic(
            lambda: self._score(alpha_linear, alpha_ablation_data),
            rounds=1,
            iterations=1,
        )
        constant = self._score(alpha_constant, alpha_ablation_data)
        quadratic = self._score(alpha_quadratic, alpha_ablation_data)
        assert linear < 10.0
        assert linear <= max(constant, quadratic) + 1.0


class TestDesVsAnalytic:
    def test_measured_mean_matches_converged_snapshot(self, benchmark):
        """The 120 s DES measurement agrees with the settled snapshot;
        the DES adds realistic noise, not bias."""

        def measured():
            sim = Simulator(seed=77)
            pm = PhysicalMachine(sim, name="pm1")
            vm = pm.create_vm(VMSpec(name="vm1"))
            CpuHog(60.0).attach(vm)
            pm.start()
            sim.run_until(3.0)
            report = MeasurementScript(pm).run(duration=120.0)
            return report.mean("dom0", "cpu"), pm.snapshot().dom0_cpu_pct

        mean, snapshot = benchmark.pedantic(measured, rounds=1, iterations=1)
        assert mean == pytest.approx(snapshot, rel=0.01)


class TestUncertaintyAwareAdmission:
    def test_pessimistic_bound_covers_noise(self, benchmark):
        """DESIGN.md note on admission safety: the interval model's
        upper bound covers nearly all realized Dom0+hyp overhead, while
        the point prediction under-shoots about half the time."""
        from repro.models import TrainingConfig, gather_training_samples
        from repro.models.intervals import fit_intervals

        samples = gather_training_samples(
            TrainingConfig(vm_counts=(1,), duration=30.0, warmup=3.0)
        )
        # Shuffle before splitting: a sequential split would train on
        # the CPU/MEM sweeps and test on I/O/BW -- pure extrapolation.
        order = np.random.default_rng(5).permutation(len(samples))
        samples = [samples[i] for i in order]
        split = len(samples) // 2
        train, test = samples[:split], samples[split:]
        intervals = benchmark.pedantic(
            lambda: fit_intervals(train), rounds=1, iterations=1
        )
        under_point = covered = 0
        for s in test:
            x = s.vm_sum.as_array()
            dom0 = intervals["dom0.cpu"].predict(x, level=0.95)
            hyp = intervals["hyp.cpu"].predict(x, level=0.95)
            actual = s.targets["dom0.cpu"] + s.targets["hyp.cpu"]
            if dom0.point + hyp.point < actual:
                under_point += 1
            if dom0.hi + hyp.hi >= actual:
                covered += 1
        n = len(test)
        assert covered / n > 0.9
        assert under_point / n > 0.2  # point estimate misses often


class TestVerticalScalingAblation:
    def test_scaled_caps_vs_static_reservation(self, benchmark):
        """CloudScale's pitch: predictive caps deliver the same guest
        performance as an uncapped/static-100% reservation while leaving
        quantifiable reclaimable headroom."""
        from repro.models import TrainingConfig, train_multi_vm_model
        from repro.placement.autoscaler import VerticalScaler
        from repro.sim import Simulator
        from repro.workloads import CpuHog
        from repro.xen import PhysicalMachine, VMSpec

        model = train_multi_vm_model(
            TrainingConfig(vm_counts=(1, 2), duration=20.0, warmup=2.0)
        )

        def run_scaled():
            sim = Simulator(seed=91)
            pm = PhysicalMachine(sim, name="pm1")
            vm = pm.create_vm(VMSpec(name="app"))
            CpuHog(45.0).attach(vm)
            scaler = VerticalScaler(pm, model)
            pm.start()
            scaler.start()
            sim.run_until(60.0)
            return pm.snapshot().vm("app").cpu_pct, scaler.current_caps()["app"]

        granted, cap = benchmark.pedantic(run_scaled, rounds=1, iterations=1)
        assert granted == pytest.approx(45.3, abs=1.0)  # no throttling
        assert cap < 65.0  # ~35+ points reclaimable vs a 100 % reservation
