"""Figure 9 at paper scale: three RUBiS pairs per PM.

N=3 was never in the training grid (1/2/4), so this also exercises the
alpha(N) interpolation of Eq. (3).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig789 import run_fig9

_cache = {}


def _results(paper_models):
    if "fig9" not in _cache:
        single, multi = paper_models
        _cache["fig9"] = {
            r.experiment_id: r
            for r in run_fig9(single_model=single, multi_model=multi)
        }
    return _cache["fig9"]


def test_fig9_full_run(benchmark, paper_models):
    single, multi = paper_models
    results = benchmark.pedantic(
        lambda: run_fig9(single_model=single, multi_model=multi),
        rounds=1,
        iterations=1,
    )
    _cache["fig9"] = {r.experiment_id: r for r in results}
    assert len(results) == 4
    for r in results:
        assert r.passed, (
            r.experiment_id,
            [c.render() for c in r.failed_checks()],
        )


@pytest.mark.parametrize("sub", ["a", "b", "c", "d"])
def test_fig9_checks(paper_models, sub):
    result = _results(paper_models)[f"fig9{sub}"]
    assert result.passed, [c.render() for c in result.failed_checks()]
