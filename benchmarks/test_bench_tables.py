"""Benchmarks regenerating Tables I-III."""

from __future__ import annotations

from repro.experiments.tables import run_table1, run_table2, run_table3


def _assert_passed(result):
    assert result.passed, [c.render() for c in result.failed_checks()]


def test_table1(benchmark):
    result = benchmark(run_table1)
    _assert_passed(result)
    assert "xentop" in result.text


def test_table2(benchmark):
    result = benchmark(run_table2)
    _assert_passed(result)


def test_table3(benchmark):
    result = benchmark(run_table3)
    _assert_passed(result)
