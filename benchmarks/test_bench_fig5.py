"""Figure 5 at paper scale: intra-PM 64 Kb ping workload."""

from __future__ import annotations

from repro.experiments.fig5 import run_fig5a, run_fig5b


def _assert_passed(result):
    assert result.passed, [c.render() for c in result.failed_checks()]


def test_fig5a(benchmark):
    _assert_passed(benchmark.pedantic(run_fig5a, rounds=1, iterations=1))


def test_fig5b(benchmark):
    _assert_passed(benchmark.pedantic(run_fig5b, rounds=1, iterations=1))
