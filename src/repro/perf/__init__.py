"""Performance layer: parallel cell execution, result caching, profiling.

Three cooperating parts, all resting on the determinism contract the
lint and sanitizer layers enforce (a cell's output is a pure function
of code, configuration and seed):

* :mod:`repro.perf.cells` / :mod:`repro.perf.executor` -- experiment
  sweeps factored into independent :class:`~repro.perf.cells.Cell`
  descriptors, fanned out over a process pool with results merged in
  cell order so parallel output is byte-identical to serial
  (``repro run --jobs N``);
* :mod:`repro.perf.cache` -- a content-addressed on-disk cache keyed by
  (cell config, code fingerprint); warm re-runs are I/O-bound
  (``repro run --cache-dir D``, ``repro cache stats|clear``);
* :mod:`repro.perf.profiler` / :mod:`repro.perf.bench` -- per-phase
  wall-time and event-rate instrumentation plus the ``repro bench``
  harness emitting ``BENCH_<rev>.json`` perf-trajectory records;
* :mod:`repro.perf.supervisor` / :mod:`repro.perf.manifest` /
  :mod:`repro.perf.integrity` -- crash-safe execution: supervised
  fan-out (deadlines, bounded retries, serial degradation), run
  manifests with checkpoint/resume (``--run-dir`` / ``--resume``,
  ``repro runs status|resume|gc``), and checksummed artifact storage
  shared by the cache and the checkpoints.
"""

from repro.perf.bench import BENCH_SCHEMA, bench_cells, run_bench, write_bench
from repro.perf.cache import (
    CacheStats,
    ResultCache,
    canonical_json,
    cell_key,
    code_fingerprint,
)
from repro.perf.cells import (
    Cell,
    MicrobenchCell,
    PredictionCell,
    ScenarioTrialCell,
    content_digest,
)
from repro.perf.executor import (
    CellOutcome,
    default_cache,
    default_jobs,
    default_manifest,
    default_resume,
    default_supervisor,
    execution_defaults,
    resolve_jobs,
    run_cells,
    set_default_cache,
    set_default_jobs,
    set_default_manifest,
    set_default_resume,
    set_default_supervisor,
)
from repro.perf.integrity import (
    ArtifactIntegrityWarning,
    IntegrityError,
    read_artifact,
    write_artifact,
)
from repro.perf.manifest import RunManifest, RunStatus
from repro.perf.profiler import (
    PhaseStats,
    Profiler,
    default_profiler,
    profiled,
    set_default_profiler,
)
from repro.perf.supervisor import (
    CellExecutionError,
    SupervisionStats,
    SupervisorConfig,
    run_supervised,
)

__all__ = [
    "ArtifactIntegrityWarning",
    "BENCH_SCHEMA",
    "CacheStats",
    "Cell",
    "CellExecutionError",
    "CellOutcome",
    "IntegrityError",
    "MicrobenchCell",
    "PhaseStats",
    "PredictionCell",
    "Profiler",
    "ResultCache",
    "RunManifest",
    "RunStatus",
    "ScenarioTrialCell",
    "SupervisionStats",
    "SupervisorConfig",
    "bench_cells",
    "canonical_json",
    "cell_key",
    "code_fingerprint",
    "content_digest",
    "default_cache",
    "default_jobs",
    "default_manifest",
    "default_profiler",
    "default_resume",
    "default_supervisor",
    "execution_defaults",
    "profiled",
    "read_artifact",
    "resolve_jobs",
    "run_bench",
    "run_cells",
    "run_supervised",
    "set_default_cache",
    "set_default_jobs",
    "set_default_manifest",
    "set_default_profiler",
    "set_default_resume",
    "set_default_supervisor",
    "write_artifact",
]
