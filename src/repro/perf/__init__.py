"""Performance layer: parallel cell execution, result caching, profiling.

Three cooperating parts, all resting on the determinism contract the
lint and sanitizer layers enforce (a cell's output is a pure function
of code, configuration and seed):

* :mod:`repro.perf.cells` / :mod:`repro.perf.executor` -- experiment
  sweeps factored into independent :class:`~repro.perf.cells.Cell`
  descriptors, fanned out over a process pool with results merged in
  cell order so parallel output is byte-identical to serial
  (``repro run --jobs N``);
* :mod:`repro.perf.cache` -- a content-addressed on-disk cache keyed by
  (cell config, code fingerprint); warm re-runs are I/O-bound
  (``repro run --cache-dir D``, ``repro cache stats|clear``);
* :mod:`repro.perf.profiler` / :mod:`repro.perf.bench` -- per-phase
  wall-time and event-rate instrumentation plus the ``repro bench``
  harness emitting ``BENCH_<rev>.json`` perf-trajectory records.
"""

from repro.perf.bench import BENCH_SCHEMA, bench_cells, run_bench, write_bench
from repro.perf.cache import (
    CacheStats,
    ResultCache,
    canonical_json,
    code_fingerprint,
)
from repro.perf.cells import (
    Cell,
    MicrobenchCell,
    PredictionCell,
    ScenarioTrialCell,
    content_digest,
)
from repro.perf.executor import (
    CellOutcome,
    default_cache,
    default_jobs,
    execution_defaults,
    resolve_jobs,
    run_cells,
    set_default_cache,
    set_default_jobs,
)
from repro.perf.profiler import (
    PhaseStats,
    Profiler,
    default_profiler,
    profiled,
    set_default_profiler,
)

__all__ = [
    "BENCH_SCHEMA",
    "CacheStats",
    "Cell",
    "CellOutcome",
    "MicrobenchCell",
    "PhaseStats",
    "PredictionCell",
    "Profiler",
    "ResultCache",
    "ScenarioTrialCell",
    "bench_cells",
    "canonical_json",
    "code_fingerprint",
    "content_digest",
    "default_cache",
    "default_jobs",
    "default_profiler",
    "execution_defaults",
    "profiled",
    "resolve_jobs",
    "run_bench",
    "run_cells",
    "set_default_cache",
    "set_default_jobs",
    "set_default_profiler",
    "write_bench",
]
