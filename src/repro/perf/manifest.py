"""Run manifests: append-only cell ledgers with checkpoint/resume.

A *run directory* (``repro run ... --run-dir DIR``) makes an experiment
run crash-safe.  It holds

* ``manifest.jsonl`` -- an append-only ledger: one ``run`` record per
  invocation (code fingerprint, the CLI command, whether it resumed),
  one ``plan`` record per cell the run intends to execute, and one
  ``done``/``failed`` record per completed attempt sequence; and
* ``cells/<key>.pkl`` -- one integrity-guarded checkpoint per completed
  cell (the full :class:`~repro.perf.executor.CellOutcome`, sanitizer
  accounting included).

Because the ledger is append-only and every checkpoint write is atomic,
a SIGKILL at any instant leaves the directory readable: the loader
ignores a truncated final line, and a resumed run
(``--resume DIR`` / ``repro runs resume DIR``) re-executes exactly the
cells without a verified checkpoint.  Checkpoints are verified twice on
load -- the integrity header inside the file and the whole-file digest
recorded in the ``done`` ledger record -- so a corrupt or swapped
checkpoint demotes the cell to pending (with a structured warning)
instead of poisoning the resumed report.

Cell identity is :func:`repro.perf.cache.cell_key`: a SHA-256 over the
cell's canonical configuration plus the code fingerprint.  A resumed
run under changed code therefore matches no prior keys and recomputes
everything -- there is no way to resume stale results into fresh code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.perf import integrity
from repro.perf.cache import cell_key, code_fingerprint
from repro.perf.cells import Cell

#: Ledger file name inside a run directory.
MANIFEST_NAME = "manifest.jsonl"
#: Checkpoint subdirectory inside a run directory.
CELLS_DIR = "cells"
#: Payload schema of checkpointed cell outcomes.
CHECKPOINT_SCHEMA = "repro.perf.checkpoint/v1"

#: Cell states derived from the ledger (latest record wins).
STATUS_PENDING = "pending"
STATUS_DONE = "done"
STATUS_FAILED = "failed"


@dataclass
class CellRecord:
    """Latest known state of one planned cell."""

    key: str
    label: str
    group: str
    status: str = STATUS_PENDING
    attempts: int = 0
    digest: Optional[str] = None
    error: str = ""


@dataclass
class RunStatus:
    """Point-in-time summary of one run directory."""

    root: str
    fingerprint: str
    runs: int
    resumed_runs: int
    cells: Dict[str, CellRecord] = field(default_factory=dict)
    #: Malformed ledger lines skipped while loading (a truncated tail
    #: from a killed writer is expected to contribute at most one).
    skipped_lines: int = 0
    #: Last recorded CLI command (for ``repro runs resume``).
    command: List[str] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {STATUS_PENDING: 0, STATUS_DONE: 0, STATUS_FAILED: 0}
        for rec in self.cells.values():
            out[rec.status] += 1
        return out

    @property
    def complete(self) -> bool:
        """True when every planned cell has a ``done`` record."""
        return bool(self.cells) and all(
            rec.status == STATUS_DONE for rec in self.cells.values()
        )

    def render(self) -> str:
        counts = self.counts()
        lines = [
            f"run dir:           {self.root}",
            f"code fingerprint:  {self.fingerprint[:16]}",
            f"invocations:       {self.runs} ({self.resumed_runs} resumed)",
            f"planned cells:     {len(self.cells)}",
            f"  done:            {counts[STATUS_DONE]}",
            f"  failed:          {counts[STATUS_FAILED]}",
            f"  pending:         {counts[STATUS_PENDING]}",
        ]
        if self.command:
            lines.append(f"command:           {' '.join(self.command)}")
        if self.skipped_lines:
            lines.append(
                f"skipped ledger lines: {self.skipped_lines} "
                "(truncated/corrupt; harmless)"
            )
        failed = sorted(
            rec.label for rec in self.cells.values()
            if rec.status == STATUS_FAILED
        )
        if failed:
            lines.append("failed cells:      " + ", ".join(failed))
        verdict = (
            "complete" if self.complete
            else "resumable (pending/failed cells remain)"
            if self.cells else "empty (no cells planned yet)"
        )
        lines.append(f"state:             {verdict}")
        return "\n".join(lines)


class RunManifest:
    """One run directory: ledger append/load plus checkpoint storage."""

    def __init__(
        self, root: Path | str, *, fingerprint: Optional[str] = None
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.path = self.root / MANIFEST_NAME
        self.cells_dir = self.root / CELLS_DIR
        #: Keys already planned (loaded from the ledger, kept in sync).
        self._planned: Dict[str, CellRecord] = {}
        #: Cells restored from checkpoints this session (provenance).
        self.restored = 0
        #: Cells executed (not restored) this session.
        self.executed = 0
        status = self.status()
        self._planned = status.cells

    # -- ledger ----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()

    def open_run(self, command: Sequence[str], *, resumed: bool) -> None:
        """Record one CLI invocation against this run directory."""
        self._append(
            {
                "type": "run",
                "fingerprint": self.fingerprint,
                "command": list(command),
                "resumed": bool(resumed),
            }
        )

    def key(self, cell: Cell) -> str:
        return cell_key(cell, self.fingerprint)

    def plan(self, cells: Sequence[Cell]) -> None:
        """Append ``plan`` records for cells not yet in the ledger."""
        for cell in cells:
            key = self.key(cell)
            if key in self._planned:
                continue
            self._append(
                {
                    "type": "plan",
                    "key": key,
                    "label": cell.label(),
                    "group": cell.group,
                }
            )
            self._planned[key] = CellRecord(
                key=key, label=cell.label(), group=cell.group
            )

    def _checkpoint_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.pkl"

    def record_done(self, cell: Cell, outcome: Any, *, attempts: int) -> None:
        """Checkpoint one completed cell and append its ``done`` record."""
        key = self.key(cell)
        path = self._checkpoint_path(key)
        integrity.write_artifact(path, outcome, schema=CHECKPOINT_SCHEMA)
        digest = integrity.file_digest(path)
        self._append(
            {
                "type": STATUS_DONE,
                "key": key,
                "digest": digest,
                "attempts": attempts,
            }
        )
        rec = self._planned.setdefault(
            key, CellRecord(key=key, label=cell.label(), group=cell.group)
        )
        rec.status = STATUS_DONE
        rec.attempts = attempts
        rec.digest = digest
        self.executed += 1

    def record_failed(self, cell: Cell, *, attempts: int, error: str) -> None:
        """Append a ``failed`` record for one permanently failed cell."""
        key = self.key(cell)
        self._append(
            {
                "type": STATUS_FAILED,
                "key": key,
                "attempts": attempts,
                "error": error,
            }
        )
        rec = self._planned.setdefault(
            key, CellRecord(key=key, label=cell.label(), group=cell.group)
        )
        rec.status = STATUS_FAILED
        rec.attempts = attempts
        rec.error = error

    # -- resume ----------------------------------------------------------

    def load(self, cell: Cell) -> Optional[Any]:
        """A verified checkpointed outcome for ``cell``, else ``None``.

        Returns ``None`` for cells without a ``done`` record, and --
        with a structured warning -- for checkpoints that fail either
        the whole-file digest recorded in the ledger or the integrity
        header inside the file.  Either way the caller re-executes.
        """
        rec = self._planned.get(self.key(cell))
        if rec is None or rec.status != STATUS_DONE:
            return None
        path = self._checkpoint_path(rec.key)
        try:
            if rec.digest is not None:
                found = integrity.file_digest(path)
                if found != rec.digest:
                    raise integrity.IntegrityError(
                        path,
                        "checksum-mismatch",
                        "checkpoint digest does not match the manifest",
                    )
            outcome = integrity.read_artifact(path, schema=CHECKPOINT_SCHEMA)
        except FileNotFoundError:
            rec.status = STATUS_PENDING
            return None
        except OSError as exc:
            err = integrity.IntegrityError(path, "unreadable", str(exc))
            integrity.warn_corrupt(err, action="re-executing cell")
            rec.status = STATUS_PENDING
            return None
        except integrity.IntegrityError as exc:
            if exc.reason != "missing":
                integrity.warn_corrupt(exc, action="re-executing cell")
            rec.status = STATUS_PENDING
            return None
        self.restored += 1
        return outcome

    # -- inspection ------------------------------------------------------

    def status(self) -> RunStatus:
        """Replay the ledger into the latest per-cell state."""
        status = RunStatus(
            root=str(self.root), fingerprint=self.fingerprint,
            runs=0, resumed_runs=0,
        )
        if not self.path.is_file():
            return status
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return status
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                status.skipped_lines += 1
                continue
            if not isinstance(record, dict):
                status.skipped_lines += 1
                continue
            rtype = record.get("type")
            if rtype == "run":
                status.runs += 1
                status.resumed_runs += 1 if record.get("resumed") else 0
                command = record.get("command")
                if isinstance(command, list):
                    status.command = [str(c) for c in command]
            elif rtype == "plan":
                key = record.get("key")
                if isinstance(key, str) and key not in status.cells:
                    status.cells[key] = CellRecord(
                        key=key,
                        label=str(record.get("label", key[:8])),
                        group=str(record.get("group", "cell")),
                    )
            elif rtype in (STATUS_DONE, STATUS_FAILED):
                key = record.get("key")
                if not isinstance(key, str):
                    status.skipped_lines += 1
                    continue
                rec = status.cells.setdefault(
                    key,
                    CellRecord(key=key, label=key[:8], group="cell"),
                )
                rec.status = rtype
                rec.attempts = int(record.get("attempts", 0) or 0)
                rec.digest = record.get("digest")
                rec.error = str(record.get("error", ""))
            else:
                status.skipped_lines += 1
        return status

    # -- maintenance -----------------------------------------------------

    def gc(self) -> Dict[str, int]:
        """Drop unusable checkpoints; return removal counters.

        Removes (a) orphaned checkpoint files no ``done`` record
        references and (b) every checkpoint when the ledger was written
        by a different code fingerprint (its keys can never match
        again).  The ledger itself is never rewritten.
        """
        removed = {"orphaned": 0, "stale": 0, "bytes": 0}
        if not self.cells_dir.is_dir():
            return removed
        status = self.status()
        recorded_fp: Optional[str] = None
        if status.runs:
            # The ledger's own fingerprint: re-read the last run record.
            for line in self.path.read_text(encoding="utf-8").splitlines():
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and record.get("type") == "run":
                    recorded_fp = record.get("fingerprint")
        stale_run = recorded_fp is not None and recorded_fp != self.fingerprint
        done_keys = {
            rec.key for rec in status.cells.values()
            if rec.status == STATUS_DONE
        }
        for path in sorted(self.cells_dir.glob("*.pkl")):
            key = path.stem
            if stale_run:
                kind = "stale"
            elif key not in done_keys:
                kind = "orphaned"
            else:
                continue
            # A concurrent resume/gc may remove the file between the
            # directory listing and this sweep: stat defensively and
            # count bytes only for files this call actually removed.
            try:
                size = path.stat().st_size
                path.unlink()
            except FileNotFoundError:
                continue
            removed["bytes"] += size
            removed[kind] += 1
        return removed


#: Fleet-facing alias: a fleet sweep's manifest is a regular run
#: manifest whose checkpoints are *streamed* back out -- ``run_cells``'
#: incremental-consume mode restores, consumes and releases each
#: checkpointed ``CellOutcome`` in cell order instead of holding the
#: whole sweep in memory.
ClusterManifest = RunManifest
