"""The warm process pool shared across sweep phases.

Building a ``ProcessPoolExecutor`` is the single largest fixed cost of
a parallel sweep: every worker is a fresh interpreter fork that must
re-import the simulation stack before it can run its first cell.  The
plain executor paid that cost once *per fan-out*; a ``repro all`` run
with a dozen sweeps paid it a dozen times.

This module keeps **one** module-level pool warm across fan-outs.  The
pool is keyed by a *context signature* -- the worker count plus a
digest of the pre-pickled shared context (the sanitize/observability
defaults every worker needs) -- so a request with the same signature
reuses the running workers and a request with a different one tears
the old pool down first.  The shared context itself is pickled **once**
and shipped to each worker through the pool initializer, not with
every task.

Lifecycle:

* :func:`prestart` builds the pool *and spawns its workers* eagerly,
  so worker start-up overlaps the executor's cache/checkpoint probe;
* :func:`get_pool` returns the warm pool (building it on demand);
* :func:`discard` drops the handle after the supervisor terminated a
  broken pool's workers -- the next :func:`get_pool` builds fresh,
  which is exactly the supervisor's rebuild path;
* :func:`shutdown_pool` is the explicit clean shutdown (end of a CLI
  invocation / bench run), with an ``atexit`` backstop for API users.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional, Tuple

from repro.obs import runtime as obs

_pool: Optional[ProcessPoolExecutor] = None
_signature: Optional[Tuple[int, str]] = None

#: Executors dropped via :func:`discard` whose ``shutdown`` has not run
#: yet -- :func:`shutdown_pool` reaps them so a discarded pool's
#: manager thread cannot outlive the invocation.
_discarded: list = []

#: Worker-side shared context, set once per worker by the initializer.
_worker_context: Optional[Tuple[Any, ...]] = None


def _init_worker(blob: bytes) -> None:
    """Pool initializer: unpack the pre-pickled shared context."""
    global _worker_context
    _worker_context = pickle.loads(blob)


def worker_context() -> Optional[Tuple[Any, ...]]:
    """The shared context inside a pool worker (``None`` elsewhere)."""
    return _worker_context


def context_blob(context: Tuple[Any, ...]) -> bytes:
    """Pickle the shared context once, for the initializer and the key."""
    return pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)


def _sig(max_workers: int, blob: bytes) -> Tuple[int, str]:
    return (max_workers, hashlib.sha256(blob).hexdigest())


def get_pool(
    max_workers: int, context: Tuple[Any, ...]
) -> ProcessPoolExecutor:
    """The warm pool for ``(max_workers, context)``.

    Reuses the running pool when the signature matches; otherwise the
    old pool is shut down and a fresh one built with ``context``
    pre-pickled into its initializer.
    """
    global _pool, _signature
    blob = context_blob(context)
    sig = _sig(max_workers, blob)
    if _pool is not None and _signature == sig:
        return _pool
    shutdown_pool()
    _pool = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_init_worker,
        initargs=(blob,),
    )
    _signature = sig
    return _pool


def _warmup() -> None:
    """No-op warm-up task; submitting it forces the workers to spawn."""
    return None


def prestart(
    max_workers: int, context: Tuple[Any, ...]
) -> ProcessPoolExecutor:
    """Build the pool and spawn its workers now, ahead of first submit.

    ``ProcessPoolExecutor`` spawns workers lazily on first submit, so we
    submit a no-op: under the fork start method that launches the whole
    worker set *and* the executor's manager thread, letting interpreter
    start-up overlap whatever the caller does next (the executor calls
    this before its cache probe).  Going through ``submit`` rather than
    the private spawn hooks matters twice over -- the manager thread is
    what makes a later :func:`shutdown_pool` actually reap the workers,
    and forking behind a live manager thread (a reused warm pool) is
    the stdlib's documented deadlock.  Best effort: the warm-up result
    is never awaited and a failed submit leaves the pool cold but
    usable.
    """
    pool = get_pool(max_workers, context)
    try:
        pool.submit(_warmup)
    except RuntimeError:
        # Shut-down or broken pool (BrokenExecutor is a RuntimeError):
        # leave it cold, the supervisor's rebuild path handles the rest.
        pass
    return pool


def discard(pool: Optional[ProcessPoolExecutor] = None) -> None:
    """Drop the warm handle for a pool whose workers were terminated.

    Called by the executor after the supervisor tore down a broken
    pool (:func:`repro.perf.supervisor._terminate_workers` already
    reclaimed the processes); the next :func:`get_pool` builds fresh.
    The discarded executor is remembered so :func:`shutdown_pool` can
    still run its ``shutdown`` (releasing the manager thread) even
    though it is no longer the warm handle.  A ``pool`` argument that
    is not the current handle only joins that reap list.
    """
    global _pool, _signature
    target = pool if pool is not None else _pool
    if target is not None and not any(p is target for p in _discarded):
        _discarded.append(target)
    if pool is not None and pool is not _pool:
        return
    _pool = None
    _signature = None


def _shutdown_one(pool: ProcessPoolExecutor, *, wait: bool) -> None:
    """Best-effort ``shutdown``: a broken pool must not abort teardown."""
    try:
        pool.shutdown(wait=wait, cancel_futures=True)
    except Exception as exc:
        # A pool whose workers were killed mid-task can raise from its
        # own teardown; shutdown is idempotent cleanup, never fatal --
        # but the churn is worth a counter on supervision dashboards.
        obs.inc(
            "repro_pool_shutdown_errors_total", error=type(exc).__name__
        )


def shutdown_pool() -> None:
    """Explicitly shut the warm pool down (end of invocation / bench).

    Idempotent and safe to double-fire: the explicit CLI shutdown and
    the ``atexit`` backstop may both run, and either may race a pool
    that is already broken or was :func:`discard`-ed.  Discarded
    executors are reaped without waiting (their workers are gone).
    """
    global _pool, _signature
    pool, _pool, _signature = _pool, None, None
    stale, _discarded[:] = list(_discarded), []
    for executor in stale:
        _shutdown_one(executor, wait=False)
    if pool is not None and not any(p is pool for p in stale):
        _shutdown_one(pool, wait=True)


atexit.register(shutdown_pool)
