"""Parallel cell executor: deterministic fan-out over processes.

``run_cells`` executes a list of :class:`~repro.perf.cells.Cell`
descriptors and returns their values **in cell order, never completion
order** -- with every cell seeded independently (a property the serial
loops already had), parallel output is byte-identical to serial by
construction.  ``jobs=1`` runs inline in the calling process (the
serial path, zero overhead); ``jobs>1`` fans out over the **warm**
process pool of :mod:`repro.perf.pool` -- spun up before the cache
probe so worker start-up overlaps probing, kept alive across sweep
phases, fed runs of ``--chunk`` cells per task (deterministic
cost-model default) with the shared sanitize/obs context pre-pickled
once per pool.

Sanitizer accounting survives the fan-out: each worker runs its cell
under the parent's sanitize default, harvests that cell's per-stream
RNG draw counts and event-pop tally, and ships them home, where they
are merged into the parent's collector -- so ``repro run --sanitize
--jobs 4`` reports exactly the counts of a serial sanitized run.

Execution is *supervised*: pool fan-out routes through
:mod:`repro.perf.supervisor` (per-cell deadlines, bounded retries with
deterministic backoff, crashed-worker recovery, serial degradation),
and -- when a :class:`~repro.perf.manifest.RunManifest` is installed
(``--run-dir``) -- every planned cell is recorded to an append-only
ledger and every completed cell is checkpointed, so an interrupted run
resumed with ``--resume`` re-executes only what is missing.  Cells that
exhaust their attempts raise
:class:`~repro.perf.supervisor.CellExecutionError` *after* every other
cell has completed and been checkpointed, so a partial failure never
discards sibling work.

The module also owns the process-wide execution defaults (``--jobs``,
``--cache-dir``, ``--run-dir``/``--resume``, supervisor knobs) so the
CLI can configure fan-out without threading parameters through every
experiment signature -- the same pattern :mod:`repro.sim.sanitize`
uses for its ``--sanitize`` default.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.obs import runtime as obs
from repro.perf import pool as warmpool
from repro.perf.cache import ResultCache
from repro.perf.cells import Cell
from repro.perf.manifest import RunManifest
from repro.perf.profiler import default_profiler
from repro.perf.supervisor import (
    CellExecutionError,
    SupervisorConfig,
    run_supervised,
)
from repro.sim import sanitize


@dataclass
class CellOutcome:
    """Everything one executed cell produced.

    ``draw_counts`` / ``pops`` carry the sanitizer accounting of the
    cell's own simulators (empty when the cell ran unsanitized); they
    let the parent process report aggregate counts identical to a
    serial run, and let a cache hit replay the accounting of the run
    that produced it.  ``obs`` travels the same way: when observability
    is enabled the cell runs under a scoped collector and ships its
    metrics/spans snapshot home for the parent to merge (``None`` when
    observability was off).
    """

    value: Any
    events: int = 0
    draw_counts: Dict[str, int] = field(default_factory=dict)
    pops: int = 0
    obs: Optional[Dict[str, Any]] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None`` -> default, ``<=0`` -> CPUs."""
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def resolve_chunk(chunk: Optional[int], n_cells: int, jobs: int) -> int:
    """Normalize ``--chunk``: explicit ``N`` wins, ``None``/``0`` -> model.

    The cost model targets roughly four dispatch waves per worker:
    large enough to amortize per-task submit/pickle/IPC overhead,
    small enough that the tail of a sweep still load-balances.  A
    fan-out that does not fill one wave per worker runs unchunked.
    """
    if chunk is None:
        chunk = default_chunk()
    if chunk and chunk > 0:
        return int(chunk)
    if jobs <= 1 or n_cells <= jobs:
        return 1
    return max(1, -(-n_cells // (jobs * 4)))


# --------------------------------------------------------------------------
# Process-wide execution defaults (wired up by the CLI and bench harness).
# --------------------------------------------------------------------------

_default_jobs = 1
_default_chunk = 0
_default_cache: Optional[ResultCache] = None
_default_manifest: Optional[RunManifest] = None
_default_resume = False
_default_supervisor: Optional[SupervisorConfig] = None


def default_jobs() -> int:
    """Worker count used when callers do not pass ``jobs`` explicitly."""
    return _default_jobs


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide worker count (``repro ... --jobs N``)."""
    global _default_jobs
    _default_jobs = int(jobs)


def default_chunk() -> int:
    """Cells per pool task (``--chunk``); ``0`` selects the cost model."""
    return _default_chunk


def set_default_chunk(chunk: int) -> None:
    """Set the process-wide chunk size (``repro ... --chunk N``)."""
    global _default_chunk
    _default_chunk = max(0, int(chunk))


def default_cache() -> Optional[ResultCache]:
    """Cache used when callers do not pass one explicitly."""
    return _default_cache


def set_default_cache(cache: Optional[ResultCache]) -> None:
    """Install (or clear) the process-wide result cache."""
    global _default_cache
    _default_cache = cache


def default_manifest() -> Optional[RunManifest]:
    """Run manifest cells are recorded to (``--run-dir``), or ``None``."""
    return _default_manifest


def set_default_manifest(manifest: Optional[RunManifest]) -> None:
    """Install (or clear) the process-wide run manifest."""
    global _default_manifest
    _default_manifest = manifest


def default_resume() -> bool:
    """True when completed cells are restored from checkpoints."""
    return _default_resume


def set_default_resume(resume: bool) -> None:
    """Enable/disable checkpoint restoration (``--resume``)."""
    global _default_resume
    _default_resume = bool(resume)


def default_supervisor() -> SupervisorConfig:
    """Supervision knobs used by :func:`run_cells`."""
    return _default_supervisor or SupervisorConfig()


def set_default_supervisor(config: Optional[SupervisorConfig]) -> None:
    """Install (or clear) the process-wide supervisor configuration."""
    global _default_supervisor
    _default_supervisor = config


@contextmanager
def execution_defaults(
    *,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    manifest: Optional[RunManifest] = None,
    resume: Optional[bool] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> Iterator[None]:
    """Temporarily install execution defaults (CLI / test scoping)."""
    prev = (
        _default_jobs, _default_cache, _default_manifest,
        _default_resume, _default_supervisor, _default_chunk,
    )
    if jobs is not None:
        set_default_jobs(jobs)
    if chunk is not None:
        set_default_chunk(chunk)
    if cache is not None:
        set_default_cache(cache)
    if manifest is not None:
        set_default_manifest(manifest)
    if resume is not None:
        set_default_resume(resume)
    if supervisor is not None:
        set_default_supervisor(supervisor)
    try:
        yield
    finally:
        set_default_jobs(prev[0])
        set_default_cache(prev[1])
        set_default_manifest(prev[2])
        set_default_resume(prev[3])
        set_default_supervisor(prev[4])
        set_default_chunk(prev[5])


# --------------------------------------------------------------------------
# Execution.
# --------------------------------------------------------------------------


def _sanitized_execute(cell: Cell) -> CellOutcome:
    """Run one cell, harvesting its sanitizer accounting as a delta.

    Works in both the inline path and inside a pool worker: the delta
    of the process-wide collector across the run is exactly this cell's
    accounting, because cells execute one at a time per process.
    """
    before_counts = sanitize.aggregate_draw_counts()
    before_pops = sanitize.total_pops()
    value, events = cell.run()
    after_counts = sanitize.aggregate_draw_counts()
    draw_counts = {
        name: count - before_counts.get(name, 0)
        for name, count in after_counts.items()
        if count - before_counts.get(name, 0)
    }
    return CellOutcome(
        value=value,
        events=events,
        draw_counts=draw_counts,
        pops=sanitize.total_pops() - before_pops,
    )


def _plain_execute(cell: Cell) -> CellOutcome:
    """Run one cell without observability scoping."""
    if sanitize.default_enabled():
        return _sanitized_execute(cell)
    value, events = cell.run()
    return CellOutcome(value=value, events=events)


def _execute_cell(cell: Cell) -> CellOutcome:
    """Run one cell in the current process.

    With observability enabled the cell runs under its own scoped
    collector -- in a pool worker *and* inline -- so every outcome
    carries exactly its cell's snapshot and the parent merges them
    identically on both paths (and on cache/checkpoint replays).
    """
    if not obs.default_enabled():
        return _plain_execute(cell)
    previous = obs.installed()
    child = obs.install(obs.ObsCollector())
    try:
        with obs.span(
            "executor.cell", "executor", cell=cell.label(), group=cell.group
        ):
            outcome = _plain_execute(cell)
    finally:
        if previous is not None:
            obs.install(previous)
        else:
            obs.uninstall()
    outcome.obs = child.snapshot()
    return outcome


def _pool_worker(
    cell: Cell, sanitize_enabled: bool, obs_enabled: bool = False
) -> CellOutcome:
    """Top-level worker entry point (must be picklable by name)."""
    previous = sanitize.default_enabled()
    previous_obs = obs.default_enabled()
    sanitize.set_default(sanitize_enabled)
    obs.set_default(obs_enabled)
    try:
        return _execute_cell(cell)
    finally:
        sanitize.set_default(previous)
        obs.set_default(previous_obs)


def _chunk_worker(cells: Sequence[Cell]) -> List[CellOutcome]:
    """Pool entry point for one chunk of cells (picklable by name).

    The sanitize/obs context comes from the warm pool's initializer --
    shipped pre-pickled once per pool, never per task; outside a warm
    pool the worker falls back to its own (fork-inherited) defaults.
    Cells run sequentially, so the per-cell accounting deltas of
    :func:`_sanitized_execute` stay exact.
    """
    context = warmpool.worker_context()
    if context is None:
        context = (sanitize.default_enabled(), obs.default_enabled())
    sanitize_enabled, obs_enabled = context
    return [
        _pool_worker(cell, sanitize_enabled, obs_enabled) for cell in cells
    ]


def _merge_accounting(outcome: CellOutcome) -> None:
    """Fold a remote/cached cell's sanitizer accounting into this process.

    Registers a synthetic hook set carrying the cell's draw counts and
    pop tally, so ``aggregate_draw_counts`` / ``total_pops`` report the
    same totals a serial in-process run would have.
    """
    if not sanitize.default_enabled():
        return
    if not outcome.draw_counts and not outcome.pops:
        return
    hooks = sanitize.SanitizerHooks()
    hooks.draw_counts.update(outcome.draw_counts)
    hooks.pops = outcome.pops
    sanitize.register_hooks(hooks)


def _merge_obs(outcome: CellOutcome) -> None:
    """Fold a cell's observability snapshot into the parent collector.

    Cache hits and checkpoint restores replay the snapshot of the run
    that produced them, exactly as sanitizer accounting replays.
    """
    collector = obs.installed()
    snap = getattr(outcome, "obs", None)
    if collector is None or not snap:
        return
    collector.merge_snapshot(snap)


#: Marks an outcome slot whose value was handed to ``consume`` and
#: released -- distinct from ``None`` (still missing).
_CONSUMED = object()


def run_cells(
    cells: Sequence[Cell],
    *,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    phase: Optional[str] = None,
    manifest: Optional[RunManifest] = None,
    resume: Optional[bool] = None,
    supervisor: Optional[SupervisorConfig] = None,
    consume: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Execute ``cells`` and return their values in input order.

    Parameters
    ----------
    cells:
        The work items.  Each must be independently executable -- no
        cell may observe another's side effects.
    jobs:
        Worker processes; ``None`` uses :func:`default_jobs`, ``<= 0``
        uses the machine's CPU count, ``1`` runs inline.
    chunk:
        Cells dispatched to a worker per pool task; ``None`` uses
        :func:`default_chunk`, ``0`` picks the deterministic cost-model
        default (see :func:`resolve_chunk`).  Chunking only batches the
        transport -- outcomes still complete per cell, in cell order.
    cache:
        Optional :class:`ResultCache`; ``None`` uses the process-wide
        default (``--cache-dir``), which may itself be absent.
    phase:
        Profiler phase name; defaults to the first cell's ``group``.
    manifest:
        Optional :class:`~repro.perf.manifest.RunManifest`; ``None``
        uses the process-wide default (``--run-dir``).  When set, every
        cell is planned in the ledger and every completed cell is
        checkpointed before this function returns or raises.
    resume:
        When true (or the ``--resume`` default is installed), cells
        with a verified checkpoint in ``manifest`` are restored instead
        of executed.
    supervisor:
        Supervision knobs; ``None`` uses the process-wide default.
    consume:
        Incremental-consume (streaming) mode: ``consume(index, value)``
        is invoked for every cell **in strict cell order** as soon as
        the ordered prefix completes, and the outcome's slot is
        released immediately afterwards -- the fan-out never holds more
        than the out-of-order completion window in memory, which is
        what lets a fleet sweep aggregate thousands of cell summaries
        with bounded RSS.  Checkpointing, caching and sanitizer/obs
        accounting are unchanged (a resumed run re-consumes restored
        cells, so aggregators rebuild exactly).  The return value is
        then an empty list.  If a cell fails permanently, cells after
        it are *not* consumed (their order slot never fills) and
        :class:`CellExecutionError` is raised as usual.

    Raises
    ------
    CellExecutionError
        When one or more cells fail permanently despite retries.  All
        surviving cells have completed (and been checkpointed /
        cached) first, so a subsequent ``--resume`` run re-executes
        only the failed cells.
    """
    if not cells:
        return []
    jobs = resolve_jobs(jobs)
    if cache is None:
        cache = default_cache()
    if manifest is None:
        manifest = default_manifest()
    if resume is None:
        resume = default_resume()
    config = supervisor or default_supervisor()
    profiler = default_profiler()
    phase_name = phase or cells[0].group

    context = (sanitize.default_enabled(), obs.default_enabled())
    if jobs > 1 and len(cells) > 1:
        # Spin the warm pool up now so worker start-up overlaps the
        # cache/checkpoint probe below (probe first, submit only the
        # misses into the already-running pool).
        warmpool.prestart(jobs, context)

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    #: Running totals survive slot release in incremental-consume mode.
    events_total = 0
    hits = 0
    if manifest is not None:
        manifest.plan(cells)
        if resume:
            for i, cell in enumerate(cells):
                restored = manifest.load(cell)
                if restored is not None:
                    outcomes[i] = restored
                    events_total += restored.events
                    _merge_accounting(restored)
                    _merge_obs(restored)
    if cache is not None:
        for i, cell in enumerate(cells):
            if outcomes[i] is not None:
                continue
            cached = cache.get(cell)
            if cached is not None:
                outcomes[i] = cached
                events_total += cached.events
                _merge_accounting(cached)
                _merge_obs(cached)
                hits += 1
    missing = [i for i, out in enumerate(outcomes) if out is None]
    attempts: Dict[int, int] = {}
    if cache is not None:
        obs.inc("repro_executor_cache_hits_total", hits, phase=phase_name)
        obs.inc(
            "repro_executor_cache_misses_total", len(missing),
            phase=phase_name,
        )
    obs.inc("repro_executor_cells_total", len(cells), phase=phase_name)

    consumed_through = 0

    def drain() -> None:
        """Hand the completed ordered prefix to ``consume``, freeing
        each outcome slot as it goes (streaming mode only)."""
        nonlocal consumed_through
        while consumed_through < len(cells):
            outcome = outcomes[consumed_through]
            if outcome is None:
                return
            consume(consumed_through, outcome.value)
            outcomes[consumed_through] = _CONSUMED  # type: ignore[call-overload]
            consumed_through += 1

    def complete(i: int, outcome: CellOutcome, from_pool: bool) -> None:
        nonlocal events_total
        outcomes[i] = outcome
        events_total += outcome.events
        if from_pool:
            _merge_accounting(outcome)
        _merge_obs(outcome)
        if cache is not None:
            cache.put(cells[i], outcome)
        if manifest is not None:
            # The supervisor charges the attempt before running it, so
            # the live count already includes the one that succeeded.
            manifest.record_done(
                cells[i], outcome, attempts=attempts.get(i, 0) or 1
            )
        if consume is not None:
            drain()

    if consume is not None:
        # Cache/checkpoint hits may already form a consumable prefix.
        drain()

    timer = (
        profiler.phase(phase_name) if profiler is not None
        else _null_context()
    )
    use_pool = jobs > 1 and len(missing) > 1
    with timer, obs.span(
        "executor.run_cells", "executor",
        phase=phase_name, cells=len(cells), missing=len(missing),
    ):
        failures = run_supervised(
            [(i, cells[i]) for i in missing],
            jobs=jobs if len(missing) > 1 else 1,
            worker=_pool_worker,
            worker_args=context,
            execute_inline=_execute_cell,
            complete=complete,
            config=config,
            attempts_out=attempts,
            chunk=resolve_chunk(chunk, len(missing), jobs),
            chunk_worker=_chunk_worker,
            pool_factory=(
                (lambda workers: warmpool.get_pool(jobs, context))
                if use_pool else None
            ),
            pool_discard=warmpool.discard if use_pool else None,
        )

    if manifest is not None:
        for i, cell, error in failures:
            manifest.record_failed(
                cell, attempts=attempts.get(i, 0), error=error
            )
    if profiler is not None:
        profiler.record(
            phase_name,
            cells=len(cells),
            events=events_total,
            cache_hits=hits,
            cache_misses=len(missing) if cache is not None else 0,
        )
    if failures:
        raise CellExecutionError(
            [(cell.label(), error) for _, cell, error in failures]
        )
    if consume is not None:
        return []
    return [o.value for o in outcomes]  # type: ignore[union-attr]


@contextmanager
def _null_context() -> Iterator[None]:
    yield
