"""Parallel cell executor: deterministic fan-out over processes.

``run_cells`` executes a list of :class:`~repro.perf.cells.Cell`
descriptors and returns their values **in cell order, never completion
order** -- with every cell seeded independently (a property the serial
loops already had), parallel output is byte-identical to serial by
construction.  ``jobs=1`` runs inline in the calling process (the
serial path, zero overhead); ``jobs>1`` fans out over a
``ProcessPoolExecutor``.

Sanitizer accounting survives the fan-out: each worker runs its cell
under the parent's sanitize default, harvests that cell's per-stream
RNG draw counts and event-pop tally, and ships them home, where they
are merged into the parent's collector -- so ``repro run --sanitize
--jobs 4`` reports exactly the counts of a serial sanitized run.

The module also owns the process-wide execution defaults (``--jobs``,
``--cache-dir``) so the CLI can configure fan-out without threading
parameters through every experiment signature -- the same pattern
:mod:`repro.sim.sanitize` uses for its ``--sanitize`` default.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.perf.cache import ResultCache
from repro.perf.cells import Cell
from repro.perf.profiler import default_profiler
from repro.sim import sanitize


@dataclass
class CellOutcome:
    """Everything one executed cell produced.

    ``draw_counts`` / ``pops`` carry the sanitizer accounting of the
    cell's own simulators (empty when the cell ran unsanitized); they
    let the parent process report aggregate counts identical to a
    serial run, and let a cache hit replay the accounting of the run
    that produced it.
    """

    value: Any
    events: int = 0
    draw_counts: Dict[str, int] = field(default_factory=dict)
    pops: int = 0


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None`` -> default, ``<=0`` -> CPUs."""
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# --------------------------------------------------------------------------
# Process-wide execution defaults (wired up by the CLI and bench harness).
# --------------------------------------------------------------------------

_default_jobs = 1
_default_cache: Optional[ResultCache] = None


def default_jobs() -> int:
    """Worker count used when callers do not pass ``jobs`` explicitly."""
    return _default_jobs


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide worker count (``repro ... --jobs N``)."""
    global _default_jobs
    _default_jobs = int(jobs)


def default_cache() -> Optional[ResultCache]:
    """Cache used when callers do not pass one explicitly."""
    return _default_cache


def set_default_cache(cache: Optional[ResultCache]) -> None:
    """Install (or clear) the process-wide result cache."""
    global _default_cache
    _default_cache = cache


@contextmanager
def execution_defaults(
    *, jobs: Optional[int] = None, cache: Optional[ResultCache] = None
) -> Iterator[None]:
    """Temporarily install execution defaults (CLI / test scoping)."""
    prev_jobs, prev_cache = _default_jobs, _default_cache
    if jobs is not None:
        set_default_jobs(jobs)
    if cache is not None:
        set_default_cache(cache)
    try:
        yield
    finally:
        set_default_jobs(prev_jobs)
        set_default_cache(prev_cache)


# --------------------------------------------------------------------------
# Execution.
# --------------------------------------------------------------------------


def _sanitized_execute(cell: Cell) -> CellOutcome:
    """Run one cell, harvesting its sanitizer accounting as a delta.

    Works in both the inline path and inside a pool worker: the delta
    of the process-wide collector across the run is exactly this cell's
    accounting, because cells execute one at a time per process.
    """
    before_counts = sanitize.aggregate_draw_counts()
    before_pops = sanitize.total_pops()
    value, events = cell.run()
    after_counts = sanitize.aggregate_draw_counts()
    draw_counts = {
        name: count - before_counts.get(name, 0)
        for name, count in after_counts.items()
        if count - before_counts.get(name, 0)
    }
    return CellOutcome(
        value=value,
        events=events,
        draw_counts=draw_counts,
        pops=sanitize.total_pops() - before_pops,
    )


def _execute_cell(cell: Cell) -> CellOutcome:
    """Run one cell in the current process."""
    if sanitize.default_enabled():
        return _sanitized_execute(cell)
    value, events = cell.run()
    return CellOutcome(value=value, events=events)


def _pool_worker(cell: Cell, sanitize_enabled: bool) -> CellOutcome:
    """Top-level worker entry point (must be picklable by name)."""
    previous = sanitize.default_enabled()
    sanitize.set_default(sanitize_enabled)
    try:
        return _execute_cell(cell)
    finally:
        sanitize.set_default(previous)


def _merge_accounting(outcome: CellOutcome) -> None:
    """Fold a remote/cached cell's sanitizer accounting into this process.

    Registers a synthetic hook set carrying the cell's draw counts and
    pop tally, so ``aggregate_draw_counts`` / ``total_pops`` report the
    same totals a serial in-process run would have.
    """
    if not sanitize.default_enabled():
        return
    if not outcome.draw_counts and not outcome.pops:
        return
    hooks = sanitize.SanitizerHooks()
    hooks.draw_counts.update(outcome.draw_counts)
    hooks.pops = outcome.pops
    sanitize.register_hooks(hooks)


def run_cells(
    cells: Sequence[Cell],
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    phase: Optional[str] = None,
) -> List[Any]:
    """Execute ``cells`` and return their values in input order.

    Parameters
    ----------
    cells:
        The work items.  Each must be independently executable -- no
        cell may observe another's side effects.
    jobs:
        Worker processes; ``None`` uses :func:`default_jobs`, ``<= 0``
        uses the machine's CPU count, ``1`` runs inline.
    cache:
        Optional :class:`ResultCache`; ``None`` uses the process-wide
        default (``--cache-dir``), which may itself be absent.
    phase:
        Profiler phase name; defaults to the first cell's ``group``.
    """
    if not cells:
        return []
    jobs = resolve_jobs(jobs)
    if cache is None:
        cache = default_cache()
    profiler = default_profiler()
    phase_name = phase or cells[0].group

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    hits = 0
    if cache is not None:
        for i, cell in enumerate(cells):
            cached = cache.get(cell)
            if cached is not None:
                outcomes[i] = cached
                _merge_accounting(cached)
                hits += 1
    missing = [i for i, out in enumerate(outcomes) if out is None]

    def complete(i: int, outcome: CellOutcome) -> None:
        outcomes[i] = outcome
        if cache is not None:
            cache.put(cells[i], outcome)

    timer = (
        profiler.phase(phase_name) if profiler is not None
        else _null_context()
    )
    with timer:
        if jobs == 1 or len(missing) <= 1:
            for i in missing:
                complete(i, _execute_cell(cells[i]))
        else:
            enabled = sanitize.default_enabled()
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(missing))
            ) as pool:
                futures = [
                    (i, pool.submit(_pool_worker, cells[i], enabled))
                    for i in missing
                ]
                # Collect in submission order: merged results and
                # sanitizer accounting never depend on completion order.
                for i, future in futures:
                    outcome = future.result()
                    _merge_accounting(outcome)
                    complete(i, outcome)

    if profiler is not None:
        profiler.record(
            phase_name,
            cells=len(cells),
            events=sum(o.events for o in outcomes if o is not None),
            cache_hits=hits,
            cache_misses=len(missing) if cache is not None else 0,
        )
    return [o.value for o in outcomes]  # type: ignore[union-attr]


@contextmanager
def _null_context() -> Iterator[None]:
    yield
