"""Supervised pool execution: deadlines, bounded retries, degradation.

The plain executor trusts its workers; this module does not.  It wraps
the process-pool fan-out of :func:`repro.perf.executor.run_cells` with

* **per-cell deadlines** -- a worker that wedges (infinite loop, stuck
  I/O) trips a timeout watchdog, the pool is torn down (hung workers
  terminated), and the cell is retried;
* **bounded retries with deterministic backoff** -- a cell whose
  execution raises or times out is re-run up to
  :attr:`SupervisorConfig.max_attempts` times, waiting
  ``backoff_base_s * 2**(attempt-1)`` seconds between attempts (a fixed
  schedule, never jittered: supervision timing must not introduce a
  random stream);
* **crashed-worker detection** -- a SIGKILLed/OOM'd worker surfaces as
  ``BrokenProcessPool``; unfinished cells are requeued into a fresh
  pool, up to :attr:`SupervisorConfig.max_pool_rebuilds` rebuilds;
* **graceful degradation to serial** -- when the pool keeps breaking,
  the remaining cells run inline in the supervising process, which can
  always make progress;
* **chunked dispatch** -- with ``chunk > 1`` consecutive cells ship to
  a worker as one task (amortizing submit/pickle/result overhead);
  a chunk's deadline scales with its size, and a failed or timed-out
  chunk is split and retried as singletons so the culprit cell is
  isolated under its own unscaled deadline;
* **warm-pool reuse** -- a caller-provided ``pool_factory`` supplies
  the (shared, warm) pool instead of building one per wave; on clean
  completion the pool is left running for the next fan-out, on
  breakage its workers are terminated and ``pool_discard`` invalidates
  the handle so the rebuild path constructs a fresh one.

None of this changes *what* a cell computes: a cell is a pure function
of (code, configuration, seed), so a retry -- in a fresh worker or
inline -- produces byte-identical output, and the executor still merges
outcomes in cell order.  Supervision changes only whether a transient
failure costs the whole run.

Wall-clock reads (deadline arithmetic, backoff sleeps) are confined to
the two funnel helpers below, each carrying a justified
``noqa[REP002]`` -- the same precedent as
:func:`repro.perf.profiler.wall_now`, and enforced by the REP011 lint
rule for this file.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import runtime as _obs
from repro.perf.cells import Cell


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervised executor (``--cell-deadline`` etc.)."""

    #: Seconds to wait on one cell's result before declaring the worker
    #: hung; ``None`` disables the watchdog.
    deadline_s: Optional[float] = 600.0
    #: Total attempts per cell (first run + retries).
    max_attempts: int = 3
    #: Backoff before attempt ``k`` is ``backoff_base_s * 2**(k-2)``
    #: seconds (nothing before the first attempt).
    backoff_base_s: float = 0.05
    #: Fresh pools built after breakage before degrading to serial.
    max_pool_rebuilds: int = 2
    #: Degrade to inline execution when the pool is unrecoverable.
    serial_fallback: bool = True

    def backoff_s(self, attempt: int) -> float:
        """Deterministic delay before attempt number ``attempt`` (2-based)."""
        if attempt <= 1 or self.backoff_base_s <= 0:
            return 0.0
        return self.backoff_base_s * (2.0 ** (attempt - 2))


@dataclass
class SupervisionStats:
    """What supervision had to do during one CLI invocation.

    The CLI reads this to pick an exit code: permanent failures are
    fatal (nonzero), recovered retries are a warning (zero + summary).
    """

    #: Cell executions started (including retries).
    attempts: int = 0
    #: Attempts beyond the first, per cell label.
    retries: int = 0
    #: Labels of cells that failed at least once but eventually passed.
    recovered: List[str] = field(default_factory=list)
    #: (label, error) of cells that exhausted their attempts.
    failed: List[Tuple[str, str]] = field(default_factory=list)
    #: Deadline expiries observed.
    timeouts: int = 0
    #: Fresh pools built after breakage.
    pool_rebuilds: int = 0
    #: 1 when the run degraded to inline execution.
    serial_fallbacks: int = 0

    def merge(self, other: "SupervisionStats") -> None:
        self.attempts += other.attempts
        self.retries += other.retries
        self.recovered.extend(other.recovered)
        self.failed.extend(other.failed)
        self.timeouts += other.timeouts
        self.pool_rebuilds += other.pool_rebuilds
        self.serial_fallbacks += other.serial_fallbacks

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (embedded in BENCH records and summaries)."""
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "recovered": sorted(self.recovered),
            "failed": [[label, error] for label, error in self.failed],
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
        }

    def summary(self) -> str:
        """One-line digest for the CLI's stderr warning."""
        parts = [
            f"{self.attempts} attempt(s)",
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
        ]
        if self.recovered:
            parts.append(
                f"recovered: {', '.join(sorted(set(self.recovered)))}"
            )
        if self.timeouts:
            parts.append(f"{self.timeouts} deadline expiries")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuild(s)")
        if self.serial_fallbacks:
            parts.append("degraded to serial execution")
        if self.failed:
            parts.append(
                "failed: " + ", ".join(label for label, _ in self.failed)
            )
        return "supervisor: " + "; ".join(parts)


class CellExecutionError(RuntimeError):
    """One or more cells failed permanently despite supervision."""

    def __init__(self, failures: List[Tuple[str, str]]) -> None:
        self.failures = list(failures)
        labels = ", ".join(label for label, _ in self.failures)
        super().__init__(
            f"{len(self.failures)} cell(s) failed permanently: {labels}"
        )


# --------------------------------------------------------------------------
# Process-wide stats collector (reset by the CLI per invocation).
# --------------------------------------------------------------------------

_stats = SupervisionStats()


def stats() -> SupervisionStats:
    """The stats accumulated since the last :func:`reset_stats`."""
    return _stats


def reset_stats() -> SupervisionStats:
    """Start a fresh collection window; return the new collector."""
    global _stats
    _stats = SupervisionStats()
    return _stats


# --------------------------------------------------------------------------
# Wall-clock funnels (the only sanctioned readers in this module).
# --------------------------------------------------------------------------


def _clock() -> float:
    """Monotonic seconds for deadline arithmetic."""
    return time.monotonic()  # repro: noqa[REP002] supervision deadlines measure real worker liveness, never simulated time


def _backoff_sleep(seconds: float) -> None:
    """Wait out one deterministic backoff interval."""
    if seconds > 0:
        time.sleep(seconds)  # repro: noqa[REP002] retry backoff paces real process restarts, never simulated time


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Forcefully reclaim a pool whose workers may be hung.

    ``shutdown(wait=False)`` alone leaves a wedged worker running
    forever; terminating the worker processes is the only way to
    reclaim them.  ``_processes`` is stdlib-private, so failure to
    reach it degrades to a plain shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except (OSError, ValueError, AttributeError):
            continue
    pool.shutdown(wait=False, cancel_futures=True)


# --------------------------------------------------------------------------
# The supervised fan-out.
# --------------------------------------------------------------------------

#: ``complete(index, outcome, from_pool)`` -- the executor's merge hook.
CompleteFn = Callable[[int, Any, bool], None]

#: One unit of pool dispatch: a run of consecutive ``(index, cell)``s.
Group = List[Tuple[int, Cell]]


def _chunked(pending: List[Tuple[int, Cell]], size: int) -> List[Group]:
    """Group consecutive work items into dispatch units of ``size``."""
    if size <= 1:
        return [[item] for item in pending]
    return [pending[k:k + size] for k in range(0, len(pending), size)]


def _group_label(group: Group) -> str:
    if len(group) == 1:
        return group[0][1].label()
    return f"chunk[{len(group)}@{group[0][1].label()}]"


def run_supervised(
    pending: List[Tuple[int, Cell]],
    *,
    jobs: int,
    worker: Callable[..., Any],
    worker_args: Tuple[Any, ...],
    execute_inline: Callable[[Cell], Any],
    complete: CompleteFn,
    config: Optional[SupervisorConfig] = None,
    attempts_out: Optional[Dict[int, int]] = None,
    chunk: int = 1,
    chunk_worker: Optional[Callable[..., Any]] = None,
    pool_factory: Optional[Callable[[int], ProcessPoolExecutor]] = None,
    pool_discard: Optional[Callable[[ProcessPoolExecutor], None]] = None,
) -> List[Tuple[int, Cell, str]]:
    """Execute ``pending`` cells under supervision; return failures.

    ``worker`` is the picklable pool entry point, invoked as
    ``worker(cell, *worker_args)``; ``execute_inline`` runs a cell in
    the supervising process (serial path / degraded mode).  Completed
    cells are reported through ``complete`` in completion order -- the
    caller owns ordering, checkpointing and accounting.  Returns the
    ``(index, cell, error)`` triples of cells that exhausted their
    attempts; the caller decides whether that is fatal.

    With ``chunk > 1`` and a ``chunk_worker``, runs of ``chunk``
    consecutive cells are submitted as one task --
    ``chunk_worker(cells_tuple)`` must return one outcome per cell, in
    order.  ``pool_factory(workers)``, when given, supplies the pool
    (the warm-pool path); a pool it supplied is left running on clean
    completion and reported through ``pool_discard`` after breakage.
    """
    config = config or SupervisorConfig()
    baseline = (
        _stats.attempts, _stats.retries, _stats.timeouts,
        _stats.pool_rebuilds, _stats.serial_fallbacks,
        len(_stats.recovered), len(_stats.failed),
    )
    try:
        return _run_supervised(
            pending,
            jobs=jobs,
            worker=worker,
            worker_args=worker_args,
            execute_inline=execute_inline,
            complete=complete,
            config=config,
            attempts_out=attempts_out,
            chunk=chunk,
            chunk_worker=chunk_worker,
            pool_factory=pool_factory,
            pool_discard=pool_discard,
        )
    finally:
        _publish_obs_counters(baseline)


def _publish_obs_counters(baseline: Tuple[int, ...]) -> None:
    """Mirror this fan-out's SupervisionStats deltas into obs counters."""
    if _obs.installed() is None:
        return
    current = (
        _stats.attempts, _stats.retries, _stats.timeouts,
        _stats.pool_rebuilds, _stats.serial_fallbacks,
        len(_stats.recovered), len(_stats.failed),
    )
    names = (
        "repro_supervisor_attempts_total",
        "repro_supervisor_retries_total",
        "repro_supervisor_timeouts_total",
        "repro_supervisor_pool_rebuilds_total",
        "repro_supervisor_serial_fallbacks_total",
        "repro_supervisor_recovered_total",
        "repro_supervisor_failed_total",
    )
    for name, before, after in zip(names, baseline, current):
        _obs.inc(name, max(0, after - before))


def _run_supervised(
    pending: List[Tuple[int, Cell]],
    *,
    jobs: int,
    worker: Callable[..., Any],
    worker_args: Tuple[Any, ...],
    execute_inline: Callable[[Cell], Any],
    complete: CompleteFn,
    config: SupervisorConfig,
    attempts_out: Optional[Dict[int, int]] = None,
    chunk: int = 1,
    chunk_worker: Optional[Callable[..., Any]] = None,
    pool_factory: Optional[Callable[[int], ProcessPoolExecutor]] = None,
    pool_discard: Optional[Callable[[ProcessPoolExecutor], None]] = None,
) -> List[Tuple[int, Cell, str]]:
    # ``attempts_out`` (when given) is maintained *live*, so the
    # caller's completion hook can record the attempt count that
    # produced each outcome.
    attempts: Dict[int, int] = (
        attempts_out if attempts_out is not None else {}
    )
    attempts.update({i: 0 for i, _ in pending})
    ever_failed: Dict[int, bool] = {i: False for i, _ in pending}
    timed_out: Dict[int, bool] = {i: False for i, _ in pending}
    failures: List[Tuple[int, Cell, str]] = []
    if chunk_worker is None:
        chunk = 1
    queue: List[Group] = _chunked(list(pending), chunk)
    rebuilds = 0
    serial = jobs <= 1

    def _giveup(i: int, cell: Cell, error: str) -> None:
        failures.append((i, cell, error))
        _stats.failed.append((cell.label(), error))

    def _succeed(i: int, cell: Cell, outcome: Any, from_pool: bool) -> None:
        if ever_failed[i]:
            _stats.recovered.append(cell.label())
        complete(i, outcome, from_pool)

    def _charge(i: int) -> None:
        attempts[i] += 1
        _stats.attempts += 1
        if attempts[i] > 1:
            _stats.retries += 1

    def _uncharge(i: int) -> None:
        attempts[i] -= 1
        _stats.attempts -= 1
        if attempts[i] > 0:
            _stats.retries -= 1

    def _run_inline(i: int, cell: Cell) -> None:
        while True:
            _backoff_sleep(config.backoff_s(attempts[i] + 1))
            _charge(i)
            try:
                with _obs.span(
                    "supervisor.attempt", "supervisor",
                    cell=cell.label(), attempt=attempts[i],
                ):
                    outcome = execute_inline(cell)
            except Exception as exc:
                ever_failed[i] = True
                if attempts[i] >= config.max_attempts:
                    _giveup(i, cell, f"{type(exc).__name__}: {exc}")
                    return
                continue
            _succeed(i, cell, outcome, from_pool=False)
            return

    def _fail_group(group: Group, error: str, requeue: List[Group]) -> None:
        """Retry policy after one failed group attempt.

        A singleton is requeued as-is; a failed chunk is split and its
        members retried as singletons, isolating the culprit cell.
        """
        for i, cell in group:
            ever_failed[i] = True
            if attempts[i] >= config.max_attempts:
                _giveup(i, cell, error)
            else:
                requeue.append([(i, cell)])

    def _succeed_group(
        group: Group, outcome: Any, requeue: List[Group]
    ) -> None:
        if len(group) == 1:
            i, cell = group[0]
            _succeed(i, cell, outcome, from_pool=True)
            return
        results = (
            list(outcome) if isinstance(outcome, (list, tuple)) else None
        )
        if results is None or len(results) != len(group):
            _fail_group(
                group,
                f"chunk worker returned "
                f"{type(outcome).__name__} instead of "
                f"{len(group)} outcomes",
                requeue,
            )
            return
        for (i, cell), value in zip(group, results):
            _succeed(i, cell, value, from_pool=True)

    while queue:
        if serial:
            for group in queue:
                for i, cell in group:
                    _run_inline(i, cell)
            queue = []
            break

        requeue: List[Group] = []
        owns_pool = pool_factory is None
        pool = (
            ProcessPoolExecutor(max_workers=min(jobs, len(queue)))
            if owns_pool
            else pool_factory(min(jobs, len(queue)))
        )
        pool_broken = False
        try:
            futures = []
            for qpos, group in enumerate(queue):
                _backoff_sleep(config.backoff_s(attempts[group[0][0]] + 1))
                for i, _ in group:
                    _charge(i)
                try:
                    if len(group) == 1:
                        future = pool.submit(
                            worker, group[0][1], *worker_args
                        )
                    else:
                        # Chunk context rides the pool initializer, not
                        # the task payload (pre-pickled once per pool).
                        future = pool.submit(
                            chunk_worker, tuple(c for _, c in group)
                        )
                except BrokenExecutor:
                    # The pool died before accepting work; nothing from
                    # here on was attempted.
                    for i, _ in group:
                        _uncharge(i)
                    pool_broken = True
                    requeue.extend(queue[qpos:])
                    break
                futures.append((group, future))
            for group, future in futures:
                if pool_broken:
                    # The pool died under us: anything unfinished was
                    # never really attempted -- uncharge and requeue.
                    if future.done() and not future.cancelled():
                        exc = future.exception()
                        if exc is None:
                            _succeed_group(group, future.result(), requeue)
                            continue
                    for i, _ in group:
                        _uncharge(i)
                    requeue.append(group)
                    continue
                deadline = config.deadline_s
                if deadline is not None:
                    # A chunk gets proportionally more wall time; its
                    # members retry as singletons under the unscaled
                    # deadline when it expires.
                    deadline *= len(group)
                try:
                    with _obs.span(
                        "supervisor.attempt", "supervisor",
                        cell=_group_label(group),
                        attempt=attempts[group[0][0]],
                    ):
                        outcome = future.result(timeout=deadline)
                except FutureTimeoutError:
                    _stats.timeouts += 1
                    pool_broken = True
                    _terminate_workers(pool)
                    if len(group) == 1:
                        timed_out[group[0][0]] = True
                        _fail_group(
                            group,
                            f"deadline of {config.deadline_s}s expired",
                            requeue,
                        )
                    else:
                        _fail_group(
                            group,
                            f"chunk deadline of {deadline}s expired",
                            requeue,
                        )
                except BrokenExecutor as exc:
                    # A worker died (SIGKILL/OOM/crash); this group may
                    # or may not have been the victim -- charge it (it
                    # was in flight) and requeue the rest uncharged.
                    pool_broken = True
                    _fail_group(group, f"worker died: {exc}", requeue)
                except Exception as exc:
                    # The cell itself raised inside a healthy worker.
                    _fail_group(
                        group, f"{type(exc).__name__}: {exc}", requeue
                    )
                else:
                    _succeed_group(group, outcome, requeue)
        finally:
            if pool_broken:
                _terminate_workers(pool)
                if not owns_pool and pool_discard is not None:
                    pool_discard(pool)
            elif owns_pool:
                pool.shutdown(wait=True)

        queue = requeue
        if queue and pool_broken:
            rebuilds += 1
            _stats.pool_rebuilds += 1
            if rebuilds > config.max_pool_rebuilds:
                if not config.serial_fallback:
                    for group in queue:
                        for i, cell in group:
                            _giveup(i, cell, "process pool unrecoverable")
                    queue = []
                else:
                    _stats.serial_fallbacks += 1
                    serial = True
                    # A cell that already tripped the watchdog would
                    # hang the supervising process itself inline.
                    kept: List[Group] = []
                    for group in queue:
                        live = [
                            (i, c) for i, c in group if not timed_out[i]
                        ]
                        for i, cell in group:
                            if timed_out[i]:
                                _giveup(
                                    i, cell,
                                    "deadline expired; not retried inline",
                                )
                        if live:
                            kept.append(live)
                    queue = kept

    return failures
