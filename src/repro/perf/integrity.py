"""Artifact integrity guard: checksummed, schema-tagged result files.

Every on-disk artifact the perf layer persists -- cached cell outcomes,
run-manifest checkpoints -- is written through :func:`write_artifact`,
which prefixes the pickled payload with a one-line JSON header carrying
a format tag, a schema string, the payload length and its SHA-256.
:func:`read_artifact` verifies all four before unpickling, so a
truncated write (SIGKILL mid-``os.replace``), a flipped bit, or a file
from an incompatible layout version surfaces as a structured
:class:`IntegrityError` -- never as a bogus result silently folded into
a report.

Callers that can recompute (the cache, the manifest) catch the error,
evict the artifact and emit an :class:`ArtifactIntegrityWarning`; the
run proceeds as if the entry never existed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import warnings
from pathlib import Path
from typing import Any

#: Format tag of the artifact container itself (not the payload schema).
ARTIFACT_FORMAT = "repro-artifact"
#: Container layout version; bump on incompatible header changes.
ARTIFACT_VERSION = 1


class IntegrityError(Exception):
    """A persisted artifact failed verification.

    ``reason`` is machine-readable: ``"missing"``, ``"unreadable"``,
    ``"not-an-artifact"``, ``"truncated"``, ``"checksum-mismatch"``,
    ``"schema-mismatch"`` or ``"undecodable"``.
    """

    def __init__(self, path: Path, reason: str, detail: str = "") -> None:
        self.path = Path(path)
        self.reason = reason
        self.detail = detail
        message = f"{self.path}: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class ArtifactIntegrityWarning(UserWarning):
    """A corrupt/mismatched artifact was evicted and will be recomputed."""


def warn_corrupt(error: IntegrityError, *, action: str = "recomputing") -> None:
    """Emit the structured warning for one evicted artifact."""
    warnings.warn(
        f"artifact {error.path} failed integrity check "
        f"[{error.reason}]; {action}"
        + (f": {error.detail}" if error.detail else ""),
        ArtifactIntegrityWarning,
        stacklevel=3,
    )


def payload_digest(payload: bytes) -> str:
    """SHA-256 hex digest of an artifact payload."""
    return hashlib.sha256(payload).hexdigest()


def write_artifact(path: Path | str, obj: Any, *, schema: str) -> str:
    """Persist ``obj`` under an integrity header; return the payload digest.

    The write is atomic (temp file + ``os.replace``) so readers only
    ever observe either the previous artifact or the complete new one.
    """
    path = Path(path)
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    digest = payload_digest(payload)
    header = json.dumps(
        {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "schema": schema,
            "size": len(payload),
            "sha256": digest,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(b"\n")
        fh.write(payload)
    os.replace(tmp, path)
    return digest


def read_artifact(path: Path | str, *, schema: str) -> Any:
    """Load and verify one artifact; raise :class:`IntegrityError` if bad."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise IntegrityError(path, "missing") from None
    except OSError as exc:
        raise IntegrityError(path, "unreadable", str(exc)) from None
    head, sep, payload = raw.partition(b"\n")
    if not sep:
        raise IntegrityError(path, "not-an-artifact", "no header line")
    try:
        header = json.loads(head)
    except (ValueError, UnicodeDecodeError):
        raise IntegrityError(
            path, "not-an-artifact", "undecodable header"
        ) from None
    if (
        not isinstance(header, dict)
        or header.get("format") != ARTIFACT_FORMAT
        or header.get("version") != ARTIFACT_VERSION
    ):
        raise IntegrityError(
            path, "not-an-artifact", f"header {header!r}"
        )
    if header.get("schema") != schema:
        raise IntegrityError(
            path,
            "schema-mismatch",
            f"expected {schema!r}, found {header.get('schema')!r}",
        )
    if len(payload) != header.get("size"):
        raise IntegrityError(
            path,
            "truncated",
            f"expected {header.get('size')} payload bytes, "
            f"found {len(payload)}",
        )
    if payload_digest(payload) != header.get("sha256"):
        raise IntegrityError(path, "checksum-mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # pickle raises wildly varied types
        raise IntegrityError(path, "undecodable", str(exc)) from None


def file_digest(path: Path | str) -> str:
    """SHA-256 of a whole artifact file (header + payload).

    The run manifest records this per checkpoint so a swapped or
    regenerated file is detected even when internally consistent.
    """
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()
