"""Perf instrumentation: per-phase wall time and event-rate counters.

The simulation core is wall-clock-free by construction (``repro lint``'s
REP002 bans real-time reads in deterministic code); *measuring* that
core is this module's job, so the ``perf_counter`` reads below carry
justified suppressions -- timing lives here and nowhere else.

A :class:`Profiler` collects named phases.  Each phase accumulates wall
seconds plus whatever counters the caller reports (cells executed,
simulator events dispatched, cache hits/misses), and the summary derives
the throughput figures the ``repro bench`` trajectory tracks:
events/sec, cells/sec, cache hit rate.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


def wall_now() -> float:
    """The profiler's single wall-clock source (monotonic seconds)."""
    return time.perf_counter()  # repro: noqa[REP002] profiling is the one sanctioned wall-clock consumer


@dataclass
class PhaseStats:
    """Accumulated counters of one named profiling phase."""

    name: str
    wall_s: float = 0.0
    #: Number of timed intervals folded into ``wall_s``.
    intervals: int = 0
    cells: int = 0
    #: Simulator events dispatched inside the phase.
    events: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cells_per_sec(self) -> float:
        return self.cells / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def pure_replay(self) -> bool:
        """True when every cell was served from cache (nothing executed)."""
        return self.cells > 0 and self.cache_hits >= self.cells

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "wall_s": self.wall_s,
            "intervals": self.intervals,
            "cells": self.cells,
            "events": self.events,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            # A pure cache-replay phase dispatched no events; dividing
            # its *recorded* events by its (near-zero) replay wall time
            # would report an absurd rate, so it reports none.
            "events_per_sec": (
                None if self.pure_replay else self.events_per_sec
            ),
            "cells_per_sec": self.cells_per_sec,
        }


@dataclass
class Profiler:
    """Named-phase wall-time and throughput accounting.

    Phases accumulate: entering the same name twice folds into one
    :class:`PhaseStats`, which is what sweep-per-subfigure reuse wants
    (five Figure 2 sweeps all report into ``microbench``).
    """

    phases: Dict[str, PhaseStats] = field(default_factory=dict)

    def stats(self, name: str) -> PhaseStats:
        """The (created-on-demand) accumulator for ``name``."""
        phase = self.phases.get(name)
        if phase is None:
            phase = self.phases[name] = PhaseStats(name=name)
        return phase

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Time a block into phase ``name`` and yield its accumulator."""
        stats = self.stats(name)
        start = wall_now()
        try:
            yield stats
        finally:
            stats.wall_s += wall_now() - start
            stats.intervals += 1

    def record(
        self,
        name: str,
        *,
        cells: int = 0,
        events: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        """Fold counters into phase ``name`` without timing anything."""
        stats = self.stats(name)
        stats.cells += cells
        stats.events += events
        stats.cache_hits += cache_hits
        stats.cache_misses += cache_misses

    # -- aggregates ------------------------------------------------------

    def total(self, attr: str) -> float:
        """Sum one counter over every phase."""
        return sum(getattr(p, attr) for p in self.phases.values())

    @property
    def cache_hit_rate(self) -> float:
        hits = self.total("cache_hits")
        total = hits + self.total("cache_misses")
        return hits / total if total else 0.0

    def summary(self) -> Dict[str, object]:
        """JSON-ready dump: per-phase stats plus whole-run aggregates."""
        wall = self.total("wall_s")
        events = self.total("events")
        cells = self.total("cells")
        return {
            "phases": {
                name: self.phases[name].as_dict()
                for name in sorted(self.phases)
            },
            "totals": {
                "wall_s": wall,
                "events": events,
                "cells": cells,
                "events_per_sec": events / wall if wall > 0 else 0.0,
                "cells_per_sec": cells / wall if wall > 0 else 0.0,
                "cache_hits": self.total("cache_hits"),
                "cache_misses": self.total("cache_misses"),
                "cache_hit_rate": self.cache_hit_rate,
            },
        }


# --------------------------------------------------------------------------
# Process-wide default profiler (wired up by the CLI / bench harness).
# --------------------------------------------------------------------------

_default_profiler: Optional[Profiler] = None


def default_profiler() -> Optional[Profiler]:
    """The profiler executors report into, or ``None``."""
    return _default_profiler


def set_default_profiler(profiler: Optional[Profiler]) -> None:
    """Install (or clear) the process-wide profiler."""
    global _default_profiler
    _default_profiler = profiler


@contextmanager
def profiled() -> Iterator[Profiler]:
    """Install a fresh default profiler for the block and yield it."""
    previous = _default_profiler
    profiler = Profiler()
    set_default_profiler(profiler)
    try:
        yield profiler
    finally:
        set_default_profiler(previous)
