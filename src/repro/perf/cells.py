"""Cell descriptors: the atomic, independently runnable units of work.

The reproduction surface is embarrassingly parallel -- every sweep in
:mod:`repro.experiments` decomposes into *cells* whose output is a pure
function of (code, configuration, seed):

* :class:`MicrobenchCell` -- one (benchmark kind, VM count, intensity
  level) simulation of the Figures 2-5 sweeps;
* :class:`PredictionCell` -- one client-count RUBiS deployment of the
  Figures 7-9 prediction experiments;
* :class:`ScenarioTrialCell` -- one (scenario, strategy, trial)
  placement run of the Figure 10 grid;
* :class:`FleetCell` -- one (strategy, trial) sharded fleet simulation
  of the datacenter-scale VOA-vs-VOU experiment.

A cell is a frozen, picklable configuration record.  ``run()`` executes
the cell in the calling process and returns ``(value, events)`` where
``events`` is the number of simulator events dispatched; the heavy
lifting stays in the domain modules (:mod:`repro.experiments.sweeps`,
:mod:`repro.experiments.prediction`, :mod:`repro.placement.scenario`),
imported lazily so descriptor construction never drags the simulation
stack into a process that only needs cache keys.

``config()`` returns a canonical, JSON-serializable description of the
cell -- the content-addressed cache key material.  Unpicklable inputs
(trained models, demand vectors) are folded in as content digests via
:func:`content_digest`, so a cell's key changes exactly when its inputs
change.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.xen.calibration import XenCalibration

#: Bump when cell semantics change incompatibly (invalidates cache keys).
CELL_SCHEMA_VERSION = 1


def content_digest(obj: Any) -> str:
    """Stable content digest of a picklable value (for cache keys).

    Pickle of a value tree (dataclasses, dicts, numpy arrays) is
    deterministic for equal content within one code revision, and the
    cache key also folds in the code fingerprint -- so a digest is
    exactly as stable as the cache requires.
    """
    return hashlib.sha256(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def _calibration_config(cal: Optional[XenCalibration]) -> Optional[str]:
    return None if cal is None else content_digest(cal)


class Cell:
    """Interface of one unit of parallelizable work."""

    #: Human-readable phase label for profiling ("microbench", ...).
    group: str = "cell"

    def config(self) -> Dict[str, Any]:
        """Canonical JSON-serializable configuration (cache key material)."""
        raise NotImplementedError

    def run(self) -> Tuple[Any, int]:
        """Execute and return ``(value, simulator_events_dispatched)``."""
        raise NotImplementedError

    def label(self) -> str:
        """Short display label for logs and profiles."""
        return f"{self.group}:{content_digest(self.config())[:8]}"


@dataclass(frozen=True)
class MicrobenchCell(Cell):
    """One intensity level of a Figures 2-5 micro-benchmark sweep.

    ``kind`` is a Table II benchmark kind (``cpu``/``mem``/``io``/``bw``)
    or the Figure 5 pseudo-kind ``bw-intra`` (VM1 pings a co-located
    VM2).  The simulator seed is ``seed + index`` -- identical to the
    serial sweep loops this cell was factored from.
    """

    kind: str
    n_vms: int
    level: float
    index: int
    duration: float
    seed: int
    calibration: Optional[XenCalibration] = None

    group = "microbench"

    def config(self) -> Dict[str, Any]:
        return {
            "cell": "microbench",
            "version": CELL_SCHEMA_VERSION,
            "kind": self.kind,
            "n_vms": self.n_vms,
            "level": self.level,
            "index": self.index,
            "duration": self.duration,
            "seed": self.seed,
            "calibration": _calibration_config(self.calibration),
        }

    def run(self) -> Tuple[Any, int]:
        from repro.experiments import sweeps

        return sweeps.run_level_cell(self)

    def label(self) -> str:
        return f"microbench:{self.kind}x{self.n_vms}@{self.level:g}"


@dataclass(frozen=True, eq=False)
class PredictionCell(Cell):
    """One client count of a Figures 7-9 prediction experiment.

    The trained models ride along as picklable objects (workers never
    retrain); the cache key sees them only through their content
    digests, so retrained-but-identical models still hit.
    """

    n_apps: int
    clients: int
    duration: float
    seed: int
    single_model: Any = None
    multi_model: Any = None

    group = "prediction"

    def config(self) -> Dict[str, Any]:
        return {
            "cell": "prediction",
            "version": CELL_SCHEMA_VERSION,
            "n_apps": self.n_apps,
            "clients": self.clients,
            "duration": self.duration,
            "seed": self.seed,
            "single_model": content_digest(self.single_model),
            "multi_model": content_digest(self.multi_model),
        }

    def run(self) -> Tuple[Any, int]:
        from repro.experiments import prediction

        return prediction.run_client_cell(self)

    def label(self) -> str:
        return f"prediction:{self.n_apps}apps@{self.clients}"


@dataclass(frozen=True, eq=False)
class ScenarioTrialCell(Cell):
    """One (scenario, strategy, trial) placement run of Figure 10.

    ``order`` is the VM deployment permutation drawn by the parent's
    scenario RNG *before* fan-out, so the shuffle stream is consumed in
    exactly the serial order.  ``demands`` is the profiled demand map
    ``{vm_name: ResourceVector}`` from the CloudScale profiling phase.
    """

    scenario: int
    strategy: str
    order: Tuple[str, ...]
    seed: int
    duration_s: float
    clients: int
    model: Any = None
    demands: Any = None

    group = "placement"

    def config(self) -> Dict[str, Any]:
        return {
            "cell": "scenario-trial",
            "version": CELL_SCHEMA_VERSION,
            "scenario": self.scenario,
            "strategy": self.strategy,
            "order": list(self.order),
            "seed": self.seed,
            "duration_s": self.duration_s,
            "clients": self.clients,
            "model": content_digest(self.model),
            "demands": content_digest(self.demands),
        }

    def run(self) -> Tuple[Any, int]:
        from repro.placement import scenario as scenario_mod

        return scenario_mod.run_trial_cell(self)

    def label(self) -> str:
        return f"placement:s{self.scenario}:{self.strategy}:{self.seed}"


@dataclass(frozen=True)
class FleetCell(Cell):
    """One (strategy, trial) run of the fleet-scale VOA-vs-VOU sweep.

    The value is the run's :meth:`~repro.cluster.fleet.FleetSummary.
    as_dict` -- bounded per-epoch aggregates, never per-VM state -- so
    a fleet sweep streams cleanly through ``run_cells``' incremental-
    consume mode.  ``shards`` is part of the cache key (it selects the
    partitioning, even though the summary's invariant fields do not
    depend on it).
    """

    pms: int
    vms: int
    clients: int
    duration_s: float
    epoch_s: float
    shards: int
    strategy: str
    seed: int
    ramp_s: float
    max_migrations_per_epoch: int

    group = "fleet"

    def config(self) -> Dict[str, Any]:
        return {
            "cell": "fleet",
            "version": CELL_SCHEMA_VERSION,
            "pms": self.pms,
            "vms": self.vms,
            "clients": self.clients,
            "duration_s": self.duration_s,
            "epoch_s": self.epoch_s,
            "shards": self.shards,
            "strategy": self.strategy,
            "seed": self.seed,
            "ramp_s": self.ramp_s,
            "max_migrations_per_epoch": self.max_migrations_per_epoch,
        }

    def run(self) -> Tuple[Any, int]:
        from repro.cluster import fleet

        return fleet.run_fleet_cell(self)

    def label(self) -> str:
        return f"fleet:{self.strategy}:{self.pms}pm:{self.seed}"
