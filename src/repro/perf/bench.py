"""``repro bench``: a fixed workload matrix with a recorded perf schema.

Runs the same micro-benchmark cell set four ways -- serial, parallel,
cold-cache, warm-cache -- and emits a ``BENCH_<rev>.json`` whose
numbers future PRs regress against.  ``<rev>`` is the leading 12 hex
characters of the :func:`~repro.perf.cache.code_fingerprint`, so every
source change starts a fresh trajectory point.

JSON schema (``repro-bench/1``)
-------------------------------
``schema``
    Literal ``"repro-bench/1"``.
``revision``
    12-char code fingerprint prefix of ``src/repro``.
``fast``
    Whether the reduced workload matrix was used.
``jobs``
    Worker processes used for the parallel phase.
``chunk``
    Requested cells-per-task of the parallel phase (0 = cost model).
``workload``
    The cell matrix: benchmark kinds, VM counts, per-cell simulated
    duration, number of cells.
``phases``
    Per-phase profiler dumps (``serial``, ``parallel``, ``cache_cold``,
    ``cache_warm``), each with ``wall_s``, ``cells``, ``events``,
    ``cache_hits``/``cache_misses`` and derived rates.  A pure
    cache-replay phase (``cache_warm``) reports ``events_per_sec`` as
    ``null`` -- it dispatched no events, so a rate would be nonsense;
    its headline is ``cache_warm_speedup``.
``supervision``
    :meth:`~repro.perf.supervisor.SupervisionStats.as_dict` of the
    bench run: attempts, retries, recovered/failed cells, timeouts,
    pool rebuilds -- all zeros on a healthy runner.
``metrics``
    The headline numbers:

    * ``events_per_sec`` -- simulator event throughput of the serial
      phase (the engine's hot-path speed);
    * ``cells_per_sec`` -- serial cell throughput;
    * ``parallel_speedup`` -- serial wall / parallel wall at ``jobs``;
    * ``cache_warm_speedup`` -- cold wall / warm wall;
    * ``cache_hit_rate`` -- hit rate of the warm phase (1.0 when every
      cell was served from disk).

All numbers are wall-clock measurements and therefore machine-dependent;
only *ratios* (speedups, hit rate) are comparable across hosts.  The
events/cells rates are comparable across revisions on the same runner,
which is what the CI perf-smoke job records.

``repro bench --compare BASELINE.json`` additionally regresses the new
record against a committed baseline: :func:`compare_bench` fails (and
the CLI exits non-zero) when ``events_per_sec`` or ``parallel_speedup``
drops more than :data:`REGRESSION_TOLERANCE` below the baseline.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.perf import pool as warmpool
from repro.perf.cache import ResultCache, code_fingerprint
from repro.perf.cells import MicrobenchCell
from repro.perf.executor import resolve_jobs, run_cells
from repro.perf.profiler import Profiler, profiled
from repro.perf.supervisor import reset_stats
from repro.workloads.suite import intensity_levels

#: Schema identifier embedded in every bench file.
BENCH_SCHEMA = "repro-bench/1"

#: Fractional drop in a headline metric that fails ``--compare``.
REGRESSION_TOLERANCE = 0.20

#: Metrics ``--compare`` regresses on (higher is better for both).
COMPARE_METRICS = ("events_per_sec", "parallel_speedup")

#: Paper-scale bench matrix: all four kinds, 1 and 2 VMs.
FULL_KINDS = ("cpu", "mem", "io", "bw")
FULL_VM_COUNTS = (1, 2)
FULL_DURATION_S = 30.0

#: Fast matrix for CI smoke runs.
FAST_KINDS = ("cpu", "bw")
FAST_VM_COUNTS = (1,)
FAST_DURATION_S = 6.0


def bench_cells(*, fast: bool = False, seed: int = 42) -> List[MicrobenchCell]:
    """The fixed cell matrix the bench always measures."""
    kinds = FAST_KINDS if fast else FULL_KINDS
    vm_counts = FAST_VM_COUNTS if fast else FULL_VM_COUNTS
    duration = FAST_DURATION_S if fast else FULL_DURATION_S
    cells: List[MicrobenchCell] = []
    for n_vms in vm_counts:
        for kind in kinds:
            for index, level in enumerate(intensity_levels(kind)):
                cells.append(
                    MicrobenchCell(
                        kind=kind,
                        n_vms=n_vms,
                        level=level,
                        index=index,
                        duration=duration,
                        seed=seed,
                    )
                )
    return cells


def default_output_path(directory: Path | str = ".") -> Path:
    """``BENCH_<rev>.json`` in ``directory``."""
    return Path(directory) / f"BENCH_{code_fingerprint()[:12]}.json"


def _phase_wall(profiler: Profiler, phase: str) -> float:
    return profiler.stats(phase).wall_s


def run_bench(
    *,
    fast: bool = False,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    cache_dir: Optional[Path] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """Execute the bench matrix and return the ``repro-bench/1`` record.

    ``cache_dir`` defaults to a throwaway temp directory so the cold /
    warm phases always start from an empty cache; pass a path to bench
    a persistent cache instead.  ``chunk`` feeds the parallel phase
    (``None``/``0`` = cost-model default).
    """
    jobs = resolve_jobs(jobs if jobs is not None else 0)
    cells = bench_cells(fast=fast, seed=seed)
    supervision = reset_stats()

    try:
        with profiled() as profiler:
            serial = run_cells(cells, jobs=1, cache=None, phase="serial")
            parallel = run_cells(
                cells, jobs=jobs, chunk=chunk, cache=None, phase="parallel"
            )
            if cache_dir is not None:
                cache = ResultCache(cache_dir)
                run_cells(cells, jobs=1, cache=cache, phase="cache_cold")
                run_cells(cells, jobs=1, cache=cache, phase="cache_warm")
            else:
                with tempfile.TemporaryDirectory(
                    prefix="repro-bench-"
                ) as tmp:
                    cache = ResultCache(tmp)
                    run_cells(cells, jobs=1, cache=cache, phase="cache_cold")
                    run_cells(cells, jobs=1, cache=cache, phase="cache_warm")
    finally:
        # The bench owns its warm pool's lifecycle end to end.
        warmpool.shutdown_pool()

    if any(s != p for s, p in zip(serial, parallel)):
        raise AssertionError(
            "parallel bench results diverged from serial -- determinism "
            "contract violated"
        )

    summary = profiler.summary()
    serial_stats = profiler.stats("serial")
    parallel_wall = _phase_wall(profiler, "parallel")
    cold_wall = _phase_wall(profiler, "cache_cold")
    warm_wall = _phase_wall(profiler, "cache_warm")
    warm_stats = profiler.stats("cache_warm")
    warm_total = warm_stats.cache_hits + warm_stats.cache_misses
    metrics = {
        "events_per_sec": serial_stats.events_per_sec,
        "cells_per_sec": serial_stats.cells_per_sec,
        "serial_wall_s": serial_stats.wall_s,
        "parallel_wall_s": parallel_wall,
        "parallel_speedup": (
            serial_stats.wall_s / parallel_wall if parallel_wall > 0 else 0.0
        ),
        "cache_cold_wall_s": cold_wall,
        "cache_warm_wall_s": warm_wall,
        "cache_warm_speedup": cold_wall / warm_wall if warm_wall > 0 else 0.0,
        "cache_hit_rate": (
            warm_stats.cache_hits / warm_total if warm_total else 0.0
        ),
    }
    return {
        "schema": BENCH_SCHEMA,
        "revision": code_fingerprint()[:12],
        "fast": fast,
        "jobs": jobs,
        "chunk": chunk if chunk else 0,
        "workload": {
            "kinds": list(FAST_KINDS if fast else FULL_KINDS),
            "vm_counts": list(FAST_VM_COUNTS if fast else FULL_VM_COUNTS),
            "duration_s": FAST_DURATION_S if fast else FULL_DURATION_S,
            "cells": len(cells),
            "seed": seed,
        },
        "phases": summary["phases"],
        "supervision": supervision.as_dict(),
        "metrics": metrics,
    }


def write_bench(record: Dict[str, object], path: Path) -> None:
    """Write one bench record as stable, human-diffable JSON."""
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def compare_bench(
    record: Dict[str, object],
    baseline: Dict[str, object],
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Regression failures of ``record`` against ``baseline``.

    Returns one message per :data:`COMPARE_METRICS` metric that fell
    more than ``tolerance`` below the baseline value (empty = pass).
    Metrics missing or non-positive on either side are skipped --
    ratios against nothing prove nothing.
    """
    failures: List[str] = []
    base_metrics = baseline.get("metrics") or {}
    new_metrics = record.get("metrics") or {}
    for key in COMPARE_METRICS:
        base = base_metrics.get(key)
        new = new_metrics.get(key)
        if not isinstance(base, (int, float)) or base <= 0:
            continue
        if not isinstance(new, (int, float)):
            continue
        floor = base * (1.0 - tolerance)
        if new < floor:
            failures.append(
                f"{key}: {new:.3f} < {floor:.3f} "
                f"({tolerance:.0%} below baseline {base:.3f})"
            )
    return failures
