"""Content-addressed on-disk cache of cell results.

A cell's output is a pure function of (code, configuration, seed) --
PR 2's determinism guarantees make that a hard invariant, not a hope.
The cache exploits it: the key is a SHA-256 over the cell's canonical
JSON configuration plus a *code fingerprint* of the whole ``repro``
package, so

* a re-run of an already-computed experiment group becomes I/O-bound
  (unpickle instead of simulate), and
* any source change anywhere in ``src/repro`` invalidates every entry
  -- there is no way to read a stale result through a fresh key.

Layout: ``<root>/<fingerprint[:16]>/<key>.pkl``.  Grouping by
fingerprint makes stale eviction trivial: on open, every sibling
generation directory belongs to old code and is deleted.

Entries are stored through :mod:`repro.perf.integrity`: each file
carries a checksummed, schema-tagged header verified on every read, so
a truncated or corrupted entry is evicted as a miss (with an
:class:`~repro.perf.integrity.ArtifactIntegrityWarning`) instead of
poisoning a run or crashing it.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Optional

from repro.perf import integrity
from repro.perf.cells import Cell

#: Characters of the fingerprint used for the generation directory.
_GENERATION_CHARS = 16

#: Payload schema of cached cell outcomes (integrity header tag).
CACHE_SCHEMA = "repro.perf.cell-outcome/v1"

#: Payload schema of the persisted hit/miss counters.
STATS_SCHEMA = "repro.perf.cache-stats/v1"

#: Stats file inside the generation directory.  Deliberately not
#: ``*.pkl`` so entry/size accounting never counts it.
STATS_FILE = "stats.meta"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Computed once per process.  The hash covers relative paths and file
    bytes in sorted order, so it is independent of filesystem layout
    and stable across machines for identical sources.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x01")
    return digest.hexdigest()


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def cell_key(cell: Cell, fingerprint: str) -> str:
    """Content address of one cell under one code fingerprint.

    Shared by the result cache and the run manifest so a checkpoint and
    a cache entry of the same cell always agree on identity.
    """
    material = canonical_json(
        {"config": cell.config(), "code": fingerprint}
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Point-in-time view of one cache directory."""

    root: str
    fingerprint: str
    entries: int
    stale_generations: int
    bytes: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"cache root:        {self.root}",
            f"code fingerprint:  {self.fingerprint[:_GENERATION_CHARS]}",
            f"entries:           {self.entries}",
            f"size:              {self.bytes} bytes",
            f"stale generations: {self.stale_generations}",
        ]
        if self.hits or self.misses:
            lines.append(
                f"hits/misses:       {self.hits}/{self.misses} "
                f"(hit rate {self.hit_rate:.0%})"
            )
        return "\n".join(lines)


class ResultCache:
    """Pickle store of cell outcomes keyed by content address.

    Parameters
    ----------
    root:
        Cache directory; created on demand.  One subdirectory per code
        fingerprint generation.
    fingerprint:
        Override the code fingerprint (tests use this to simulate a
        code change without editing sources).
    evict_stale:
        Delete generation directories from older fingerprints on open.
    """

    def __init__(
        self,
        root: Path | str,
        *,
        fingerprint: Optional[str] = None,
        evict_stale: bool = True,
    ) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.generation = self.fingerprint[:_GENERATION_CHARS]
        self._dir = self.root / self.generation
        #: Cells served from disk this session.
        self.hits = 0
        #: Cells that had to be simulated this session.
        self.misses = 0
        if evict_stale:
            self.evict_stale()

    # -- persisted hit/miss counters -------------------------------------

    @property
    def _stats_path(self) -> Path:
        return self._dir / STATS_FILE

    def _persisted_stats(self) -> tuple[int, int]:
        """Lifetime ``(hits, misses)`` recorded by earlier sessions.

        The stats file is integrity-guarded like every other artifact;
        a corrupt or truncated one is dropped (with a warning) and the
        counters restart from zero rather than poisoning the view.
        """
        try:
            payload = integrity.read_artifact(
                self._stats_path, schema=STATS_SCHEMA
            )
        except integrity.IntegrityError as exc:
            if exc.reason != "missing":
                self._stats_path.unlink(missing_ok=True)
                integrity.warn_corrupt(exc, action="reset cache stats")
            return 0, 0
        return int(payload["hits"]), int(payload["misses"])

    def flush_stats(self) -> None:
        """Fold this session's hit/miss counters into the stats file.

        Called by the CLI at the end of a cached run so a later
        ``repro cache stats`` (which opens a *fresh* ``ResultCache``)
        reports real lifetime counters instead of zeros.  Session
        counters reset so a double flush never double-counts.
        """
        if not self.hits and not self.misses:
            return
        hits, misses = self._persisted_stats()
        integrity.write_artifact(
            self._stats_path,
            {"hits": hits + self.hits, "misses": misses + self.misses},
            schema=STATS_SCHEMA,
        )
        self.hits = 0
        self.misses = 0

    # -- keying ----------------------------------------------------------

    def key(self, cell: Cell) -> str:
        """Content address of one cell under the current code."""
        return cell_key(cell, self.fingerprint)

    def _path(self, cell: Cell) -> Path:
        return self._dir / f"{self.key(cell)}.pkl"

    # -- storage ---------------------------------------------------------

    def get(self, cell: Cell) -> Optional[Any]:
        """The stored outcome for ``cell``, or ``None`` on a miss.

        Entries are verified through the integrity guard: an
        unreadable, truncated, checksum-mismatched or wrong-schema file
        counts as a miss, is evicted, and raises nothing -- the caller
        recomputes and overwrites it.  A missing entry is a plain miss
        (no warning).
        """
        path = self._path(cell)
        try:
            outcome = integrity.read_artifact(path, schema=CACHE_SCHEMA)
        except integrity.IntegrityError as exc:
            self.misses += 1
            if exc.reason != "missing":
                path.unlink(missing_ok=True)
                integrity.warn_corrupt(exc, action="evicted cache entry")
            return None
        self.hits += 1
        return outcome

    def put(self, cell: Cell, outcome: Any) -> None:
        """Store one outcome atomically under an integrity header."""
        integrity.write_artifact(self._path(cell), outcome, schema=CACHE_SCHEMA)

    # -- maintenance -----------------------------------------------------

    def _stale_generations(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            p
            for p in self.root.iterdir()
            if p.is_dir() and p.name != self.generation
        )

    def evict_stale(self) -> int:
        """Delete entries written by older code; return directories removed."""
        stale = self._stale_generations()
        for path in stale:
            shutil.rmtree(path, ignore_errors=True)
        return len(stale)

    def clear(self) -> int:
        """Delete every entry of every generation; return entries removed."""
        removed = 0
        if self.root.is_dir():
            removed = sum(1 for _ in self.root.rglob("*.pkl"))
            shutil.rmtree(self.root, ignore_errors=True)
        return removed

    def stats(self) -> CacheStats:
        """Entry/size counts for the current generation.

        ``hits``/``misses`` are this session's counters plus the
        lifetime counters persisted by :meth:`flush_stats` -- so a
        fresh instance (``repro cache stats``) still reports what the
        cache actually did.
        """
        entries = 0
        size = 0
        if self._dir.is_dir():
            for path in sorted(self._dir.glob("*.pkl")):
                entries += 1
                size += path.stat().st_size
        persisted_hits, persisted_misses = self._persisted_stats()
        return CacheStats(
            root=str(self.root),
            fingerprint=self.fingerprint,
            entries=entries,
            stale_generations=len(self._stale_generations()),
            bytes=size,
            hits=persisted_hits + self.hits,
            misses=persisted_misses + self.misses,
        )
