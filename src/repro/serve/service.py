"""The long-running overhead-prediction service (sim-time driven).

One :class:`PredictionService` owns, per PM stream:

* a **bounded ingest queue** with deterministic load shedding
  (drop-newest past capacity) and a fixed per-tick drain budget, so an
  arrival burst degrades latency, never correctness;
* a **dedup / reorder window** keyed by the stream's sample sequence
  numbers, so duplicated or delayed deliveries (and the re-replayed
  trace after a crash-restart) fold away instead of double-training;
* a **quarantine** that trips after a burst of NaN/outlier samples --
  the same validity-first policy as the monitor's fault masks: an
  invalid sample never reaches a model, and a stream emitting garbage
  is ignored wholesale until its penalty window passes;
* a **live candidate estimator** (:class:`~repro.models.online.OnlineOverheadModel`)
  with Page-Hinkley drift detection on its pre-update residuals;
  an alarm opens a *refit epoch* (fresh candidate) while queries keep
  being answered from the last promoted registry version;
* the **staleness circuit breaker**: queries against a quarantined or
  dark stream answer from the last promoted version with an explicit
  ``degraded`` flag -- never an unfitted model, an exception, or a
  silently stale answer.

Every accepted sample (and every strike) is WAL-logged *before* it
touches state, and registry promotions are idempotent under replay, so
a SIGKILL at any instant loses nothing: restart replays the WAL to
byte-identical model state and the re-replayed trace dedups cleanly.

The service never reads a clock or an RNG stream; ``now`` is simulated
seconds supplied by the driver (the client swarm, or ``--at`` on the
query CLI).
"""

from __future__ import annotations

import dataclasses
import math
import os
import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from repro.models.online import OnlineOverheadModel
from repro.models.samples import TARGETS, TrainingSample
from repro.monitor.metrics import ResourceVector
from repro.obs import runtime as _obs
from repro.serve.drift import PageHinkley
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.wal import (
    RECORD_SAMPLE,
    RECORD_STRIKE,
    SampleWAL,
    WalRecord,
    decode_line,
    encode_line,
)

#: Pinned-config file inside a service state directory.
CONFIG_NAME = "service.json"


class ConfigMismatchWarning(UserWarning):
    """An explicit config conflicted with the one pinned in the state dir."""

#: Ingest verdicts, in the order they are decided.
VERDICT_ACCEPTED = "accepted"
VERDICT_DUPLICATE = "duplicate"
VERDICT_STALE = "stale"
VERDICT_QUARANTINED = "quarantined"
VERDICT_INVALID = "invalid"
VERDICT_SHED = "shed"
VERDICTS = (
    VERDICT_ACCEPTED,
    VERDICT_DUPLICATE,
    VERDICT_STALE,
    VERDICT_QUARANTINED,
    VERDICT_INVALID,
    VERDICT_SHED,
)

#: Query statuses.
QUERY_OK = "ok"
QUERY_DEGRADED = "degraded"
QUERY_UNAVAILABLE = "unavailable"


@dataclass(frozen=True)
class ServiceConfig:
    """Robustness knobs of the prediction service."""

    #: Bounded per-PM ingest queue; arrivals past this are shed.
    queue_capacity: int = 64
    #: Samples applied per PM per tick (the drain budget).
    drain_per_tick: int = 8
    #: Candidate maturity: applied samples before its first promotion.
    min_fit_samples: int = 24
    #: Re-promote every N applied samples after maturity (0 = only on
    #: maturity / refit epochs).
    promote_every: int = 0
    #: Seconds without an applied sample before a stream counts as dark
    #: and queries degrade to the last promoted version.
    staleness_s: float = 30.0
    #: Invalid samples within :attr:`strike_window_s` that trip quarantine.
    quarantine_strikes: int = 3
    #: Strike-counting window (seconds).
    strike_window_s: float = 10.0
    #: Quarantine length (seconds) once tripped.
    quarantine_s: float = 20.0
    #: Absolute bound on any feature/target magnitude; beyond it a
    #: sample is invalid (reuses the validity-mask philosophy of
    #: :mod:`repro.faults.sampling`: garbage never trains a model).
    outlier_limit: float = 1.0e6
    #: Sequence-number window for reordered-delivery acceptance.
    reorder_window: int = 32
    #: Page-Hinkley tolerance / threshold / burn-in (per-sample
    #: normalized residual units).
    ph_delta: float = 0.05
    ph_lambda: float = 4.0
    ph_min_samples: int = 30
    #: RLS knobs of the candidate estimators.
    forgetting: float = 1.0
    rls_delta: float = 1.0e6
    #: Deterministic sim-latency model for queries (milliseconds).
    query_base_latency_ms: float = 0.5
    query_queue_latency_ms: float = 0.25

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.drain_per_tick < 1:
            raise ValueError("drain_per_tick must be >= 1")
        if self.min_fit_samples < 2:
            raise ValueError("min_fit_samples must be >= 2")
        if self.quarantine_strikes < 1:
            raise ValueError("quarantine_strikes must be >= 1")
        for attr in ("staleness_s", "strike_window_s", "quarantine_s"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        if self.outlier_limit <= 0:
            raise ValueError("outlier_limit must be positive")


@dataclass
class ServiceStats:
    """What the service did during one process lifetime.

    Replayed WAL records count only into ``recovered_records`` --
    the live counters describe traffic seen by *this* process, which is
    what an operator reading ``repro serve status`` cares about.
    """

    delivered: int = 0
    accepted: int = 0
    applied: int = 0
    duplicates: int = 0
    stale_drops: int = 0
    invalid: int = 0
    quarantine_drops: int = 0
    quarantines: int = 0
    shed: int = 0
    drift_alarms: int = 0
    promotions: int = 0
    rollbacks: int = 0
    queries: int = 0
    queries_ok: int = 0
    queries_degraded: int = 0
    queries_unavailable: int = 0
    recovered_records: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {k: int(v) for k, v in vars(self).items()}

    def render(self) -> str:
        d = self.as_dict()
        lines = ["service stats:"]
        for key in (
            "delivered", "accepted", "applied", "duplicates", "stale_drops",
            "invalid", "quarantine_drops", "quarantines", "shed",
            "drift_alarms", "promotions", "rollbacks", "queries",
            "queries_ok", "queries_degraded", "queries_unavailable",
            "recovered_records",
        ):
            lines.append(f"  {key:<20} {d[key]}")
        return "\n".join(lines)


@dataclass(frozen=True)
class QueryAnswer:
    """One placement query's answer -- always structured, never raised.

    ``degraded`` is the explicit last-good-answer flag: the stream
    behind ``pm`` is quarantined or dark past the staleness threshold
    and ``predictions`` come from the last *promoted* registry version
    rather than a live stream.  ``status`` is ``"unavailable"`` (with
    ``predictions=None``) only when nothing was ever promoted -- an
    unfitted model is never evaluated.
    """

    pm: str
    status: str
    degraded: bool
    reason: str
    version: Optional[int]
    predictions: Optional[Dict[str, float]]
    latency_ms: float
    now: float

    def render(self) -> str:
        head = (
            f"{self.pm} status={self.status} degraded={self.degraded} "
            f"version={self.version if self.version is not None else '-'} "
            f"reason={self.reason or '-'} latency_ms={self.latency_ms:.3f}"
        )
        if self.predictions is None:
            return head
        body = " ".join(
            f"{k}={self.predictions[k]:.4f}" for k in sorted(self.predictions)
        )
        return head + "\n  " + body


@dataclass
class _PmStream:
    """Per-PM mutable service state."""

    name: str
    model: OnlineOverheadModel
    drift: PageHinkley
    queue: Deque[WalRecord] = field(default_factory=deque)
    seq_high: int = -1
    seen: Deque[int] = field(default_factory=deque)
    seen_set: set = field(default_factory=set)
    strikes: Deque[int] = field(default_factory=deque)
    quarantined_until: float = -math.inf
    last_applied_tick: float = -math.inf
    #: Samples applied to the *current* candidate (resets on refit).
    candidate_applied: int = 0
    #: Applied since the last promotion (for promote_every).
    since_promote: int = 0
    #: A drift alarm opened a refit epoch not yet promoted.
    refitting: bool = False


class PredictionService:
    """Crash-safe, drift-aware, versioned online prediction service."""

    def __init__(
        self,
        root,
        *,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.root = Path(root)
        self.config = self._pin_config(config)
        self.registry = ModelRegistry(root)
        self.wal = SampleWAL(root)
        self.stats = ServiceStats()
        self.now: float = 0.0
        self._pms: Dict[str, _PmStream] = {}
        #: Coefficient cache keyed by registry version id.
        self._coef_cache: Dict[int, Dict[str, Tuple[float, ...]]] = {}
        self._replaying = False
        self._recover()

    # -- config pinning ---------------------------------------------------

    def _pin_config(self, config: Optional[ServiceConfig]) -> ServiceConfig:
        """Resolve the effective config against the state directory.

        The WAL-replay timeline is only meaningful under the knobs the
        records were written with (maturity thresholds, drain budgets
        and quarantine windows all steer it), so the first open of a
        state dir *pins* its config to ``service.json`` and every later
        open replays under the pinned values.  An explicit differing
        config is reported and ignored -- reopening a state dir for
        ``status``/``query`` must never rewrite its history.
        """
        path = self.root / CONFIG_NAME
        pinned: Optional[ServiceConfig] = None
        if path.is_file():
            body = decode_line(path.read_text(encoding="utf-8").strip())
            if body is None:
                warnings.warn(
                    f"{path}: damaged pinned config; re-pinning from the "
                    "caller's config",
                    ConfigMismatchWarning,
                    stacklevel=3,
                )
            else:
                known = {f.name for f in dataclasses.fields(ServiceConfig)}
                pinned = ServiceConfig(
                    **{k: v for k, v in body.items() if k in known}
                )
        if pinned is not None:
            if config is not None and config != pinned:
                diffs = ", ".join(
                    f"{f.name}: {getattr(pinned, f.name)} != "
                    f"{getattr(config, f.name)}"
                    for f in dataclasses.fields(ServiceConfig)
                    if getattr(pinned, f.name) != getattr(config, f.name)
                )
                warnings.warn(
                    f"{path}: state dir pins the service config; ignoring "
                    f"differing explicit values ({diffs})",
                    ConfigMismatchWarning,
                    stacklevel=3,
                )
            return pinned
        effective = config or ServiceConfig()
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
        tmp.write_text(
            encode_line(dataclasses.asdict(effective)) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return effective

    # -- crash recovery --------------------------------------------------

    def _recover(self) -> None:
        """Replay the WAL into byte-identical in-memory/registry state."""
        with _obs.span("serve.recover", source="serve"):
            records = self.wal.recover()
            if not records:
                return
            self._replaying = True
            try:
                replay_now = records[0].tick
                for record in records:
                    while replay_now < record.tick:
                        self._drain_tick(replay_now)
                        replay_now += 1
                    if record.kind == RECORD_STRIKE:
                        self._register_strike(record.pm, record.seq, record.tick)
                    else:
                        state = self._stream(record.pm)
                        self._mark_seen(state, record.seq)
                        state.queue.append(record)
                self.now = float(replay_now)
            finally:
                self._replaying = False
            self.stats.recovered_records = len(records)
            _obs.inc("serve_recovered_records_total", len(records))

    # -- stream bookkeeping ----------------------------------------------

    def _stream(self, pm: str) -> _PmStream:
        state = self._pms.get(pm)
        if state is None:
            cfg = self.config
            state = _PmStream(
                name=pm,
                model=OnlineOverheadModel(
                    forgetting=cfg.forgetting, delta=cfg.rls_delta
                ),
                drift=PageHinkley(
                    delta=cfg.ph_delta,
                    lambda_=cfg.ph_lambda,
                    min_samples=cfg.ph_min_samples,
                ),
            )
            self._pms[pm] = state
        return state

    def _mark_seen(self, state: _PmStream, seq: int) -> None:
        state.seen.append(seq)
        state.seen_set.add(seq)
        state.seq_high = max(state.seq_high, seq)
        floor = state.seq_high - self.config.reorder_window
        while state.seen and state.seen[0] <= floor:
            state.seen_set.discard(state.seen.popleft())

    def _register_strike(self, pm: str, seq: int, tick: float) -> bool:
        """Count one invalid sample; returns True when quarantine trips."""
        state = self._stream(pm)
        self._mark_seen(state, seq)
        state.strikes.append(tick)
        floor = tick - self.config.strike_window_s
        while state.strikes and state.strikes[0] < floor:
            state.strikes.popleft()
        if len(state.strikes) >= self.config.quarantine_strikes:
            state.quarantined_until = tick + self.config.quarantine_s
            state.strikes.clear()
            if not self._replaying:
                self.stats.quarantines += 1
                _obs.inc("serve_quarantines_total", pm=pm)
            return True
        return False

    # -- ingest ----------------------------------------------------------

    def deliver(
        self,
        pm: str,
        seq: int,
        tick: float,
        x,
        y: Dict[str, float],
    ) -> str:
        """Offer one monitor sample to the service; returns the verdict.

        ``tick`` is the *delivery* time in sim seconds.  Deliveries for
        a tick must precede :meth:`tick` for that tick; late deliveries
        (reordered streams, post-crash re-replays) are accepted, deduped
        or dropped by the sequence window -- never an error.
        """
        self.stats.delivered += 1
        state = self._stream(pm)
        verdict = self._classify(state, seq, tick, x, y)
        self.stats.__dict__[_VERDICT_COUNTER[verdict]] += 1
        _obs.inc("serve_samples_total", verdict=verdict)
        return verdict

    def _classify(
        self, state: _PmStream, seq: int, tick: float, x, y: Dict[str, float]
    ) -> str:
        if tick < self.now:
            # A delivery older than the service clock: either a stray
            # late packet or -- after a crash-restart -- the driver
            # re-replaying already-processed trace.  Dropping it keeps
            # even never-logged verdicts (shed, quarantined) from being
            # re-adjudicated against post-recovery queue state, which is
            # what makes resumed runs byte-identical to clean ones.
            return VERDICT_STALE
        if seq in state.seen_set:
            return VERDICT_DUPLICATE
        if seq <= state.seq_high - self.config.reorder_window:
            return VERDICT_STALE
        if tick < state.quarantined_until:
            return VERDICT_QUARANTINED
        values = [float(v) for v in x] + [float(v) for v in y.values()]
        limit = self.config.outlier_limit
        if any(not math.isfinite(v) or abs(v) > limit for v in values):
            self.wal.append(
                WalRecord(
                    kind=RECORD_STRIKE, pm=state.name, seq=int(seq),
                    tick=int(tick),
                )
            )
            self._register_strike(state.name, int(seq), tick)
            return VERDICT_INVALID
        if len(state.queue) >= self.config.queue_capacity:
            return VERDICT_SHED
        record = WalRecord(
            kind=RECORD_SAMPLE,
            pm=state.name,
            seq=int(seq),
            tick=int(tick),
            x=tuple(float(v) for v in x),
            y=tuple(sorted((str(k), float(v)) for k, v in y.items())),
        )
        self.wal.append(record)
        self._mark_seen(state, int(seq))
        state.queue.append(record)
        return VERDICT_ACCEPTED

    # -- the sim-time heartbeat ------------------------------------------

    def tick(self, now: float) -> None:
        """Advance the service through sim second ``now``.

        Drains every queue by the per-tick budget, applies samples to
        the candidate estimators, runs drift detection and promotion.
        Ticks at or before an already-processed time are no-ops, which
        is what lets a restarted service absorb a driver re-replaying
        its timeline from zero.
        """
        if now < self.now:
            return
        tick = self.now
        while tick <= now:
            self._drain_tick(tick)
            tick += 1
        self.now = float(now) + 1.0

    def flush(self, now: Optional[float] = None) -> None:
        """Drain every queue to empty (end of a replayed trace)."""
        tick = self.now if now is None else max(now, self.now)
        while any(state.queue for state in self._pms.values()):
            self._drain_tick(tick)
            tick += 1
        self.now = float(tick)
        self.wal.close()

    def _drain_tick(self, tick: float) -> None:
        for pm in sorted(self._pms):
            state = self._pms[pm]
            budget = self.config.drain_per_tick
            while budget > 0 and state.queue:
                record = state.queue.popleft()
                self._apply(state, record, tick)
                budget -= 1
            self._maybe_promote(state, tick)

    def _apply(self, state: _PmStream, record: WalRecord, tick: float) -> None:
        targets = dict(record.y)
        x = ResourceVector(*record.x)
        # Pre-update residual feeds the drift detector once the
        # candidate is mature enough for its predictions to mean much.
        if state.candidate_applied >= self.config.min_fit_samples:
            predicted = state.model.predict(x)
            residual = sum(
                abs(targets[t] - predicted[t]) / (1.0 + abs(targets[t]))
                for t in TARGETS
            ) / len(TARGETS)
            if state.drift.update(residual):
                self._open_refit_epoch(state, tick)
        state.model.update(
            TrainingSample(n_vms=1, vm_sum=x, targets=targets)
        )
        state.candidate_applied += 1
        state.since_promote += 1
        state.last_applied_tick = tick
        if not self._replaying:
            self.stats.applied += 1

    def _open_refit_epoch(self, state: _PmStream, tick: float) -> None:
        cfg = self.config
        state.model = OnlineOverheadModel(
            forgetting=cfg.forgetting, delta=cfg.rls_delta
        )
        state.drift = PageHinkley(
            delta=cfg.ph_delta, lambda_=cfg.ph_lambda,
            min_samples=cfg.ph_min_samples,
        )
        state.candidate_applied = 0
        state.refitting = True
        if not self._replaying:
            self.stats.drift_alarms += 1
        _obs.inc("serve_drift_alarms_total", pm=state.name)

    def _maybe_promote(self, state: _PmStream, tick: float) -> None:
        cfg = self.config
        mature = state.candidate_applied >= cfg.min_fit_samples
        if not mature:
            return
        never_promoted = self.registry.replay_active(state.name) is None
        due_epoch = state.refitting or never_promoted
        due_periodic = (
            cfg.promote_every > 0 and state.since_promote >= cfg.promote_every
        )
        if not due_epoch and not due_periodic:
            return
        targets = {
            t: {
                "intercept": m.intercept,
                "coef": [float(c) for c in m.coef],
            }
            for t in TARGETS
            for m in (state.model.coefficients(t),)
        }
        self.registry.promote(
            state.name, targets,
            tick=int(tick), n_samples=state.candidate_applied,
        )
        state.refitting = False
        state.since_promote = 0
        if not self._replaying:
            self.stats.promotions += 1
            _obs.inc("serve_promotions_total", pm=state.name)

    # -- queries ----------------------------------------------------------

    def query(self, pm: str, vm_util: ResourceVector, now: float) -> QueryAnswer:
        """Answer one placement query -- structured under every failure.

        The answer always comes from the last *promoted* registry
        version: ``degraded=True`` flags a quarantined or dark stream,
        and a PM with no promotion yet (or unknown entirely) gets
        ``status="unavailable"`` with ``predictions=None``.
        """
        self.stats.queries += 1
        state = self._pms.get(pm)
        queue_depth = len(state.queue) if state is not None else 0
        latency = (
            self.config.query_base_latency_ms
            + self.config.query_queue_latency_ms * queue_depth
        )
        _obs.observe("serve_query_latency_ms", latency)
        active = self.registry.active(pm)
        if active is None:
            self.stats.queries_unavailable += 1
            _obs.inc("serve_queries_total", status=QUERY_UNAVAILABLE)
            reason = "unknown pm" if state is None else "no promoted model"
            return QueryAnswer(
                pm=pm, status=QUERY_UNAVAILABLE, degraded=False,
                reason=reason, version=None, predictions=None,
                latency_ms=latency, now=now,
            )
        degraded, reason = self._degradation(state, now)
        predictions = self._evaluate(active, vm_util)
        status = QUERY_DEGRADED if degraded else QUERY_OK
        if degraded:
            self.stats.queries_degraded += 1
        else:
            self.stats.queries_ok += 1
        _obs.inc("serve_queries_total", status=status)
        return QueryAnswer(
            pm=pm, status=status, degraded=degraded, reason=reason,
            version=active.version, predictions=predictions,
            latency_ms=latency, now=now,
        )

    def _degradation(
        self, state: Optional[_PmStream], now: float
    ) -> Tuple[bool, str]:
        if state is None:
            return True, "stream dark (never ingested)"
        if now < state.quarantined_until:
            return True, "stream quarantined"
        if now - state.last_applied_tick > self.config.staleness_s:
            return True, "stream dark (staleness threshold exceeded)"
        return False, ""

    def _coefficients(self, mv: ModelVersion) -> Dict[str, Tuple[float, ...]]:
        cached = self._coef_cache.get(mv.version)
        if cached is None:
            payload = self.registry.load_payload(mv)
            cached = {
                t: (
                    float(spec["intercept"]),
                    *(float(c) for c in spec["coef"]),
                )
                for t, spec in payload["targets"].items()
            }
            self._coef_cache[mv.version] = cached
        return cached

    def _evaluate(
        self, mv: ModelVersion, vm_util: ResourceVector
    ) -> Dict[str, float]:
        coef = self._coefficients(mv)
        x = (vm_util.cpu, vm_util.mem, vm_util.io, vm_util.bw)
        out = {
            t: row[0] + sum(c * v for c, v in zip(row[1:], x))
            for t, row in coef.items()
        }
        out["pm.cpu"] = out["dom0.cpu"] + out["hyp.cpu"] + vm_util.cpu
        return out

    # -- operator actions -------------------------------------------------

    def rollback(self, pm: str, now: float) -> ModelVersion:
        """Explicitly revert one PM to its previous promoted version."""
        mv = self.registry.rollback(pm, tick=int(now))
        self.stats.rollbacks += 1
        _obs.inc("serve_rollbacks_total", pm=pm)
        return mv

    # -- inspection -------------------------------------------------------

    def queue_depths(self) -> Dict[str, int]:
        return {pm: len(state.queue) for pm, state in sorted(self._pms.items())}

    def status_report(self, now: Optional[float] = None) -> str:
        """Operator-facing digest (CLI ``repro serve status``)."""
        at = self.now if now is None else now
        lines = [
            f"service time:      t={at:g}s "
            f"({len(self._pms)} stream(s), "
            f"{self.wal.byte_size()} WAL byte(s))",
        ]
        for pm in sorted(self._pms):
            state = self._pms[pm]
            active = self.registry.active(pm)
            degraded, reason = self._degradation(state, at)
            health = "degraded" if degraded else "healthy"
            lines.append(
                f"  {pm:<10} {health:<9} "
                f"active={'v%d' % active.version if active else '-':<7} "
                f"queue={len(state.queue):<4} "
                f"applied={state.candidate_applied:<6} "
                f"{('[' + reason + ']') if reason else ''}".rstrip()
            )
        lines.append(self.registry.render())
        lines.append(self.stats.render())
        return "\n".join(lines)


#: Verdict -> ServiceStats attribute.
_VERDICT_COUNTER = {
    VERDICT_ACCEPTED: "accepted",
    VERDICT_DUPLICATE: "duplicates",
    VERDICT_STALE: "stale_drops",
    VERDICT_QUARANTINED: "quarantine_drops",
    VERDICT_INVALID: "invalid",
    VERDICT_SHED: "shed",
}
