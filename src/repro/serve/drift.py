"""Residual drift detection: Page-Hinkley with a CUSUM-style statistic.

Wang et al.'s web-workload characterization (PAPERS.md) shows
virtualized-server workloads drift on hourly timescales, and uPredict
re-profiles continuously for exactly that reason.  The service feeds
each PM's *pre-update* prediction error -- the residual of the live
model evaluated on the arriving sample -- into one :class:`PageHinkley`
per PM; an alarm means the coefficient set no longer explains the
stream, and the service opens a refit epoch (fresh candidate model)
while continuing to answer queries from the last promoted version.

The detector is pure arithmetic over the values it is fed: no clock, no
randomness, so replaying a WAL reproduces alarm ticks exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PageHinkley:
    """One-sided Page-Hinkley test on a stream of residual magnitudes.

    Maintains the running mean of the inputs and the CUSUM
    ``m_t = sum_i (x_i - mean_i - delta)``; an alarm fires when
    ``m_t - min_i m_i > lambda_`` -- i.e. the recent inputs sit
    persistently *above* their historical mean by more than the
    tolerance ``delta``.

    Parameters
    ----------
    delta:
        Tolerated drift per observation (absorbs noise floor).
    lambda_:
        Alarm threshold on the accumulated exceedance.
    min_samples:
        Observations required before an alarm may fire (a cold detector
        never alarms on its burn-in noise).
    """

    delta: float = 0.05
    lambda_: float = 5.0
    min_samples: int = 30

    #: Observations folded in since the last reset.
    n: int = 0
    #: Running mean of the inputs.
    mean: float = 0.0
    #: CUSUM statistic and its running minimum.
    cum: float = 0.0
    cum_min: float = 0.0
    #: Alarms fired since construction (never reset).
    alarms: int = 0

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError("delta must be >= 0")
        if self.lambda_ <= 0:
            raise ValueError("lambda_ must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    def update(self, value: float) -> bool:
        """Fold one residual magnitude in; ``True`` when drift alarms.

        An alarm resets the test statistics (one alarm per drift
        episode), so callers can treat ``True`` as an edge trigger.
        """
        value = float(value)
        self.n += 1
        self.mean += (value - self.mean) / self.n
        self.cum += value - self.mean - self.delta
        self.cum_min = min(self.cum_min, self.cum)
        if self.n >= self.min_samples and (
            self.cum - self.cum_min > self.lambda_
        ):
            self.alarms += 1
            self.reset()
            return True
        return False

    def reset(self) -> None:
        """Forget the stream statistics (alarm counter is preserved)."""
        self.n = 0
        self.mean = 0.0
        self.cum = 0.0
        self.cum_min = 0.0

    @property
    def score(self) -> float:
        """Current exceedance ``m_t - min m`` (0 for a fresh detector)."""
        return self.cum - self.cum_min
