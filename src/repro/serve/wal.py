"""Checksummed write-ahead log for the prediction service's ingest path.

Every sample the service *accepts* -- and every invalid sample it
*strikes* against a stream's quarantine budget -- is appended here
before it touches any model state.  The format is one JSON object per
line, ``{"c": <crc32 of the canonical body>, "v": <body>}``, flushed per
record, so the log is exactly as durable against SIGKILL as the
PR-4 run manifests: a kill mid-write leaves at most one partial tail
line, which :meth:`SampleWAL.recover` truncates away before the service
appends again.  Because model state is a pure function of the WAL
record sequence, replaying a recovered log rebuilds byte-identical
coefficients, drift-detector state and registry promotions.

Floats survive the JSON round trip exactly (``json`` serializes with
``repr``), which the replay-determinism tests rely on.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: WAL file name inside a service state directory.
WAL_NAME = "wal.jsonl"

#: Record types.
RECORD_SAMPLE = "sample"
RECORD_STRIKE = "strike"
RECORD_TYPES = (RECORD_SAMPLE, RECORD_STRIKE)


class WalCorruptionWarning(UserWarning):
    """A WAL tail failed its checksum and was truncated on recovery."""


@dataclass(frozen=True)
class WalRecord:
    """One durable ingest event.

    ``kind`` is ``"sample"`` (accepted, will be applied to the model)
    or ``"strike"`` (rejected as NaN/outlier; counts against the
    stream's quarantine budget but never reaches a model).  ``x`` is
    the 4-feature utilization vector and ``y`` the target dict for
    samples; both are empty for strikes.
    """

    kind: str
    pm: str
    seq: int
    tick: int
    x: Tuple[float, ...] = ()
    y: Tuple[Tuple[str, float], ...] = ()

    def body(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "k": self.kind, "pm": self.pm, "seq": self.seq, "t": self.tick,
        }
        if self.kind == RECORD_SAMPLE:
            out["x"] = list(self.x)
            out["y"] = {k: v for k, v in self.y}
        return out

    @classmethod
    def from_body(cls, body: Dict[str, object]) -> "WalRecord":
        kind = body["k"]
        if kind not in RECORD_TYPES:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        x: Tuple[float, ...] = ()
        y: Tuple[Tuple[str, float], ...] = ()
        if kind == RECORD_SAMPLE:
            x = tuple(float(v) for v in body["x"])
            y = tuple(sorted(
                (str(k), float(v)) for k, v in body["y"].items()
            ))
        return cls(
            kind=kind, pm=str(body["pm"]), seq=int(body["seq"]),
            tick=int(body["t"]), x=x, y=y,
        )


def encode_line(body: Dict[str, object]) -> str:
    """One checksummed ledger line (no newline): ``{"c": crc, "v": body}``."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(canonical.encode("utf-8"))
    return f'{{"c":{crc},"v":{canonical}}}'


def decode_line(line: str) -> Optional[Dict[str, object]]:
    """Parse and checksum-verify one ledger line; ``None`` when damaged."""
    try:
        obj = json.loads(line)
    except ValueError:
        return None
    if not isinstance(obj, dict) or set(obj) != {"c", "v"}:
        return None
    body = obj["v"]
    if not isinstance(body, dict):
        return None
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(canonical.encode("utf-8")) != obj["c"]:
        return None
    return body


def _encode(record: WalRecord) -> str:
    return encode_line(record.body())


def _decode(line: str) -> Optional[WalRecord]:
    """Parse and verify one WAL line; ``None`` when damaged."""
    body = decode_line(line)
    if body is None:
        return None
    try:
        return WalRecord.from_body(body)
    except (KeyError, TypeError, ValueError):
        return None


class SampleWAL:
    """Append-only, checksummed, truncation-tolerant sample log."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.path = self.root / WAL_NAME
        self._fh = None
        #: Records appended by this process (not counting recovery).
        self.appended = 0

    # -- recovery --------------------------------------------------------

    def recover(self) -> List[WalRecord]:
        """Load the valid record prefix, truncating a damaged tail.

        A SIGKILL mid-append leaves at most one partial final line; the
        file is physically truncated back to the end of the last valid
        record (with a :class:`WalCorruptionWarning` naming the bytes
        dropped) so subsequent appends leave the log byte-identical to
        one written by an uninterrupted process.
        """
        records: List[WalRecord] = []
        if not self.path.is_file():
            return records
        raw = self.path.read_bytes()
        good = 0
        pos = 0
        while True:
            nl = raw.find(b"\n", pos)
            if nl == -1:
                # Unterminated tail (killed mid-write): always damaged.
                break
            chunk = raw[pos:nl]
            record = _decode(chunk.decode("utf-8", errors="replace"))
            if record is None:
                break
            records.append(record)
            good = nl + 1
            pos = nl + 1
        if good < len(raw):
            warnings.warn(
                f"WAL {self.path}: truncating {len(raw) - good} damaged "
                f"tail byte(s) after {len(records)} valid record(s)",
                WalCorruptionWarning,
                stacklevel=2,
            )
            with open(self.path, "r+b") as fh:
                fh.truncate(good)
        return records

    # -- appends ---------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: WalRecord) -> None:
        """Durably append one record (flushed to the OS per record)."""
        fh = self._handle()
        fh.write(_encode(record) + "\n")
        fh.flush()
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SampleWAL":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- inspection ------------------------------------------------------

    def iter_records(self) -> Iterator[WalRecord]:
        """Stream the currently valid records (no truncation)."""
        if not self.path.is_file():
            return iter(())
        return iter(self.recover())

    def byte_size(self) -> int:
        """Current on-disk size (0 when the log does not exist)."""
        try:
            return os.stat(self.path).st_size
        except OSError:
            return 0
