"""Versioned model registry: atomic snapshots, promote/rollback, replay.

Queries are never answered from the live (still-learning) estimator;
they read the *promoted* coefficient snapshot for the PM, so a
half-trained refit epoch can never leak into placement decisions.  The
registry persists each promotion as an integrity-guarded artifact
(:mod:`repro.perf.integrity`, same container as the PR-4 checkpoints)
plus one record in an append-only, checksummed ledger; version ids are
globally monotonic and the *active* version per PM is derived by
replaying the ledger (last promote/rollback wins).

Crash safety contract (what the serve kill/restart CI job checks):

* snapshot writes are atomic (temp + ``os.replace``) and happen
  *before* their ledger record -- a SIGKILL between the two leaves an
  orphan snapshot that the deterministic replay simply rewrites
  byte-identically;
* a partial ledger tail line is compacted away on open;
* :meth:`ModelRegistry.promote` is **idempotent under WAL replay**: a
  promotion whose content digest matches the next already-ledgered
  promote record for that PM re-verifies the snapshot instead of
  appending a duplicate, so a killed-and-restarted service converges to
  a registry byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import os
import pickle
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.perf import integrity
from repro.serve.wal import decode_line, encode_line

#: Ledger file name inside a service state directory.
LEDGER_NAME = "registry.jsonl"
#: Snapshot subdirectory.
MODELS_DIR = "models"
#: Payload schema of promoted coefficient snapshots.
MODEL_SCHEMA = "repro.serve.model/v1"


class RegistryError(Exception):
    """A registry operation could not be satisfied (e.g. no rollback)."""


class RegistryReplayWarning(UserWarning):
    """Replay diverged from the ledgered promotion history."""


@dataclass(frozen=True)
class ModelVersion:
    """One promoted coefficient snapshot."""

    version: int
    pm: str
    tick: int
    n_samples: int
    digest: str

    def path_in(self, models_dir: Path) -> Path:
        return models_dir / f"v{self.version:06d}.pkl"


def snapshot_payload(
    pm: str, tick: int, n_samples: int, targets: Dict[str, Dict[str, object]]
) -> Dict[str, object]:
    """The canonical (version-free) snapshot payload.

    Plain floats and lists only, so the pickle -- and therefore the
    artifact digest and the on-disk bytes -- is a pure function of the
    coefficient values.
    """
    return {
        "pm": str(pm),
        "tick": int(tick),
        "n_samples": int(n_samples),
        "targets": {
            str(t): {
                "intercept": float(m["intercept"]),
                "coef": [float(c) for c in m["coef"]],
            }
            for t, m in sorted(targets.items())
        },
    }


class ModelRegistry:
    """Ledgered, integrity-guarded store of promoted models."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.path = self.root / LEDGER_NAME
        self.models_dir = self.root / MODELS_DIR
        #: Full promotion history per PM, ledger order.
        self._history: Dict[str, List[ModelVersion]] = {}
        #: Active version per PM (None after ledger replay = never promoted).
        self._active: Dict[str, ModelVersion] = {}
        #: Highest version id ever ledgered (global, monotonic).
        self._max_version = 0
        #: Replay cursor per PM into the *preloaded* promotion history.
        self._cursor: Dict[str, int] = {}
        #: Promotions appended by this process (not replay matches).
        self.promotions = 0
        #: Promotions matched against the preloaded ledger (replay).
        self.replayed = 0
        self._sweep_tmp_files()
        self._load()

    # -- ledger ----------------------------------------------------------

    def _sweep_tmp_files(self) -> None:
        """Drop atomic-write temp files orphaned by a SIGKILL."""
        for candidate in (self.root, self.models_dir):
            if not candidate.is_dir():
                continue
            for stray in candidate.glob("*.tmp.*"):
                stray.unlink(missing_ok=True)

    def _load(self) -> None:
        if not self.path.is_file():
            return
        raw = self.path.read_text(encoding="utf-8")
        valid_lines: List[str] = []
        damaged = 0
        for line in raw.split("\n"):
            if not line:
                continue
            body = decode_line(line)
            if body is None:
                damaged += 1
                continue
            valid_lines.append(line)
            self._apply_record(body)
        if damaged:
            # Compact: rewrite atomically without the damaged tail so
            # the recovered ledger is byte-identical to a clean one.
            warnings.warn(
                f"registry ledger {self.path}: dropped {damaged} damaged "
                "line(s) during recovery",
                RegistryReplayWarning,
                stacklevel=2,
            )
            tmp = self.path.with_suffix(self.path.suffix + f".tmp.{os.getpid()}")
            tmp.write_text(
                "".join(line + "\n" for line in valid_lines),
                encoding="utf-8",
            )
            os.replace(tmp, self.path)
        self._cursor = {pm: 0 for pm in self._history}

    def _apply_record(self, body: Dict[str, object]) -> None:
        rtype = body.get("type")
        if rtype == "promote":
            mv = ModelVersion(
                version=int(body["version"]),
                pm=str(body["pm"]),
                tick=int(body["tick"]),
                n_samples=int(body["n_samples"]),
                digest=str(body["digest"]),
            )
            self._history.setdefault(mv.pm, []).append(mv)
            self._active[mv.pm] = mv
            self._max_version = max(self._max_version, mv.version)
        elif rtype == "rollback":
            pm = str(body["pm"])
            to = int(body["to"])
            for mv in self._history.get(pm, ()):
                if mv.version == to:
                    self._active[pm] = mv
                    break

    def _append(self, body: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(encode_line(body) + "\n")
            fh.flush()

    # -- promote / rollback ----------------------------------------------

    def promote(
        self,
        pm: str,
        targets: Dict[str, Dict[str, object]],
        *,
        tick: int,
        n_samples: int,
    ) -> ModelVersion:
        """Snapshot one PM's fitted coefficients as the active version.

        Idempotent under WAL replay: when the content digest equals the
        next unmatched ledgered promotion for this PM, the existing
        version is re-verified (and its snapshot rewritten if missing
        or corrupt) instead of allocating a new id.
        """
        payload = snapshot_payload(pm, tick, n_samples, targets)
        digest = integrity.payload_digest(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        history = self._history.setdefault(pm, [])
        cursor = self._cursor.setdefault(pm, 0)
        if cursor < len(history):
            expected = history[cursor]
            if expected.digest == digest:
                self._cursor[pm] = cursor + 1
                self.replayed += 1
                self._ensure_snapshot(expected, payload)
                return expected
            warnings.warn(
                f"registry replay diverged for {pm}: expected digest "
                f"{expected.digest[:12]} at version {expected.version}, "
                f"recomputed {digest[:12]}; appending fresh versions",
                RegistryReplayWarning,
                stacklevel=2,
            )
            self._cursor[pm] = len(history)
        mv = ModelVersion(
            version=self._max_version + 1,
            pm=pm,
            tick=int(tick),
            n_samples=int(n_samples),
            digest=digest,
        )
        integrity.write_artifact(
            mv.path_in(self.models_dir), payload, schema=MODEL_SCHEMA
        )
        self._append(
            {
                "type": "promote",
                "version": mv.version,
                "pm": mv.pm,
                "tick": mv.tick,
                "n_samples": mv.n_samples,
                "digest": mv.digest,
            }
        )
        self._max_version = mv.version
        history.append(mv)
        self._cursor[pm] = len(history)
        self._active[pm] = mv
        self.promotions += 1
        return mv

    def _ensure_snapshot(
        self, mv: ModelVersion, payload: Dict[str, object]
    ) -> None:
        """Re-verify (or deterministically rewrite) a matched snapshot."""
        path = mv.path_in(self.models_dir)
        try:
            integrity.read_artifact(path, schema=MODEL_SCHEMA)
            return
        except integrity.IntegrityError as exc:
            if exc.reason != "missing":
                integrity.warn_corrupt(exc, action="rewriting snapshot")
        integrity.write_artifact(path, payload, schema=MODEL_SCHEMA)

    def rollback(self, pm: str, *, tick: int) -> ModelVersion:
        """Revert one PM's active version to its predecessor."""
        active = self._active.get(pm)
        if active is None:
            raise RegistryError(f"{pm}: nothing promoted, nothing to roll back")
        history = self._history.get(pm, [])
        older = [mv for mv in history if mv.version < active.version]
        if not older:
            raise RegistryError(
                f"{pm}: version {active.version} is the oldest promotion"
            )
        target = older[-1]
        self._append(
            {
                "type": "rollback",
                "pm": pm,
                "tick": int(tick),
                "from": active.version,
                "to": target.version,
            }
        )
        self._active[pm] = target
        return target

    # -- queries ---------------------------------------------------------

    @property
    def max_version(self) -> int:
        """Highest version id ever ledgered (0 = empty registry)."""
        return self._max_version

    def replay_active(self, pm: str) -> Optional[ModelVersion]:
        """The active version as seen by the WAL-replay timeline.

        While the promote cursor still trails the preloaded ledger,
        promotion decisions must be judged against the history *up to
        the cursor*: judging them against the final preloaded state
        would skip re-executing already-ledgered promotions, desync the
        idempotent replay matching, and turn a read-only reopen into a
        ledger append.  Once the cursor has caught up this is exactly
        :meth:`active`.
        """
        history = self._history.get(pm, ())
        cursor = self._cursor.get(pm, 0)
        if cursor < len(history):
            return history[cursor - 1] if cursor else None
        return self._active.get(pm)

    def active(self, pm: str) -> Optional[ModelVersion]:
        """The serving version for one PM (``None`` = never promoted)."""
        return self._active.get(pm)

    def history(self, pm: str) -> List[ModelVersion]:
        """Full promotion history for one PM, oldest first."""
        return list(self._history.get(pm, ()))

    def pms(self) -> List[str]:
        """PMs with at least one promotion, sorted."""
        return sorted(self._history)

    def load_payload(self, mv: ModelVersion) -> Dict[str, object]:
        """Load and doubly verify one snapshot payload.

        Checks both the artifact's own integrity header and the digest
        recorded in the ledger, mirroring the PR-4 checkpoint loader.
        """
        path = mv.path_in(self.models_dir)
        payload = integrity.read_artifact(path, schema=MODEL_SCHEMA)
        found = integrity.payload_digest(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        if found != mv.digest:
            raise integrity.IntegrityError(
                path,
                "checksum-mismatch",
                "snapshot digest does not match the registry ledger",
            )
        return payload

    def render(self) -> str:
        """Human-readable registry summary (CLI ``repro serve status``)."""
        lines = [f"model registry:    {self._max_version} version(s)"]
        for pm in self.pms():
            active = self._active.get(pm)
            history = self._history[pm]
            mark = f"v{active.version}" if active else "-"
            lines.append(
                f"  {pm:<10} active={mark:<7} "
                f"promotions={len(history)} "
                f"(last tick {history[-1].tick}, "
                f"{history[-1].n_samples} samples)"
            )
        return "\n".join(lines)
