"""Deterministic client swarm: fleet-scale traces against the service.

One :func:`run_swarm` call drives a :class:`PredictionService` through a
synthetic fleet trace: per-PM monitor streams with *planted* linear
coefficients (so the fitted models have a known ground truth), an
optional mid-run regime shift that exercises the drift detector, an
optional :class:`repro.faults.service.ServiceFaults` delivery-fault
layer, and a stream of placement queries whose sim-latency percentiles
the report records.

Everything is a pure function of ``SwarmConfig`` -- named RNG streams
(``serve.trace.<pm>``, ``serve.queries``), no wall clock -- so driving
a *restarted* service through the same config re-generates the same
trace byte-for-byte; the service's WAL dedup folds the already-
processed prefix away and the run converges on the uninterrupted
outcome.  That property is what ``scripts/serve_kill_resume_smoke.sh``
byte-diffs in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.faults.service import ServiceFaultConfig, ServiceFaults, stream_name
from repro.models.samples import TARGETS
from repro.monitor.metrics import ResourceVector
from repro.obs import runtime as _obs
from repro.serve.service import PredictionService, QueryAnswer, ServiceConfig
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class SwarmConfig:
    """Shape of the synthetic fleet trace and query load."""

    #: Fleet size (PM streams) and trace length in sim seconds.
    pms: int = 3
    ticks: int = 240
    #: Monitor samples emitted per PM per tick.
    samples_per_tick: int = 1
    #: Placement queries issued per tick (round-robin across PMs).
    queries_per_tick: int = 2
    #: Master seed of the named trace/query streams.
    seed: int = 0
    #: Tick of the planted-coefficient regime shift (0 = no drift).
    drift_at: int = 0
    #: Multiplier applied to the planted coefficients at the shift.
    drift_scale: float = 1.6
    #: Gaussian noise on the planted targets.
    noise: float = 0.005
    #: Optional delivery-fault layer (None = clean transport).
    faults: Optional[ServiceFaultConfig] = None

    def __post_init__(self) -> None:
        if self.pms < 1:
            raise ValueError("pms must be >= 1")
        if self.ticks < 1:
            raise ValueError("ticks must be >= 1")
        if self.samples_per_tick < 1:
            raise ValueError("samples_per_tick must be >= 1")
        if self.queries_per_tick < 0:
            raise ValueError("queries_per_tick must be >= 0")
        if self.drift_at < 0:
            raise ValueError("drift_at must be >= 0")
        if self.drift_scale <= 0:
            raise ValueError("drift_scale must be positive")
        if self.noise < 0:
            raise ValueError("noise must be >= 0")

    def pm_names(self) -> List[str]:
        return [f"pm{i:02d}" for i in range(self.pms)]


def _percentile(sorted_values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``None`` for an empty sample: a run that answered zero queries has
    *no* latency distribution, and reporting 0.0 would make it
    indistinguishable from a perfect one.
    """
    if not sorted_values:
        return None
    rank = max(1, int(np.ceil(q / 100.0 * len(sorted_values))))
    return float(sorted_values[rank - 1])


def _fmt_latency(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.3f}"


@dataclass
class SwarmReport:
    """What one swarm run observed (JSON-able, render()-able)."""

    config_ticks: int
    config_pms: int
    emitted: int = 0
    verdicts: Dict[str, int] = field(default_factory=dict)
    queries: int = 0
    queries_ok: int = 0
    queries_degraded: int = 0
    queries_unavailable: int = 0
    #: ``None`` (JSON ``null``) when no queries produced a latency
    #: sample -- rendered as ``n/a``, never conflated with 0 ms.
    latency_p50_ms: Optional[float] = None
    latency_p90_ms: Optional[float] = None
    latency_p99_ms: Optional[float] = None
    latency_max_ms: Optional[float] = None
    drift_alarms: int = 0
    quarantines: int = 0
    promotions: int = 0
    registry_versions: int = 0
    recovered_records: int = 0
    faults_lost: int = 0
    faults_duplicated: int = 0
    faults_reordered: int = 0
    faults_stuck: int = 0
    faults_corrupted: int = 0

    def as_dict(self) -> Dict[str, object]:
        out = dict(vars(self))
        out["verdicts"] = dict(self.verdicts)
        return out

    def render(self) -> str:
        v = self.verdicts
        lines = [
            f"swarm: {self.config_pms} PM(s) x {self.config_ticks} tick(s), "
            f"{self.emitted} sample(s) emitted",
            "  ingest: " + " ".join(
                f"{k}={v.get(k, 0)}" for k in sorted(v)
            ),
            f"  queries: {self.queries} "
            f"(ok={self.queries_ok} degraded={self.queries_degraded} "
            f"unavailable={self.queries_unavailable})",
            f"  latency_ms: p50={_fmt_latency(self.latency_p50_ms)} "
            f"p90={_fmt_latency(self.latency_p90_ms)} "
            f"p99={_fmt_latency(self.latency_p99_ms)} "
            f"max={_fmt_latency(self.latency_max_ms)}",
            f"  models: promotions={self.promotions} "
            f"drift_alarms={self.drift_alarms} "
            f"quarantines={self.quarantines} "
            f"registry_versions={self.registry_versions}",
        ]
        if self.recovered_records:
            lines.append(
                f"  recovery: {self.recovered_records} WAL record(s) replayed"
            )
        if any((self.faults_lost, self.faults_duplicated,
                self.faults_reordered, self.faults_stuck,
                self.faults_corrupted)):
            lines.append(
                f"  faults: lost={self.faults_lost} "
                f"dup={self.faults_duplicated} "
                f"reordered={self.faults_reordered} "
                f"stuck={self.faults_stuck} "
                f"corrupted={self.faults_corrupted}"
            )
        return "\n".join(lines)


class _PlantedStream:
    """One PM's synthetic monitor stream with known linear ground truth."""

    def __init__(self, pm: str, rng: np.random.Generator,
                 config: SwarmConfig) -> None:
        self.pm = pm
        self._rng = rng
        self._config = config
        #: Planted per-target (intercept, weights) -- the ground truth.
        self.coef: Dict[str, np.ndarray] = {}
        self.intercept: Dict[str, float] = {}
        for target in TARGETS:
            self.intercept[target] = float(rng.uniform(0.005, 0.05))
            self.coef[target] = rng.uniform(0.05, 0.4, size=4)
        self._seq = 0

    def emit(self, tick: int):
        """One (seq, x, y) monitor sample at ``tick``."""
        cfg = self._config
        drifted = cfg.drift_at > 0 and tick >= cfg.drift_at
        x = self._rng.uniform(0.05, 0.9, size=4)
        y: Dict[str, float] = {}
        for target in TARGETS:
            w = self.coef[target]
            if drifted:
                w = w * cfg.drift_scale
            value = self.intercept[target] + float(w @ x)
            if cfg.noise > 0.0:
                value += cfg.noise * float(self._rng.standard_normal())
            y[target] = value
        seq = self._seq
        self._seq += 1
        return seq, tuple(float(v) for v in x), y


def run_swarm(
    root,
    config: Optional[SwarmConfig] = None,
    *,
    service_config: Optional[ServiceConfig] = None,
    stop_after_tick: Optional[int] = None,
    on_answer: Optional[Callable[[QueryAnswer], None]] = None,
) -> SwarmReport:
    """Replay one fleet trace against the service rooted at ``root``.

    ``stop_after_tick`` truncates the drive mid-trace (the kill/resume
    tests use it to model a crash at a known point without signals);
    re-running with the full trace afterwards converges on the clean
    outcome.  ``on_answer`` observes every query answer as it is
    produced (the chaos-fuzz oracles use it to audit that degraded
    answers are only ever served from promoted registry snapshots); it
    must not mutate the answer.
    """
    cfg = config or SwarmConfig()
    service = PredictionService(root, config=service_config)
    rng = RngRegistry(cfg.seed)
    streams = [
        _PlantedStream(pm, rng(f"serve.trace.{pm}"), cfg)
        for pm in cfg.pm_names()
    ]
    faults: Dict[str, ServiceFaults] = {}
    if cfg.faults is not None and cfg.faults.faulty():
        faults = {
            stream.pm: ServiceFaults(cfg.faults, rng(stream_name(stream.pm)))
            for stream in streams
        }
    query_rng = rng("serve.queries")
    names = cfg.pm_names()
    latencies: List[float] = []
    report = SwarmReport(config_ticks=cfg.ticks, config_pms=cfg.pms)
    last_tick = cfg.ticks - 1
    truncated = stop_after_tick is not None and stop_after_tick < last_tick
    if truncated:
        last_tick = stop_after_tick
    with _obs.span("serve.swarm", source="serve"):
        for tick in range(last_tick + 1):
            for stream in streams:
                fault = faults.get(stream.pm)
                deliveries = []
                if fault is not None:
                    deliveries.extend(fault.due(tick))
                for _ in range(cfg.samples_per_tick):
                    seq, x, y = stream.emit(tick)
                    report.emitted += 1
                    if fault is None:
                        service.deliver(stream.pm, seq, tick, x, y)
                        continue
                    deliveries.extend(fault.offer(seq, tick, x, y))
                for d in deliveries:
                    service.deliver(stream.pm, d.seq, tick, d.x, d.y)
            service.tick(tick)
            for q in range(cfg.queries_per_tick):
                pm = names[(tick * cfg.queries_per_tick + q) % cfg.pms]
                vm_util = ResourceVector(
                    *(float(v) for v in query_rng.uniform(0.05, 0.9, size=4))
                )
                answer = service.query(pm, vm_util, now=tick)
                if on_answer is not None:
                    on_answer(answer)
                latencies.append(answer.latency_ms)
        if truncated:
            # Model a crash: pending queue state is abandoned (the WAL
            # already has every accepted sample); a full re-run against
            # the same root converges on the clean outcome.
            service.wal.close()
        else:
            service.flush()
    stats = service.stats
    report.verdicts = {
        "accepted": stats.accepted,
        "duplicate": stats.duplicates,
        "stale": stats.stale_drops,
        "invalid": stats.invalid,
        "quarantined": stats.quarantine_drops,
        "shed": stats.shed,
    }
    report.queries = stats.queries
    report.queries_ok = stats.queries_ok
    report.queries_degraded = stats.queries_degraded
    report.queries_unavailable = stats.queries_unavailable
    latencies.sort()
    report.latency_p50_ms = _percentile(latencies, 50.0)
    report.latency_p90_ms = _percentile(latencies, 90.0)
    report.latency_p99_ms = _percentile(latencies, 99.0)
    report.latency_max_ms = latencies[-1] if latencies else None
    report.drift_alarms = stats.drift_alarms
    report.quarantines = stats.quarantines
    report.promotions = stats.promotions
    report.registry_versions = service.registry.max_version
    report.recovered_records = stats.recovered_records
    for fault in faults.values():
        report.faults_lost += fault.lost
        report.faults_duplicated += fault.duplicated
        report.faults_reordered += fault.reordered
        report.faults_stuck += fault.stuck
        report.faults_corrupted += fault.corrupted
    _obs.set_gauge("serve_registry_versions", service.registry.max_version)
    _obs.set_gauge("serve_streams", cfg.pms)
    return report
