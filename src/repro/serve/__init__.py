"""The online overhead-prediction service (robustness-first).

The paper fits Eq. (1)-(3) offline per run; this package productionizes
the fit in the spirit of uPredict (arXiv:1908.04491): a long-running,
sim-time-driven service that ingests monitor samples forever,
incrementally refits per-PM models with drift detection, versions the
fitted coefficients in a small registry, and answers placement queries
under a deterministic latency model.  It is designed robustness-first:

:mod:`repro.serve.wal`
    Crash-safe ingest: every accepted sample (and every rejected-sample
    *strike*) is appended to a checksummed write-ahead log before it
    touches model state, so a SIGKILL'd service replays to byte-identical
    state on restart (the truncation-tolerant ledger pattern of
    :mod:`repro.perf.manifest`).
:mod:`repro.serve.drift`
    Page-Hinkley residual drift detection that triggers refit epochs.
:mod:`repro.serve.registry`
    Versioned model registry: atomic integrity-guarded snapshots
    (:mod:`repro.perf.integrity`), monotonic version ids, explicit
    promote/rollback, idempotent under WAL replay.
:mod:`repro.serve.service`
    The service itself: bounded per-PM queues with deterministic load
    shedding, stream quarantine on NaN/outlier bursts, a staleness
    circuit breaker that degrades to last-good answers, and a
    :class:`~repro.serve.service.ServiceStats` report.
:mod:`repro.serve.swarm`
    A deterministic client swarm replaying fleet-scale traces (with
    optional :mod:`repro.faults.service` delivery faults) and recording
    sim-time query-latency percentiles.

Everything runs on simulated time -- no wall clock, no ad-hoc RNG --
and the package sits inside the ``repro lint`` deterministic core.
"""

from repro.serve.drift import PageHinkley
from repro.serve.registry import ModelRegistry, ModelVersion, RegistryError
from repro.serve.service import (
    ConfigMismatchWarning,
    PredictionService,
    QueryAnswer,
    ServiceConfig,
    ServiceStats,
    VERDICTS,
)
from repro.serve.swarm import SwarmConfig, SwarmReport, run_swarm
from repro.serve.wal import SampleWAL, WalRecord

__all__ = [
    "ConfigMismatchWarning",
    "ModelRegistry",
    "ModelVersion",
    "PageHinkley",
    "PredictionService",
    "QueryAnswer",
    "RegistryError",
    "SampleWAL",
    "ServiceConfig",
    "ServiceStats",
    "SwarmConfig",
    "SwarmReport",
    "VERDICTS",
    "WalRecord",
    "run_swarm",
]
