"""The single-VM virtualization-overhead model (paper Eq. (1)-(2)).

Each overhead target is a linear combination of the guest's utilization
vector::

    M_hat = a_o + a_c*M_c + a_m*M_m + a_i*M_i + a_n*M_n      (Eq. 1)

fitted per target by regression over the micro-benchmark measurements;
stacking the per-target coefficient rows gives the paper's coefficient
matrix ``a`` with ``M_hat = a M`` (Eq. 2).  PM CPU is assembled from the
predicted Dom0 and hypervisor utilizations plus the observed guest CPU,
exactly as the paper evaluates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.models.regression import LinearModel, fit
from repro.models.samples import (
    TARGETS,
    TrainingSample,
    design_matrix,
    target_vector,
)
from repro.monitor.metrics import RESOURCES, ResourceVector


@dataclass(frozen=True)
class PredictedUtilization:
    """Model output for one observation."""

    dom0_cpu: float
    hyp_cpu: float
    pm_cpu: float
    pm_mem: float
    pm_io: float
    pm_bw: float

    def get(self, target: str) -> float:
        """Access a component by trace-style name (e.g. ``"pm.bw"``)."""
        key = target.replace(".", "_")
        if not hasattr(self, key):
            raise ValueError(f"unknown target {target!r}")
        return getattr(self, key)


class SingleVMOverheadModel:
    """Eq. (1)-(2): per-target affine maps over the VM utilization vector."""

    def __init__(self, models: Dict[str, LinearModel]) -> None:
        missing = set(TARGETS) - set(models)
        if missing:
            raise ValueError(f"missing per-target models: {sorted(missing)}")
        self._models = dict(models)

    @classmethod
    def fit(
        cls,
        samples: Sequence[TrainingSample],
        *,
        method: str = "ols",
        **kwargs,
    ) -> "SingleVMOverheadModel":
        """Fit from single-VM training samples.

        Raises
        ------
        ValueError
            If any sample has ``n_vms != 1`` -- colocated data belongs to
            :class:`~repro.models.multi_vm.MultiVMOverheadModel`.
        """
        if not samples:
            raise ValueError("no training samples")
        bad = [s.n_vms for s in samples if s.n_vms != 1]
        if bad:
            raise ValueError(
                f"single-VM model got samples with n_vms={set(bad)}"
            )
        X = design_matrix(samples)
        models = {
            t: fit(X, target_vector(samples, t), method=method, **kwargs)
            for t in TARGETS
        }
        return cls(models)

    def coefficients(self, target: str) -> LinearModel:
        """The fitted :class:`LinearModel` for one target."""
        try:
            return self._models[target]
        except KeyError:
            raise ValueError(f"unknown target {target!r}") from None

    def coefficient_matrix(self) -> np.ndarray:
        """The paper's ``a``: one row per target, columns
        ``[a_o, a_c, a_m, a_i, a_n]`` in :data:`TARGETS` order."""
        return np.vstack(
            [
                np.concatenate(
                    ([self._models[t].intercept], self._models[t].coef)
                )
                for t in TARGETS
            ]
        )

    def predict(self, vm_util: ResourceVector) -> PredictedUtilization:
        """Predict PM/Dom0/hypervisor utilization for one guest."""
        x = vm_util.as_array()
        dom0 = float(self._models["dom0.cpu"].predict(x))
        hyp = float(self._models["hyp.cpu"].predict(x))
        return PredictedUtilization(
            dom0_cpu=dom0,
            hyp_cpu=hyp,
            # PM CPU via the paper's indirect sum: predicted Dom0 +
            # predicted hypervisor + observed guest CPU.
            pm_cpu=dom0 + hyp + vm_util.cpu,
            pm_mem=float(self._models["pm.mem"].predict(x)),
            pm_io=float(self._models["pm.io"].predict(x)),
            pm_bw=float(self._models["pm.bw"].predict(x)),
        )

    def predict_many(self, X: np.ndarray) -> Dict[str, np.ndarray]:
        """Vectorized prediction over an (n, 4) utilization matrix."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(RESOURCES):
            raise ValueError("X must be (n_samples, 4)")
        out = {t: np.asarray(self._models[t].predict(X)) for t in TARGETS}
        out["pm.cpu"] = out["dom0.cpu"] + out["hyp.cpu"] + X[:, 0]
        return out
