"""Residual diagnostics for the overhead regressions.

EXPERIMENTS.md documents one systematic deviation: the linear Eq. (1)
model over/under-shoots the *convex* Dom0 response in the middle of the
CPU range.  :func:`bias_by_bin` makes that visible without plots: it
bins the training samples by one feature and reports the mean residual
per bin.  A well-specified linear model shows ~zero bias everywhere; a
convex target under a linear fit shows the tell-tale negative-positive-
negative (or inverted) bow across bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.models.multi_vm import MultiVMOverheadModel
from repro.models.samples import TARGETS, TrainingSample
from repro.models.single_vm import SingleVMOverheadModel

#: Feature names in the canonical order of the utilization vector.
FEATURES = ("cpu", "mem", "io", "bw")


@dataclass(frozen=True)
class BinBias:
    """Mean residual of one feature bin."""

    lo: float
    hi: float
    n: int
    mean_residual: float

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("n must be >= 0")


def _predictions(model, samples: Sequence[TrainingSample], target: str):
    if isinstance(model, SingleVMOverheadModel):
        X = np.vstack([s.vm_sum.as_array() for s in samples])
        return np.asarray(model.predict_many(X)[target])
    assert isinstance(model, MultiVMOverheadModel)
    return np.asarray(model.predict_samples(samples)[target])


def bias_by_bin(
    model: SingleVMOverheadModel | MultiVMOverheadModel,
    samples: Sequence[TrainingSample],
    *,
    target: str = "dom0.cpu",
    feature: str = "cpu",
    bins: int = 5,
) -> List[BinBias]:
    """Mean residual (measured - predicted) per feature bin."""
    if not samples:
        raise ValueError("no samples")
    if target not in TARGETS:
        raise ValueError(f"unknown target {target!r}")
    if feature not in FEATURES:
        raise ValueError(f"unknown feature {feature!r}")
    if bins < 2:
        raise ValueError("bins must be >= 2")
    values = np.array(
        [s.vm_sum.get(feature) for s in samples], dtype=float
    )
    measured = np.array([s.targets[target] for s in samples])
    predicted = _predictions(model, samples, target)
    resid = measured - predicted
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        return [BinBias(lo=lo, hi=hi, n=len(samples),
                        mean_residual=float(resid.mean()))]
    edges = np.linspace(lo, hi, bins + 1)
    out: List[BinBias] = []
    for b in range(bins):
        if b == bins - 1:
            mask = (values >= edges[b]) & (values <= edges[b + 1])
        else:
            mask = (values >= edges[b]) & (values < edges[b + 1])
        n = int(mask.sum())
        out.append(
            BinBias(
                lo=float(edges[b]),
                hi=float(edges[b + 1]),
                n=n,
                mean_residual=float(resid[mask].mean()) if n else 0.0,
            )
        )
    return out


def max_abs_bias(bias: Sequence[BinBias], *, min_n: int = 1) -> float:
    """Largest |mean residual| across bins with at least ``min_n`` samples.

    Thin bins carry mostly measurement noise; diagnostics usually set
    ``min_n`` to a handful of samples.
    """
    if min_n < 1:
        raise ValueError("min_n must be >= 1")
    populated = [b for b in bias if b.n >= min_n]
    if not populated:
        raise ValueError("no sufficiently populated bins")
    return max(abs(b.mean_residual) for b in populated)


def render_bias(bias: Sequence[BinBias]) -> str:
    """Fixed-width diagnostic table."""
    lines = [f"{'bin':>20} {'n':>6} {'mean residual':>14}"]
    for b in bias:
        label = f"[{b.lo:.3g}, {b.hi:.3g}]"
        lines.append(f"{label:>20} {b.n:>6} {b.mean_residual:>14.4f}")
    return "\n".join(lines)
