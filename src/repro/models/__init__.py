"""Virtualization-overhead estimation models (paper Section V).

Public entry points:

* :func:`~repro.models.training.train_single_vm_model` /
  :class:`~repro.models.single_vm.SingleVMOverheadModel` -- Eq. (1)-(2).
* :func:`~repro.models.training.train_multi_vm_model` /
  :class:`~repro.models.multi_vm.MultiVMOverheadModel` -- Eq. (3).
* :mod:`~repro.models.regression` -- OLS and Rousseeuw LMS engines.
* :mod:`~repro.models.evaluation` -- the |p-m|/m error CDFs of Figs 7-9.
"""

from repro.models.evaluation import (
    ErrorReport,
    error_report,
    relative_errors,
    summarize,
)
from repro.models.multi_vm import (
    MultiVMOverheadModel,
    alpha_constant,
    alpha_linear,
    alpha_quadratic,
)
from repro.models.attribution import (
    AttributionReport,
    OverheadShare,
    attribute_overhead,
)
from repro.models.describe import describe_multi_vm, describe_single_vm
from repro.models.hetero import (
    HeterogeneousOverheadModel,
    TypedSample,
    typed_samples_from_report,
)
from repro.models.intervals import (
    IntervalModel,
    PredictionInterval,
    fit_intervals,
    pessimistic_pm_cpu,
)
from repro.models.online import OnlineOverheadModel, RecursiveLeastSquares
from repro.models.regression import (
    LinearModel,
    fit,
    fit_auto,
    fit_lms,
    fit_ols,
    outlier_fraction,
)
from repro.models.residuals import BinBias, bias_by_bin, max_abs_bias, render_bias
from repro.models.validation import (
    FitQuality,
    cross_validate_multi,
    fit_quality,
    kfold_indices,
    render_quality_table,
)
from repro.models.samples import (
    TARGETS,
    TrainingSample,
    design_matrix,
    samples_from_report,
    target_vector,
    vm_counts,
)
from repro.models.single_vm import PredictedUtilization, SingleVMOverheadModel
from repro.models.training import (
    TrainingConfig,
    gather_training_samples,
    run_benchmark_measurement,
    train_multi_vm_model,
    train_single_vm_model,
)

__all__ = [
    "AttributionReport",
    "BinBias",
    "bias_by_bin",
    "max_abs_bias",
    "render_bias",
    "ErrorReport",
    "OverheadShare",
    "attribute_overhead",
    "FitQuality",
    "HeterogeneousOverheadModel",
    "IntervalModel",
    "PredictionInterval",
    "fit_intervals",
    "pessimistic_pm_cpu",
    "TypedSample",
    "typed_samples_from_report",
    "cross_validate_multi",
    "describe_multi_vm",
    "describe_single_vm",
    "fit_quality",
    "kfold_indices",
    "render_quality_table",
    "LinearModel",
    "MultiVMOverheadModel",
    "OnlineOverheadModel",
    "RecursiveLeastSquares",
    "PredictedUtilization",
    "SingleVMOverheadModel",
    "TARGETS",
    "TrainingConfig",
    "TrainingSample",
    "alpha_constant",
    "alpha_linear",
    "alpha_quadratic",
    "design_matrix",
    "error_report",
    "fit",
    "fit_auto",
    "fit_lms",
    "fit_ols",
    "outlier_fraction",
    "gather_training_samples",
    "relative_errors",
    "run_benchmark_measurement",
    "samples_from_report",
    "summarize",
    "target_vector",
    "train_multi_vm_model",
    "train_single_vm_model",
    "vm_counts",
]
