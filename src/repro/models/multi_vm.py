"""The co-located-VM virtualization-overhead model (paper Eq. (3)).

With ``N`` guests on a PM the paper models::

    M_hat = a (sum_k M_k)  +  alpha(N) * o (sum_k M_k)         (Eq. 3)

``a`` plays the single-VM role, ``o`` captures the synthesized effect
of colocation, and ``alpha(N)`` is "a linear function of N" with
``alpha(1)=0`` and ``alpha(2)=1`` -- i.e. ``alpha(N) = N - 1``.

Because Eq. (3) is linear in the stacked coefficient vector
``[a | o]``, fitting reduces to one regression per target over the
8 + 2 = 10 feature columns ``[1, sumM, alpha, alpha*sumM]``, pooled over
runs with different N.  That pooling is what lets the model interpolate
to VM counts never measured (the paper applies the 1/2-VM-trained model
to 3 VMs per PM in Figure 9).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.models.regression import LinearModel, fit
from repro.models.samples import (
    TARGETS,
    TrainingSample,
    design_matrix,
    target_vector,
    vm_counts,
)
from repro.monitor.metrics import ResourceVector
from repro.models.single_vm import PredictedUtilization


def alpha_linear(n: float) -> float:
    """The paper's colocation coefficient: alpha(1)=0, alpha(2)=1."""
    return float(n) - 1.0


def alpha_constant(n: float) -> float:
    """Ablation variant: colocation overhead independent of N (N>1)."""
    return 1.0 if n > 1 else 0.0


def alpha_quadratic(n: float) -> float:
    """Ablation variant: superlinear colocation overhead."""
    return (float(n) - 1.0) ** 2


class MultiVMOverheadModel:
    """Eq. (3): base coefficients ``a`` plus colocation coefficients ``o``."""

    def __init__(
        self,
        models: Dict[str, LinearModel],
        *,
        alpha: Callable[[float], float] = alpha_linear,
    ) -> None:
        missing = set(TARGETS) - set(models)
        if missing:
            raise ValueError(f"missing per-target models: {sorted(missing)}")
        self._models = dict(models)
        self._alpha = alpha

    @classmethod
    def fit(
        cls,
        samples: Sequence[TrainingSample],
        *,
        method: str = "ols",
        alpha: Callable[[float], float] = alpha_linear,
        **kwargs,
    ) -> "MultiVMOverheadModel":
        """Fit from pooled samples spanning at least two VM counts.

        A single VM count would leave the ``a`` / ``o`` split
        unidentifiable, so it is rejected.
        """
        if not samples:
            raise ValueError("no training samples")
        counts = {s.n_vms for s in samples}
        if len(counts) < 2:
            raise ValueError(
                "multi-VM fit needs samples from >= 2 distinct VM counts; "
                f"got N={sorted(counts)}"
            )
        X = cls._features(design_matrix(samples), vm_counts(samples), alpha)
        models = {
            t: fit(X, target_vector(samples, t), method=method, **kwargs)
            for t in TARGETS
        }
        return cls(models, alpha=alpha)

    @staticmethod
    def _features(
        sum_m: np.ndarray, counts: np.ndarray, alpha: Callable[[float], float]
    ) -> np.ndarray:
        a = np.array([alpha(n) for n in counts])[:, None]
        # [sumM | alpha | alpha * sumM]; the regression adds the global
        # intercept, completing a's constant term.
        return np.hstack([sum_m, a, a * sum_m])

    # -- coefficient access ------------------------------------------------

    def base_coefficients(self, target: str) -> np.ndarray:
        """The paper's ``a`` row for one target: ``[a_o, a_c, a_m, a_i, a_n]``."""
        m = self._model(target)
        return np.concatenate(([m.intercept], m.coef[:4]))

    def colocation_coefficients(self, target: str) -> np.ndarray:
        """The paper's ``o`` row: ``[o_const, o_c, o_m, o_i, o_n]``."""
        m = self._model(target)
        return np.concatenate(([m.coef[4]], m.coef[5:9]))

    def _model(self, target: str) -> LinearModel:
        try:
            return self._models[target]
        except KeyError:
            raise ValueError(f"unknown target {target!r}") from None

    # -- prediction -------------------------------------------------------

    def predict(
        self, vm_utils: Sequence[ResourceVector]
    ) -> PredictedUtilization:
        """Predict PM utilization for ``len(vm_utils)`` co-located guests."""
        if not vm_utils:
            raise ValueError("need at least one VM utilization vector")
        total = vm_utils[0]
        for v in vm_utils[1:]:
            total = total + v
        n = len(vm_utils)
        x = self._features(
            total.as_array()[None, :], np.array([float(n)]), self._alpha
        )[0]
        dom0 = float(self._models["dom0.cpu"].predict(x))
        hyp = float(self._models["hyp.cpu"].predict(x))
        return PredictedUtilization(
            dom0_cpu=dom0,
            hyp_cpu=hyp,
            pm_cpu=dom0 + hyp + total.cpu,
            pm_mem=float(self._models["pm.mem"].predict(x)),
            pm_io=float(self._models["pm.io"].predict(x)),
            pm_bw=float(self._models["pm.bw"].predict(x)),
        )

    def predict_samples(
        self, samples: Sequence[TrainingSample]
    ) -> Dict[str, np.ndarray]:
        """Vectorized prediction over training-style samples."""
        if not samples:
            raise ValueError("no samples")
        X = self._features(
            design_matrix(samples), vm_counts(samples), self._alpha
        )
        out = {t: np.asarray(self._models[t].predict(X)) for t in TARGETS}
        guest_cpu = np.array([s.vm_sum.cpu for s in samples])
        out["pm.cpu"] = out["dom0.cpu"] + out["hyp.cpu"] + guest_cpu
        return out
