"""Training-sample containers shared by the overhead models.

One :class:`TrainingSample` is one synchronized 1 Hz observation of a
PM: how many guests it hosted, the elementwise *sum* of their
utilization vectors (the models' input per Eq. (3)), and the measured
overhead targets.

Target vocabulary
-----------------
``dom0.cpu`` and ``hyp.cpu`` are modeled directly; the PM CPU
prediction is then assembled as Dom0 + hypervisor + guest CPU exactly
as the paper does ("we predicted the PM CPU utilization based on the
predicted Dom0 and hypervisor utilizations").  ``pm.mem`` / ``pm.io`` /
``pm.bw`` are modeled directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.monitor.metrics import ResourceVector
from repro.monitor.script import MeasurementReport
from repro.sim import sanitize

#: Overhead targets every model fits, in canonical order.
TARGETS: tuple[str, ...] = ("dom0.cpu", "hyp.cpu", "pm.mem", "pm.io", "pm.bw")


@dataclass(frozen=True)
class TrainingSample:
    """One (input, targets) observation."""

    n_vms: int
    vm_sum: ResourceVector
    targets: Dict[str, float]

    def __post_init__(self) -> None:
        if self.n_vms <= 0:
            raise ValueError("n_vms must be positive")
        missing = set(TARGETS) - set(self.targets)
        if missing:
            raise ValueError(f"sample missing targets {sorted(missing)}")


def samples_from_report(
    report: MeasurementReport, *, n_vms: int | None = None,
    valid_only: bool = False,
) -> List[TrainingSample]:
    """Explode a measurement report into per-second training samples.

    VM names are discovered from the report (everything that is not
    ``dom0`` / ``hyp`` / ``pm``); ``n_vms`` overrides the count when a
    report intentionally exposes only a subset of guests.

    With ``valid_only`` the ticks flagged invalid by the monitor (gap
    samples from dropout bursts or PM outages) are excluded, so the
    regression never trains on held or NaN filler values.  Reports
    without a validity mask are returned whole either way.
    """
    vm_names = [
        e for e in report.entities() if e not in ("dom0", "hyp", "pm")
    ]
    if not vm_names:
        raise ValueError("report contains no VM traces")
    count = n_vms if n_vms is not None else len(vm_names)

    cpu = np.sum(
        [report.series(v, "cpu").values for v in vm_names], axis=0
    )
    mem = np.sum(
        [report.series(v, "mem").values for v in vm_names], axis=0
    )
    io = np.sum([report.series(v, "io").values for v in vm_names], axis=0)
    bw = np.sum([report.series(v, "bw").values for v in vm_names], axis=0)
    target_series = {t: report.traces[t].values for t in TARGETS}

    if valid_only and report.validity is not None:
        mask = np.asarray(report.validity, dtype=bool)
        cpu, mem, io, bw = cpu[mask], mem[mask], io[mask], bw[mask]
        target_series = {t: s[mask] for t, s in target_series.items()}

    # Under --sanitize, a NaN surviving to this point means a monitor
    # gap leaked past its validity mask into the regression inputs.
    sanitize.guard_finite_matrix(
        {"vm.cpu": cpu, "vm.mem": mem, "vm.io": io, "vm.bw": bw,
         **target_series},
        context="samples_from_report (model training input)",
    )

    out: List[TrainingSample] = []
    for i in range(len(cpu)):
        out.append(
            TrainingSample(
                n_vms=count,
                vm_sum=ResourceVector(
                    cpu=float(cpu[i]),
                    mem=float(mem[i]),
                    io=float(io[i]),
                    bw=float(bw[i]),
                ),
                targets={t: float(s[i]) for t, s in target_series.items()},
            )
        )
    return out


def design_matrix(samples: Sequence[TrainingSample]) -> np.ndarray:
    """Stack the summed VM utilization vectors into an (n, 4) matrix."""
    if not samples:
        raise ValueError("no samples")
    return np.vstack([s.vm_sum.as_array() for s in samples])


def target_vector(samples: Sequence[TrainingSample], target: str) -> np.ndarray:
    """Extract one target column."""
    if target not in TARGETS:
        raise ValueError(f"unknown target {target!r}; expected one of {TARGETS}")
    return np.array([s.targets[target] for s in samples], dtype=float)


def vm_counts(samples: Iterable[TrainingSample]) -> np.ndarray:
    """The ``N`` column (guests per sample)."""
    return np.array([s.n_vms for s in samples], dtype=float)
