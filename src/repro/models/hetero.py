"""Heterogeneous-VM overhead model (the paper's future work).

The paper's conclusion names its open problem: "improving the model for
estimating the resource utilization overhead for different types of VMs
with diverse configurations, when they are co-located in a PM".
Eq. (3) sums *all* guests into one vector, so two VM types with
different per-unit overhead (e.g. a network appliance whose Kb/s cost
Dom0 more than a batch worker's) are indistinguishable.

:class:`HeterogeneousOverheadModel` generalizes Eq. (3) with one
coefficient block per declared VM type::

    M_hat = sum_t  a_t (sum_{k in type t} M_k)  +  alpha(N) * o (sum_k M_k)

It degenerates to the paper's model when only one type is declared, and
the tests show it recovering per-type structure that the pooled model
averages away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.models.multi_vm import alpha_linear
from repro.models.regression import LinearModel, fit
from repro.models.samples import TARGETS
from repro.models.single_vm import PredictedUtilization
from repro.monitor.metrics import ResourceVector


@dataclass(frozen=True)
class TypedSample:
    """One observation of a PM hosting typed guests.

    ``by_type`` maps each declared type to the elementwise sum of the
    utilization vectors of its guests (absent types mean zero), and
    ``counts`` to the number of guests of that type.
    """

    by_type: Dict[str, ResourceVector]
    counts: Dict[str, int]
    targets: Dict[str, float]

    def __post_init__(self) -> None:
        missing = set(TARGETS) - set(self.targets)
        if missing:
            raise ValueError(f"sample missing targets {sorted(missing)}")
        bad = set(self.by_type) - set(self.counts)
        if bad:
            raise ValueError(f"types without counts: {sorted(bad)}")
        if any(c < 0 for c in self.counts.values()):
            raise ValueError("counts must be >= 0")

    @property
    def n_vms(self) -> int:
        """Total guests in the observation."""
        return sum(self.counts.values())

    def total(self) -> ResourceVector:
        """Sum over all types."""
        out = ResourceVector()
        for vec in self.by_type.values():
            out = out + vec
        return out


class HeterogeneousOverheadModel:
    """Eq. (3) with per-VM-type base coefficient blocks."""

    def __init__(
        self,
        vm_types: Sequence[str],
        models: Dict[str, LinearModel],
        *,
        alpha: Callable[[float], float] = alpha_linear,
    ) -> None:
        if not vm_types:
            raise ValueError("need at least one VM type")
        if len(set(vm_types)) != len(vm_types):
            raise ValueError("duplicate VM types")
        missing = set(TARGETS) - set(models)
        if missing:
            raise ValueError(f"missing per-target models: {sorted(missing)}")
        self.vm_types = tuple(vm_types)
        self._models = dict(models)
        self._alpha = alpha

    # -- fitting -----------------------------------------------------------

    @classmethod
    def fit(
        cls,
        vm_types: Sequence[str],
        samples: Sequence[TypedSample],
        *,
        alpha: Callable[[float], float] = alpha_linear,
        method: str = "ols",
        **kwargs,
    ) -> "HeterogeneousOverheadModel":
        """Fit from typed observations.

        Requires samples where each declared type actually appears, so
        its coefficient block is identified.
        """
        if not samples:
            raise ValueError("no training samples")
        vm_types = tuple(vm_types)
        for t in vm_types:
            if not any(s.counts.get(t, 0) > 0 for s in samples):
                raise ValueError(f"type {t!r} never appears in the samples")
        unknown = {
            t for s in samples for t in s.by_type if t not in vm_types
        }
        if unknown:
            raise ValueError(f"samples contain undeclared types {sorted(unknown)}")
        X = np.vstack([cls._features(vm_types, s, alpha) for s in samples])
        models = {
            tgt: fit(
                X,
                np.array([s.targets[tgt] for s in samples]),
                method=method,
                **kwargs,
            )
            for tgt in TARGETS
        }
        return cls(vm_types, models, alpha=alpha)

    @staticmethod
    def _features(
        vm_types: Tuple[str, ...],
        sample: TypedSample,
        alpha: Callable[[float], float],
    ) -> np.ndarray:
        blocks = [
            sample.by_type.get(t, ResourceVector()).as_array()
            for t in vm_types
        ]
        a = alpha(sample.n_vms)
        total = sample.total().as_array()
        return np.concatenate(blocks + [[a], a * total])

    # -- coefficient access --------------------------------------------------

    def type_coefficients(self, vm_type: str, target: str) -> np.ndarray:
        """The ``a_t`` block ``[a_c, a_m, a_i, a_n]`` for one type."""
        if vm_type not in self.vm_types:
            raise ValueError(f"unknown VM type {vm_type!r}")
        m = self._model(target)
        i = 4 * self.vm_types.index(vm_type)
        return m.coef[i : i + 4]

    def _model(self, target: str) -> LinearModel:
        try:
            return self._models[target]
        except KeyError:
            raise ValueError(f"unknown target {target!r}") from None

    # -- prediction ------------------------------------------------------------

    def predict(
        self, vms: Sequence[Tuple[str, ResourceVector]]
    ) -> PredictedUtilization:
        """Predict PM utilization for a typed guest list."""
        if not vms:
            raise ValueError("need at least one (type, utilization) pair")
        by_type: Dict[str, ResourceVector] = {}
        counts: Dict[str, int] = {}
        for vm_type, vec in vms:
            if vm_type not in self.vm_types:
                raise ValueError(f"unknown VM type {vm_type!r}")
            by_type[vm_type] = by_type.get(vm_type, ResourceVector()) + vec
            counts[vm_type] = counts.get(vm_type, 0) + 1
        sample = TypedSample(
            by_type=by_type,
            counts=counts,
            targets={t: 0.0 for t in TARGETS},
        )
        x = self._features(self.vm_types, sample, self._alpha)
        dom0 = float(self._models["dom0.cpu"].predict(x))
        hyp = float(self._models["hyp.cpu"].predict(x))
        total_cpu = sample.total().cpu
        return PredictedUtilization(
            dom0_cpu=dom0,
            hyp_cpu=hyp,
            pm_cpu=dom0 + hyp + total_cpu,
            pm_mem=float(self._models["pm.mem"].predict(x)),
            pm_io=float(self._models["pm.io"].predict(x)),
            pm_bw=float(self._models["pm.bw"].predict(x)),
        )

    def predict_samples(
        self, samples: Sequence[TypedSample]
    ) -> Dict[str, np.ndarray]:
        """Vectorized prediction over typed observations."""
        if not samples:
            raise ValueError("no samples")
        X = np.vstack(
            [self._features(self.vm_types, s, self._alpha) for s in samples]
        )
        out = {t: np.asarray(self._models[t].predict(X)) for t in TARGETS}
        total_cpu = np.array([s.total().cpu for s in samples])
        out["pm.cpu"] = out["dom0.cpu"] + out["hyp.cpu"] + total_cpu
        return out


def typed_samples_from_report(report, type_of: Dict[str, str]) -> List[TypedSample]:
    """Explode a measurement report into per-second typed samples.

    ``type_of`` maps every VM entity in the report to its declared type;
    unmapped VMs are an error (silent drops would bias the fit).
    """
    import numpy as np

    from repro.models.samples import samples_from_report  # noqa: F401

    vm_names = [
        e for e in report.entities() if e not in ("dom0", "hyp", "pm")
    ]
    if not vm_names:
        raise ValueError("report contains no VM traces")
    missing = set(vm_names) - set(type_of)
    if missing:
        raise ValueError(f"VMs without a declared type: {sorted(missing)}")

    per_vm = {
        name: {
            res: report.series(name, res).values
            for res in ("cpu", "mem", "io", "bw")
        }
        for name in vm_names
    }
    target_series = {t: report.traces[t].values for t in TARGETS}
    n = len(next(iter(target_series.values())))
    out: List[TypedSample] = []
    for i in range(n):
        by_type: Dict[str, ResourceVector] = {}
        counts: Dict[str, int] = {}
        for name in vm_names:
            t = type_of[name]
            vec = ResourceVector(
                cpu=float(per_vm[name]["cpu"][i]),
                mem=float(per_vm[name]["mem"][i]),
                io=float(per_vm[name]["io"][i]),
                bw=float(per_vm[name]["bw"][i]),
            )
            by_type[t] = by_type.get(t, ResourceVector()) + vec
            counts[t] = counts.get(t, 0) + 1
        out.append(
            TypedSample(
                by_type=by_type,
                counts=counts,
                targets={t: float(s[i]) for t, s in target_series.items()},
            )
        )
    return out
