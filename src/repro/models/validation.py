"""Model validation utilities: cross-validation and residual analysis.

The paper evaluates its model on a held-out application (RUBiS); these
helpers add the standard in-sample rigor an open-source release needs:
k-fold cross-validation over the training samples, per-target residual
summaries, and a goodness-of-fit report that EXPERIMENTS.md's model
section draws from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.models.multi_vm import MultiVMOverheadModel, alpha_linear
from repro.models.samples import TARGETS, TrainingSample
from repro.models.single_vm import SingleVMOverheadModel
from repro.sim.rng import generator_from_seed


@dataclass(frozen=True)
class FitQuality:
    """Goodness-of-fit of one target's regression."""

    target: str
    r_squared: float
    rmse: float
    max_abs_residual: float

    def __post_init__(self) -> None:
        if self.rmse < 0 or self.max_abs_residual < 0:
            raise ValueError("error statistics must be >= 0")


def _quality(target: str, actual: np.ndarray, predicted: np.ndarray) -> FitQuality:
    resid = actual - predicted
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((actual - actual.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitQuality(
        target=target,
        r_squared=r2,
        rmse=float(np.sqrt(np.mean(resid**2))),
        max_abs_residual=float(np.max(np.abs(resid))),
    )


def fit_quality(
    model: SingleVMOverheadModel | MultiVMOverheadModel,
    samples: Sequence[TrainingSample],
) -> Dict[str, FitQuality]:
    """In-sample fit quality per target."""
    if not samples:
        raise ValueError("no samples")
    if isinstance(model, SingleVMOverheadModel):
        X = np.vstack([s.vm_sum.as_array() for s in samples])
        pred = model.predict_many(X)
    else:
        pred = model.predict_samples(samples)
    out = {}
    for target in TARGETS:
        actual = np.array([s.targets[target] for s in samples])
        out[target] = _quality(target, actual, np.asarray(pred[target]))
    return out


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Shuffled k-fold index partition of ``range(n)``."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} samples")
    perm = rng.permutation(n)
    return [fold for fold in np.array_split(perm, k)]


def cross_validate_multi(
    samples: Sequence[TrainingSample],
    *,
    k: int = 5,
    seed: int = 0,
    alpha: Callable[[float], float] = alpha_linear,
    method: str = "ols",
) -> Dict[str, float]:
    """K-fold cross-validated RMSE per target for the Eq. (3) model.

    Folds are drawn sample-wise (the paper's per-second observations are
    plentiful); each fold's model is trained on the remaining folds.
    Folds that lose all but one VM count are skipped -- the multi-VM
    model is unidentifiable there.
    """
    samples = list(samples)
    rng = generator_from_seed(seed)
    folds = kfold_indices(len(samples), k, rng)
    sq_errors: Dict[str, List[float]] = {t: [] for t in TARGETS}
    for fold in folds:
        test_idx = set(int(i) for i in fold)
        train = [s for i, s in enumerate(samples) if i not in test_idx]
        test = [samples[i] for i in sorted(test_idx)]
        if len({s.n_vms for s in train}) < 2 or not test:
            continue
        model = MultiVMOverheadModel.fit(train, alpha=alpha, method=method)
        pred = model.predict_samples(test)
        for target in TARGETS:
            actual = np.array([s.targets[target] for s in test])
            sq_errors[target].extend(
                ((np.asarray(pred[target]) - actual) ** 2).tolist()
            )
    out = {}
    for target, errs in sq_errors.items():
        if not errs:
            raise RuntimeError("every fold was degenerate; lower k")
        out[target] = float(np.sqrt(np.mean(errs)))
    return out


def render_quality_table(quality: Dict[str, FitQuality]) -> str:
    """Fixed-width text table of fit quality (for reports)."""
    lines = [f"{'target':<10} {'R^2':>8} {'RMSE':>10} {'max |resid|':>12}"]
    for target in TARGETS:
        q = quality[target]
        lines.append(
            f"{target:<10} {q.r_squared:>8.4f} {q.rmse:>10.4f} "
            f"{q.max_abs_residual:>12.4f}"
        )
    return "\n".join(lines)
