"""Prediction-accuracy evaluation (paper Section VI-A).

The paper scores its model with the relative prediction error
``|p - m| / m`` per 1 Hz observation and reports its empirical CDF
(Figures 7-9).  :class:`ErrorReport` packages one such error
distribution with the percentile helpers the figure criteria use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


def relative_errors(predicted, measured) -> np.ndarray:
    """``|p - m| / m`` elementwise, as *percent*.

    Raises on non-positive measurements -- a zero denominator means the
    metric was not exercised and the comparison is meaningless.
    """
    p = np.asarray(predicted, dtype=float)
    m = np.asarray(measured, dtype=float)
    if p.shape != m.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {m.shape}")
    if p.size == 0:
        raise ValueError("no observations")
    if np.any(m <= 0):
        raise ValueError("measured values must be positive for relative error")
    return 100.0 * np.abs(p - m) / m


@dataclass(frozen=True)
class ErrorReport:
    """An empirical prediction-error distribution (percent units)."""

    errors: np.ndarray

    def __post_init__(self) -> None:
        arr = np.sort(np.asarray(self.errors, dtype=float))
        if arr.size == 0:
            raise ValueError("empty error set")
        if np.any(arr < 0):
            raise ValueError("errors must be >= 0")
        object.__setattr__(self, "errors", arr)

    def __len__(self) -> int:
        return len(self.errors)

    def percentile(self, q: float) -> float:
        """Error value at the ``q``-th percentile (0-100)."""
        return float(np.percentile(self.errors, q))

    @property
    def p90(self) -> float:
        """The paper's headline statistic: the 90th-percentile error."""
        return self.percentile(90.0)

    def fraction_below(self, threshold: float) -> float:
        """Share of observations with error <= ``threshold`` percent."""
        return float(np.mean(self.errors <= threshold))

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """``(error values, cumulative fraction in percent)`` -- the
        exact series plotted in Figures 7-9."""
        n = len(self.errors)
        frac = 100.0 * np.arange(1, n + 1) / n
        return self.errors.copy(), frac

    def mean(self) -> float:
        """Mean relative error."""
        return float(np.mean(self.errors))


def error_report(predicted, measured) -> ErrorReport:
    """Build an :class:`ErrorReport` from prediction/measurement arrays."""
    return ErrorReport(relative_errors(predicted, measured))


def summarize(reports: Dict[str, ErrorReport]) -> Dict[str, Dict[str, float]]:
    """Tabulate p50/p80/p90/max per labeled report (for EXPERIMENTS.md)."""
    return {
        label: {
            "p50": r.percentile(50),
            "p80": r.percentile(80),
            "p90": r.p90,
            "max": float(r.errors[-1]),
            "n": float(len(r)),
        }
        for label, r in reports.items()
    }
