"""Training pipeline: micro benchmarks -> measurements -> fitted models.

Mirrors the paper's Section V procedure: run the Table II benchmark grid
on 1 / 2 / 4 co-located VMs, record the synchronized per-second
measurements, and regress the overhead targets on the summed guest
utilization vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.faults.config import FaultConfig
from repro.faults.sampling import SampleFaults
from repro.models.multi_vm import MultiVMOverheadModel, alpha_linear
from repro.models.samples import TrainingSample, samples_from_report
from repro.models.single_vm import SingleVMOverheadModel
from repro.monitor.script import GAP_HOLD, MeasurementScript
from repro.sim.engine import Simulator
from repro.workloads.suite import KINDS, intensity_levels, make_benchmark
from repro.xen.calibration import XenCalibration
from repro.xen.machine import PhysicalMachine
from repro.xen.specs import VMSpec


@dataclass
class TrainingConfig:
    """Knobs of the data-gathering sweep.

    The defaults mirror the paper: all four benchmark kinds, all five
    Table II levels, 1/2/4 co-located VMs, 120 s of 1 Hz samples per
    configuration.  Tests shrink ``duration`` for speed.
    """

    kinds: Tuple[str, ...] = KINDS
    vm_counts: Tuple[int, ...] = (1, 2, 4)
    duration: float = 120.0
    seed: int = 2015
    calibration: Optional[XenCalibration] = None
    #: Skip this many leading seconds (scheduler fixed-point warm-up).
    warmup: float = 3.0
    #: Optional monitor-sample fault injection (chaos training runs).
    faults: Optional[FaultConfig] = None
    #: Exclude gap ticks (flagged invalid) from the training samples.
    drop_invalid: bool = True
    #: How the monitor records lost ticks (``"hold"`` or ``"nan"``).
    gap_policy: str = GAP_HOLD

    def __post_init__(self) -> None:
        if self.duration <= self.warmup:
            raise ValueError("duration must exceed warmup")
        if not self.kinds:
            raise ValueError("kinds must be non-empty")
        if any(n <= 0 for n in self.vm_counts):
            raise ValueError("vm_counts must be positive")


def run_benchmark_measurement(
    kind: str,
    intensity: float,
    n_vms: int,
    *,
    duration: float = 120.0,
    seed: int = 2015,
    warmup: float = 3.0,
    calibration: Optional[XenCalibration] = None,
    noiseless: bool = False,
    faults: Optional[FaultConfig] = None,
    gap_policy: str = GAP_HOLD,
):
    """One measurement run: ``n_vms`` guests all running one benchmark.

    Returns the :class:`~repro.monitor.script.MeasurementReport`; the
    warm-up seconds are simulated before sampling starts so the
    scheduler fixed point has settled (as the paper's steady-state
    measurements had).  An optional fault config perturbs the monitor
    samples (dropout bursts, outlier corruption) from its own named
    stream; ``None`` or a null config leaves the run byte-identical.
    """
    sim = Simulator(seed=seed)
    pm = PhysicalMachine(sim, name="pm1", calibration=calibration)
    vms = [pm.create_vm(VMSpec(name=f"vm{k}")) for k in range(n_vms)]
    for vm in vms:
        make_benchmark(kind, intensity).attach(vm)
    pm.start()
    sim.run_until(warmup)
    sample_faults = None
    if faults is not None and faults.samples_faulty():
        sample_faults = SampleFaults(
            faults, sim.rng(f"faults.monitor.{pm.name}")
        )
    script = MeasurementScript(
        pm, noiseless=noiseless, faults=sample_faults, gap_policy=gap_policy
    )
    return script.run(duration=duration)


def gather_training_samples(
    config: Optional[TrainingConfig] = None,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[TrainingSample]:
    """Run the full Table II x VM-count sweep and pool the samples."""
    cfg = config or TrainingConfig()
    samples: List[TrainingSample] = []
    run_id = 0
    for n_vms in cfg.vm_counts:
        for kind in cfg.kinds:
            for level in intensity_levels(kind):
                run_id += 1
                if progress is not None:
                    progress(f"run {run_id}: {kind}@{level} x{n_vms}")
                report = run_benchmark_measurement(
                    kind,
                    level,
                    n_vms,
                    duration=cfg.duration - cfg.warmup,
                    seed=cfg.seed + run_id,
                    warmup=cfg.warmup,
                    calibration=cfg.calibration,
                    faults=cfg.faults,
                    gap_policy=cfg.gap_policy,
                )
                samples.extend(
                    samples_from_report(report, valid_only=cfg.drop_invalid)
                )
    return samples


def train_single_vm_model(
    config: Optional[TrainingConfig] = None,
    *,
    method: str = "ols",
    **fit_kwargs,
) -> SingleVMOverheadModel:
    """Gather single-VM data and fit Eq. (1)-(2)."""
    cfg = config or TrainingConfig()
    single_cfg = TrainingConfig(
        kinds=cfg.kinds,
        vm_counts=(1,),
        duration=cfg.duration,
        seed=cfg.seed,
        calibration=cfg.calibration,
        warmup=cfg.warmup,
        faults=cfg.faults,
        drop_invalid=cfg.drop_invalid,
        gap_policy=cfg.gap_policy,
    )
    samples = gather_training_samples(single_cfg)
    return SingleVMOverheadModel.fit(samples, method=method, **fit_kwargs)


def train_multi_vm_model(
    config: Optional[TrainingConfig] = None,
    *,
    method: str = "ols",
    alpha: Callable[[float], float] = alpha_linear,
    **fit_kwargs,
) -> MultiVMOverheadModel:
    """Gather the 1/2/4-VM sweep and fit Eq. (3)."""
    samples = gather_training_samples(config or TrainingConfig())
    return MultiVMOverheadModel.fit(
        samples, method=method, alpha=alpha, **fit_kwargs
    )
