"""Linear regression engines: ordinary least squares and LMS.

The paper derives its coefficient sets "by applying a regression method
[24]" -- the citation is Rousseeuw's *Least Median of Squares
Regression* (JASA 1984).  We implement both:

* :func:`fit_ols` -- ordinary least squares, the workhorse; minimizes
  the paper's stated error :math:`e = \\sqrt{\\sum_j (\\hat M'_j - \\hat M_j)^2}`.
* :func:`fit_lms` -- Rousseeuw's least *median* of squares via random
  elemental subsets, robust to up to 50 % outliers; followed by the
  standard reweighted-least-squares refinement step.

Both return a :class:`LinearModel` (intercept + coefficient vector).
The robustness benchmark (`benchmarks/test_bench_ablation.py`) compares
them under outlier injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.rng import generator_from_seed


@dataclass(frozen=True)
class LinearModel:
    """An affine map ``y = intercept + coef . x``.

    The intercept is the paper's :math:`a_o` (resource use of the guest
    OS with no benchmark running); ``coef`` holds
    :math:`(a_c, a_m, a_i, a_n)` when fitted on 4-feature utilization
    vectors.
    """

    intercept: float
    coef: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "coef", np.asarray(self.coef, dtype=float).ravel()
        )

    @property
    def n_features(self) -> int:
        """Number of input features."""
        return len(self.coef)

    def predict(self, X) -> np.ndarray:
        """Evaluate the model on an (n, k) matrix or length-k vector."""
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        y = self.intercept + X @ self.coef
        return float(y[0]) if single else y

    def residuals(self, X, y) -> np.ndarray:
        """``y - predict(X)`` as an array."""
        return np.asarray(y, dtype=float) - self.predict(X)


def _validate_xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise ValueError("X must be 2-D (n_samples, n_features)")
    if X.shape[0] != len(y):
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {len(y)} entries"
        )
    if X.shape[0] == 0:
        raise ValueError("no samples")
    if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
        raise ValueError("X and y must be finite")
    return X, y


def fit_ols(X, y) -> LinearModel:
    """Ordinary least squares with intercept (minimum-norm via lstsq).

    ``lstsq`` handles rank-deficient designs gracefully -- important
    here because single-resource micro benchmarks leave other feature
    columns constant.
    """
    X, y = _validate_xy(X, y)
    A = np.column_stack([np.ones(len(y)), X])
    theta, *_ = np.linalg.lstsq(A, y, rcond=None)
    return LinearModel(intercept=float(theta[0]), coef=theta[1:])


def fit_lms(
    X,
    y,
    *,
    rng: Optional[np.random.Generator] = None,
    n_subsets: int = 300,
    refine: bool = True,
) -> LinearModel:
    """Least Median of Squares regression (Rousseeuw 1984).

    Draws ``n_subsets`` random elemental subsets of ``p+1`` samples,
    exactly fits each, and keeps the candidate minimizing the *median*
    squared residual -- the estimator tolerates up to 50 % arbitrarily
    bad samples.  With ``refine=True`` the winner is polished with a
    reweighted OLS over the inliers (residual within 2.5 robust sigmas),
    the standard finishing step.

    Parameters
    ----------
    rng:
        Random generator for subset sampling (seeded by callers for
        reproducibility; defaults to a fixed-seed generator).
    """
    X, y = _validate_xy(X, y)
    n, p = X.shape
    k = p + 1  # elemental subset size (intercept + p coefficients)
    if n < k:
        raise ValueError(f"need at least {k} samples for LMS, got {n}")
    if n_subsets <= 0:
        raise ValueError("n_subsets must be positive")
    rng = rng or generator_from_seed(0)

    A = np.column_stack([np.ones(n), X])
    best_theta: Optional[np.ndarray] = None
    best_med = np.inf
    for _ in range(n_subsets):
        idx = rng.choice(n, size=k, replace=False)
        sub_A = A[idx]
        sub_y = y[idx]
        # Elemental fits can be singular (duplicate rows); lstsq copes.
        theta, *_ = np.linalg.lstsq(sub_A, sub_y, rcond=None)
        med = float(np.median((y - A @ theta) ** 2))
        if med < best_med:
            best_med = med
            best_theta = theta
    assert best_theta is not None

    if refine and best_med > 0:
        # Rousseeuw's preliminary scale estimate and one RLS step.
        s0 = 1.4826 * (1 + 5.0 / max(1, n - p)) * np.sqrt(best_med)
        resid = y - A @ best_theta
        inliers = np.abs(resid) <= 2.5 * s0
        if inliers.sum() >= k:
            theta, *_ = np.linalg.lstsq(A[inliers], y[inliers], rcond=None)
            best_theta = theta
    return LinearModel(intercept=float(best_theta[0]), coef=best_theta[1:])


#: Residuals beyond this many robust sigmas count as outliers.
OUTLIER_N_SIGMAS = 2.5
#: :func:`fit_auto` falls back to LMS above this outlier fraction.
DEFAULT_OUTLIER_THRESHOLD = 0.05


def outlier_fraction(
    model: LinearModel, X, y, *, n_sigmas: float = OUTLIER_N_SIGMAS
) -> float:
    """Fraction of samples whose residual exceeds ``n_sigmas`` robust sigmas.

    The scale estimate is the MAD of the residuals (1.4826 x median
    absolute deviation), so a minority of arbitrarily bad samples
    cannot inflate it and hide themselves.  A zero MAD (majority of
    samples fit exactly) counts every non-zero residual as an outlier.
    """
    resid = model.residuals(X, y)
    center = float(np.median(resid))
    dev = np.abs(resid - center)
    scale = 1.4826 * float(np.median(dev))
    if scale == 0.0:  # repro: noqa[REP004] exact degenerate-MAD guard (div by zero)
        return float(np.mean(dev > 1e-9))
    return float(np.mean(dev > n_sigmas * scale))


def fit_auto(
    X,
    y,
    *,
    outlier_threshold: float = DEFAULT_OUTLIER_THRESHOLD,
    rng: Optional[np.random.Generator] = None,
    n_subsets: int = 300,
    refine: bool = True,
) -> LinearModel:
    """OLS normally; robust LMS when the data looks corrupted.

    Fits OLS first and measures its own outlier fraction; if more than
    ``outlier_threshold`` of the samples sit beyond
    :data:`OUTLIER_N_SIGMAS` robust sigmas, the sample set is presumed
    corrupted (silent monitor faults, clock skew) and the fit is redone
    with :func:`fit_lms`.  On clean data this is exactly OLS -- the
    robust path is strictly pay-for-use.
    """
    if not 0.0 <= outlier_threshold < 1.0:
        raise ValueError("outlier_threshold must be in [0, 1)")
    X, y = _validate_xy(X, y)
    ols = fit_ols(X, y)
    if outlier_fraction(ols, X, y) <= outlier_threshold:
        return ols
    if X.shape[0] < X.shape[1] + 1:
        return ols  # too few samples for an elemental LMS subset
    return fit_lms(X, y, rng=rng, n_subsets=n_subsets, refine=refine)


def fit(X, y, *, method: str = "ols", **kwargs) -> LinearModel:
    """Dispatch to :func:`fit_ols`, :func:`fit_lms` or :func:`fit_auto`."""
    if method == "ols":
        if kwargs:
            raise TypeError(f"ols takes no extra options, got {sorted(kwargs)}")
        return fit_ols(X, y)
    if method == "lms":
        return fit_lms(X, y, **kwargs)
    if method == "auto":
        return fit_auto(X, y, **kwargs)
    raise ValueError(f"unknown regression method {method!r}")
