"""Online (streaming) refitting of the overhead model.

In a production monitoring loop new per-second samples arrive forever;
refitting Eq. (1) from scratch each second is wasteful.  This module
provides **recursive least squares** with optional exponential
forgetting: each ``update`` folds one observation into the estimate in
O(p^2), and a forgetting factor < 1 lets the coefficients track drift
(e.g. a hypervisor upgrade changing per-packet costs).

``OnlineOverheadModel`` maintains one RLS estimator per overhead target
over the 4-feature utilization vector, mirroring the batch
:class:`~repro.models.single_vm.SingleVMOverheadModel`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.models.regression import LinearModel
from repro.models.samples import TARGETS, TrainingSample
from repro.monitor.metrics import ResourceVector


class RecursiveLeastSquares:
    """Exponentially-weighted RLS for ``y = theta . [1, x]``.

    Parameters
    ----------
    n_features:
        Dimension of ``x`` (the intercept is handled internally).
    forgetting:
        Exponential forgetting factor in (0, 1]; 1.0 = ordinary RLS.
    delta:
        Initial covariance scale (large = uninformative prior).
    """

    def __init__(
        self,
        n_features: int,
        *,
        forgetting: float = 1.0,
        delta: float = 1e4,
    ) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.n_features = n_features
        self.forgetting = forgetting
        p = n_features + 1
        self._theta = np.zeros(p)
        self._P = delta * np.eye(p)
        self.n_updates = 0

    def update(self, x, y: float) -> None:
        """Fold one observation into the estimate (O(p^2))."""
        x = np.asarray(x, dtype=float).ravel()
        if x.shape != (self.n_features,):
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape}"
            )
        phi = np.concatenate(([1.0], x))
        lam = self.forgetting
        Pphi = self._P @ phi
        denom = lam + phi @ Pphi
        # phi' P phi >= 0 for a PSD covariance, so denom >= lam > 0 in
        # exact arithmetic -- but over very long streams (10^6 updates
        # and beyond) rounding can push a nearly singular P to a tiny or
        # negative quadratic form.  A collapsing denominator would blow
        # the gain up and destroy the estimate in one step; clamping it
        # at the forgetting factor caps the gain at Pphi / lam.
        if not denom >= lam:
            denom = lam
        gain = Pphi / denom
        err = y - phi @ self._theta
        self._theta = self._theta + gain * err
        self._P = (self._P - np.outer(gain, Pphi)) / lam
        # Symmetrize to contain numerical drift.
        self._P = 0.5 * (self._P + self._P.T)
        self.n_updates += 1

    def predict(self, x) -> float:
        """Evaluate the current estimate at ``x``."""
        x = np.asarray(x, dtype=float).ravel()
        if x.shape != (self.n_features,):
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape}"
            )
        return float(self._theta[0] + self._theta[1:] @ x)

    def as_linear_model(self) -> LinearModel:
        """Snapshot the current estimate as a batch-style model."""
        return LinearModel(
            intercept=float(self._theta[0]), coef=self._theta[1:].copy()
        )


class OnlineOverheadModel:
    """Streaming Eq. (1): one RLS per overhead target."""

    def __init__(
        self, *, forgetting: float = 1.0, delta: float = 1e4
    ) -> None:
        self._rls: Dict[str, RecursiveLeastSquares] = {
            t: RecursiveLeastSquares(4, forgetting=forgetting, delta=delta)
            for t in TARGETS
        }

    @property
    def n_updates(self) -> int:
        """Observations folded in so far."""
        return self._rls[TARGETS[0]].n_updates

    def update(self, sample: TrainingSample) -> None:
        """Fold one per-second observation into every target model."""
        x = sample.vm_sum.as_array()
        for target, rls in self._rls.items():
            rls.update(x, sample.targets[target])

    def predict(self, vm_util: ResourceVector) -> Dict[str, float]:
        """Predict every target (plus the derived ``pm.cpu``)."""
        if self.n_updates == 0:
            raise RuntimeError("no observations yet")
        x = vm_util.as_array()
        out = {t: rls.predict(x) for t, rls in self._rls.items()}
        out["pm.cpu"] = out["dom0.cpu"] + out["hyp.cpu"] + vm_util.cpu
        return out

    def coefficients(self, target: str) -> LinearModel:
        """Current coefficient snapshot for one target."""
        if target not in self._rls:
            raise ValueError(f"unknown target {target!r}")
        return self._rls[target].as_linear_model()
