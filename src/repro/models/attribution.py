"""Attributing platform overhead back to the guests that cause it.

Dom0 and hypervisor CPU is real cost, but it appears on no guest's
meter -- the billing problem the paper's introduction raises.  With a
fitted overhead model the attribution is principled: Eq. (1) is linear,
so each guest's *marginal* contribution to Dom0/hypervisor CPU is the
model evaluated on that guest's utilization alone (coefficients times
its metrics), and the intercept (the platform's idle burn) is the
provider's own cost.

:func:`attribute_overhead` splits a PM's measured overhead into one
share per guest plus the residual idle/base share, normalizing so the
shares exactly sum to the measured total (the model's small residual is
spread proportionally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.models.multi_vm import MultiVMOverheadModel
from repro.models.single_vm import SingleVMOverheadModel
from repro.monitor.metrics import ResourceVector

#: The overhead targets attribution covers.
OVERHEAD_TARGETS = ("dom0.cpu", "hyp.cpu")


@dataclass(frozen=True)
class OverheadShare:
    """One guest's attributed share of platform CPU overhead."""

    vm: str
    dom0_cpu_pct: float
    hyp_cpu_pct: float

    @property
    def total_pct(self) -> float:
        """Combined Dom0 + hypervisor share."""
        return self.dom0_cpu_pct + self.hyp_cpu_pct


@dataclass(frozen=True)
class AttributionReport:
    """Full apportionment of one PM's measured overhead."""

    shares: Dict[str, OverheadShare]
    #: The provider-side base burn (model intercepts), not billed to
    #: any guest.
    base_dom0_cpu_pct: float
    base_hyp_cpu_pct: float
    #: What was actually measured (shares + base sum to these exactly).
    measured_dom0_cpu_pct: float
    measured_hyp_cpu_pct: float

    def share(self, vm: str) -> OverheadShare:
        """One guest's share."""
        try:
            return self.shares[vm]
        except KeyError:
            raise KeyError(
                f"no share for {vm!r}; have {sorted(self.shares)}"
            ) from None

    def billed_fraction(self, vm: str) -> float:
        """Guest's fraction of the billable (above-base) overhead."""
        billable = (
            self.measured_dom0_cpu_pct
            - self.base_dom0_cpu_pct
            + self.measured_hyp_cpu_pct
            - self.base_hyp_cpu_pct
        )
        if billable <= 0:
            return 0.0
        return self.share(vm).total_pct / billable


def _marginal(model, target: str, util: ResourceVector) -> float:
    """Coefficient-weighted contribution of one guest (no intercept)."""
    if isinstance(model, SingleVMOverheadModel):
        coefs = model.coefficients(target).coef
    else:
        coefs = model.base_coefficients(target)[1:]
    return float(max(0.0, coefs @ util.as_array()))


def _intercept(model, target: str) -> float:
    if isinstance(model, SingleVMOverheadModel):
        return model.coefficients(target).intercept
    return float(model.base_coefficients(target)[0])


def attribute_overhead(
    model: SingleVMOverheadModel | MultiVMOverheadModel,
    vm_utils: Mapping[str, ResourceVector],
    *,
    measured_dom0_cpu_pct: float,
    measured_hyp_cpu_pct: float,
) -> AttributionReport:
    """Split measured Dom0/hypervisor CPU across the hosted guests.

    Each guest's raw share is its linear marginal contribution under the
    model; raw shares are then rescaled so that base + shares reproduce
    the measured totals exactly (consistent billing: nothing invented,
    nothing dropped).
    """
    if not vm_utils:
        raise ValueError("need at least one guest")
    if measured_dom0_cpu_pct < 0 or measured_hyp_cpu_pct < 0:
        raise ValueError("measured overhead must be >= 0")

    base = {t: _intercept(model, t) for t in OVERHEAD_TARGETS}
    raw: Dict[str, Dict[str, float]] = {
        name: {t: _marginal(model, t, util) for t in OVERHEAD_TARGETS}
        for name, util in vm_utils.items()
    }
    measured = {
        "dom0.cpu": measured_dom0_cpu_pct,
        "hyp.cpu": measured_hyp_cpu_pct,
    }
    scaled: Dict[str, Dict[str, float]] = {name: {} for name in raw}
    for t in OVERHEAD_TARGETS:
        billable = max(0.0, measured[t] - base[t])
        total_raw = sum(r[t] for r in raw.values())
        for name, r in raw.items():
            if total_raw > 0:
                scaled[name][t] = billable * r[t] / total_raw
            else:
                # No modelled driver: split evenly (e.g. all guests idle
                # but jitter pushed the measurement above base).
                scaled[name][t] = billable / len(raw)
    shares = {
        name: OverheadShare(
            vm=name,
            dom0_cpu_pct=vals["dom0.cpu"],
            hyp_cpu_pct=vals["hyp.cpu"],
        )
        for name, vals in scaled.items()
    }
    return AttributionReport(
        shares=shares,
        base_dom0_cpu_pct=min(base["dom0.cpu"], measured_dom0_cpu_pct),
        base_hyp_cpu_pct=min(base["hyp.cpu"], measured_hyp_cpu_pct),
        measured_dom0_cpu_pct=measured_dom0_cpu_pct,
        measured_hyp_cpu_pct=measured_hyp_cpu_pct,
    )
