"""Human-readable descriptions of fitted overhead models.

Renders the paper's coefficient sets -- Eq. (2)'s matrix ``a`` and
Eq. (3)'s ``a``/``o`` pairs -- as fixed-width tables, with the feature
labels the paper uses (:math:`a_o, a_c, a_m, a_i, a_n`).  Used by
``repro validate`` and handy in notebooks.
"""

from __future__ import annotations

from typing import List

from repro.models.multi_vm import MultiVMOverheadModel
from repro.models.samples import TARGETS
from repro.models.single_vm import SingleVMOverheadModel

#: Column labels in the paper's notation.
COEF_LABELS = ("a_o", "a_c", "a_m", "a_i", "a_n")


def _table(title: str, rows: List[List[str]], header: List[str]) -> str:
    widths = [
        max(len(header[i]), max(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def describe_single_vm(model: SingleVMOverheadModel) -> str:
    """Eq. (2)'s coefficient matrix as a table."""
    header = ["target"] + list(COEF_LABELS)
    matrix = model.coefficient_matrix()
    rows = [
        [target] + [f"{v:.5g}" for v in matrix[i]]
        for i, target in enumerate(TARGETS)
    ]
    return _table("Single-VM model (Eq. 2): M_hat = a M", rows, header)


def describe_multi_vm(model: MultiVMOverheadModel) -> str:
    """Eq. (3)'s base and colocation coefficient sets as tables."""
    header = ["target"] + list(COEF_LABELS)
    base_rows = [
        [t] + [f"{v:.5g}" for v in model.base_coefficients(t)]
        for t in TARGETS
    ]
    o_header = ["target", "o_const", "o_c", "o_m", "o_i", "o_n"]
    o_rows = [
        [t] + [f"{v:.5g}" for v in model.colocation_coefficients(t)]
        for t in TARGETS
    ]
    return (
        _table(
            "Multi-VM model (Eq. 3): M_hat = a(sum M) + alpha(N) o(sum M)",
            base_rows,
            header,
        )
        + "\n\n"
        + _table("Colocation coefficients o:", o_rows, o_header)
    )
