"""Prediction intervals for the overhead regressions.

The paper reports point predictions; a provisioning system acting on
them (VOA admission, hotspot thresholds) is safer with an upper
confidence bound -- admit only if even the pessimistic PM utilization
fits.  This module adds classical OLS prediction intervals: given the
training design, the residual variance ``s^2`` and a new point ``x``,

    y_hat +/- t_{alpha/2, n-p} * s * sqrt(1 + x' (X'X)^{-1} x).

:class:`IntervalModel` wraps one fitted target; ``fit_intervals`` builds
them for every overhead target from the same training samples the point
models use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy import stats

from repro.models.samples import TARGETS, TrainingSample, design_matrix, target_vector


@dataclass(frozen=True)
class PredictionInterval:
    """A two-sided prediction interval around a point estimate."""

    point: float
    lo: float
    hi: float
    level: float

    def __post_init__(self) -> None:
        if not self.lo <= self.point <= self.hi:
            raise ValueError("interval must bracket the point estimate")
        if not 0.0 < self.level < 1.0:
            raise ValueError("level must be in (0, 1)")

    @property
    def halfwidth(self) -> float:
        """Half the interval width."""
        return (self.hi - self.lo) / 2.0


class IntervalModel:
    """OLS point predictions with classical prediction intervals."""

    def __init__(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != len(y):
            raise ValueError("X must be (n, p) aligned with y")
        n, p = X.shape
        if n <= p + 1:
            raise ValueError("need more samples than parameters")
        A = np.column_stack([np.ones(n), X])
        # Pseudo-inverse handles the rank-deficient designs single-
        # resource sweeps produce.
        self._theta, *_ = np.linalg.lstsq(A, y, rcond=None)
        resid = y - A @ self._theta
        rank = int(np.linalg.matrix_rank(A))
        self._dof = max(1, n - rank)
        self._s2 = float(resid @ resid) / self._dof
        self._AtA_pinv = np.linalg.pinv(A.T @ A)

    @property
    def residual_std(self) -> float:
        """The residual scale ``s``."""
        return float(np.sqrt(self._s2))

    def predict(self, x, *, level: float = 0.9) -> PredictionInterval:
        """Point prediction with a ``level`` prediction interval."""
        if not 0.0 < level < 1.0:
            raise ValueError("level must be in (0, 1)")
        x = np.asarray(x, dtype=float).ravel()
        if x.shape != (len(self._theta) - 1,):
            raise ValueError(
                f"expected {len(self._theta) - 1} features, got {x.shape}"
            )
        phi = np.concatenate(([1.0], x))
        point = float(phi @ self._theta)
        se = float(
            np.sqrt(self._s2 * (1.0 + phi @ self._AtA_pinv @ phi))
        )
        t = float(stats.t.ppf(0.5 + level / 2.0, self._dof))
        return PredictionInterval(
            point=point, lo=point - t * se, hi=point + t * se, level=level
        )


def fit_intervals(
    samples: Sequence[TrainingSample],
) -> Dict[str, IntervalModel]:
    """One interval model per overhead target."""
    if not samples:
        raise ValueError("no training samples")
    X = design_matrix(samples)
    return {
        t: IntervalModel(X, target_vector(samples, t)) for t in TARGETS
    }


def pessimistic_pm_cpu(
    intervals: Dict[str, IntervalModel],
    vm_sum,
    guest_cpu: float,
    *,
    level: float = 0.9,
) -> float:
    """Upper-bound PM CPU: guest CPU + upper bounds of Dom0 and hyp.

    The conservative admission quantity: a placement is safe if even
    this pessimistic estimate fits the capacity.
    """
    x = np.asarray(vm_sum, dtype=float).ravel()
    dom0 = intervals["dom0.cpu"].predict(x, level=level)
    hyp = intervals["hyp.cpu"].predict(x, level=level)
    return guest_cpu + dom0.hi + hyp.hi
