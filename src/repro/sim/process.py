"""Recurring simulated activities.

Most actors in the testbed are periodic: workloads update their demand
every tick, the credit scheduler runs every 30 ms quantum, monitors
sample once per second.  :class:`PeriodicProcess` packages the schedule /
reschedule / stop pattern so components only write their per-tick body.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class PeriodicProcess:
    """Invoke ``body(now)`` every ``interval`` seconds.

    Parameters
    ----------
    sim:
        Owning simulator.
    interval:
        Period in seconds; must be positive.
    body:
        Callable invoked with the current simulation time.
    priority:
        Event priority of the ticks (lower fires first at equal times).
    start_at:
        Absolute time of the first tick; defaults to ``sim.now + interval``.

    The process self-reschedules after each tick until :meth:`stop` is
    called.  Ticks therefore land on the exact lattice
    ``start_at + k * interval`` with no drift.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        body: Callable[[float], None],
        *,
        priority: int = 0,
        start_at: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._sim = sim
        self._queue = sim._queue
        self._interval = interval
        self._body = body
        self._priority = priority
        self._next_time = sim.now + interval if start_at is None else start_at
        self._event: Optional[Event] = None
        self._stopped = False
        self.ticks = 0
        self._schedule()

    @property
    def interval(self) -> float:
        """The tick period in seconds."""
        return self._interval

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def stop(self) -> None:
        """Cancel the pending tick and stop rescheduling."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule(self) -> None:
        if self._stopped:
            return
        self._event = self._sim.at(
            self._next_time, self._tick, priority=self._priority
        )

    def _tick(self, ev: Event) -> None:
        # Detach first so a stop() from inside the body cannot cancel
        # the event we are about to recycle.
        self._event = None
        self.ticks += 1
        self._body(self._sim._now)
        self._next_time += self._interval
        if not self._stopped:
            # Recycle the just-fired event instead of allocating a new
            # one per tick; ordering is identical (fresh seq on repush).
            # Direct repush: the next tick is now + interval, which can
            # never be behind the clock, so the reschedule() guard is
            # redundant on this (hottest) path.
            self._event = self._queue.repush(ev, self._next_time)
