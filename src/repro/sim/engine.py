"""The simulation engine: clock plus event dispatch loop.

A :class:`Simulator` owns one :class:`~repro.sim.events.EventQueue` and a
monotonic clock.  Components schedule work with :meth:`Simulator.at` /
:meth:`Simulator.after`; the driver advances time with
:meth:`Simulator.run_until` or :meth:`Simulator.step`.

Time never moves backwards and events always observe ``sim.now`` equal to
their own timestamp when they fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.obs import runtime as _obs
from repro.sim import fastpath as _fastpath
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue
from repro.sim.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised on scheduling violations (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulator with a named-stream RNG registry.

    Parameters
    ----------
    seed:
        Master seed for all random streams drawn via :attr:`rng`.
    sanitize:
        Attach :class:`~repro.sim.sanitize.SanitizerHooks`: assert the
        stable event tie-break invariant on every pop and count RNG
        draws per stream.  ``None`` (the default) follows the
        process-wide default toggled by ``repro run --sanitize``.
        Sanitizing never changes the numbers drawn or the events fired.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.after(2.0, lambda ev: fired.append(sim.now))
    >>> sim.run_until(5.0)
    >>> fired
    [2.0]
    >>> sim.now
    5.0
    """

    def __init__(
        self, seed: int = 0, *, sanitize: Optional[bool] = None
    ) -> None:
        from repro.sim import sanitize as _san

        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        if sanitize is None:
            sanitize = _san.default_enabled()
        #: Attached :class:`~repro.sim.sanitize.SanitizerHooks`, or ``None``.
        self.sanitizer = _san.SanitizerHooks() if sanitize else None
        if self.sanitizer is not None:
            self.rng: RngRegistry = _san.SanitizedRngRegistry(
                seed, self.sanitizer
            )
            _san.register_hooks(self.sanitizer)
        else:
            self.rng = RngRegistry(seed)
        #: Number of events dispatched so far (diagnostics only).
        self.dispatched = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def at(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        return self._queue.push(time, callback, priority=priority, payload=payload)

    def after(
        self,
        delay: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(
            self._now + delay, callback, priority=priority, payload=payload
        )

    def reschedule(self, event: Event, time: float) -> Event:
        """Requeue a popped ``event`` at absolute ``time``, reusing it.

        The allocation-free companion to :meth:`at` for periodic
        processes: the event object is recycled instead of minting a new
        one per tick.  ``event`` must have been popped already (it is
        *not* in the queue); passing a still-queued event corrupts heap
        order.

        Raises
        ------
        SimulationError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot reschedule at t={time:.6f} < now={self._now:.6f}"
            )
        return self._queue.repush(event, time)

    def step(self) -> bool:
        """Dispatch the single next event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (time is left unchanged in that case).
        """
        ev = self._queue.pop()
        if ev is None:
            return False
        if self.sanitizer is not None:
            self.sanitizer.check_pop(ev, next_seq=self._queue.next_seq)
        if ev.time < self._now:
            # A real raise, not an assert: the monotonicity guarantee is
            # part of the engine contract and must survive ``python -O``.
            raise SimulationError(
                f"event at t={ev.time:.6f} popped behind clock "
                f"now={self._now:.6f}"
            )
        self._now = ev.time
        self.dispatched += 1
        ev.fire()
        return True

    def run_until(self, t_end: float) -> None:
        """Dispatch every event with ``time <= t_end``; clock ends at ``t_end``.

        Re-entrant calls are rejected: an event callback must not call
        :meth:`run_until` on its own simulator.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        if t_end < self._now:
            raise SimulationError(
                f"cannot run until t={t_end:.6f} < now={self._now:.6f}"
            )
        if _obs.installed() is None:
            self._drain(t_end)
            self._now = t_end
            return
        before = self.dispatched
        with _obs.span("sim.run_until", "sim", sim=self):
            self._drain(t_end)
            self._now = t_end
        _obs.inc("repro_sim_events_total", self.dispatched - before)
        _obs.set_gauge("repro_sim_time_seconds", self._now)

    def _drain(self, t_end: float) -> None:
        """Dispatch every queued event with ``time <= t_end``.

        Two implementations with identical observable behaviour:

        * When a sanitizer is attached or ``REPRO_SIM_SLOWPATH`` is set,
          the reference loop peeks and :meth:`step`\\ s one event at a
          time -- every pop routes through the sanitizer's tie-break
          check.
        * Otherwise the batched fast path runs: the heap and ``heappop``
          are hoisted into locals and events dispatch straight off the
          heap entries, skipping the per-event ``peek_time``/``pop``
          method calls and the sanitizer/cancelled double-checks.  The
          clock and ``dispatched`` counter are still written through
          per event because callbacks read ``sim.now``.
        """
        self._running = True
        try:
            if self.sanitizer is not None or _fastpath.slowpath_enabled():
                while True:
                    nxt = self._queue.peek_time()
                    if nxt is None or nxt > t_end:
                        break
                    self.step()
                return
            heap = self._queue._heap
            pop = heapq.heappop
            while heap:
                t = heap[0][0]
                if t > t_end:
                    break
                ev = pop(heap)[3]
                if ev.cancelled:
                    continue
                if t < self._now:
                    raise SimulationError(
                        f"event at t={t:.6f} popped behind clock "
                        f"now={self._now:.6f}"
                    )
                self._now = t
                self.dispatched += 1
                cb = ev.callback
                if cb is not None:
                    cb(ev)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        if self._running:
            raise SimulationError("run is not re-entrant")
        if _obs.installed() is None:
            self._exhaust()
            return
        before = self.dispatched
        with _obs.span("sim.run", "sim", sim=self):
            self._exhaust()
        _obs.inc("repro_sim_events_total", self.dispatched - before)
        _obs.set_gauge("repro_sim_time_seconds", self._now)

    def _exhaust(self) -> None:
        """Dispatch until the queue is empty (see :meth:`_drain`)."""
        self._running = True
        try:
            if self.sanitizer is not None or _fastpath.slowpath_enabled():
                while self.step():
                    pass
                return
            heap = self._queue._heap
            pop = heapq.heappop
            while heap:
                t, _, _, ev = pop(heap)
                if ev.cancelled:
                    continue
                if t < self._now:
                    raise SimulationError(
                        f"event at t={t:.6f} popped behind clock "
                        f"now={self._now:.6f}"
                    )
                self._now = t
                self.dispatched += 1
                cb = ev.callback
                if cb is not None:
                    cb(ev)
        finally:
            self._running = False

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero.

        Random streams are *not* reseeded; create a fresh simulator for a
        statistically independent replication.

        Raises
        ------
        SimulationError
            If called from inside a running :meth:`run` /
            :meth:`run_until` (e.g. from an event handler): resetting
            mid-dispatch would leave the driver loop iterating a cleared
            queue at a rewound clock.
        """
        if self._running:
            raise SimulationError("cannot reset while a run is in progress")
        self._queue.clear()
        self._now = 0.0
        self.dispatched = 0
        self._running = False
