"""Named, independently seeded random-number streams.

Every stochastic component (measurement noise, workload jitter, packet
arrival spread, LMS subset sampling, ...) draws from its *own* named
stream.  Adding a new noise source therefore never shifts the random
numbers another component sees -- experiment results stay stable across
library versions, which keeps the recorded EXPERIMENTS.md numbers honest.

Streams are derived from the master seed with ``numpy``'s
``SeedSequence.spawn``-style keying: the stream name is hashed into the
entropy, so ``registry("dom0-noise")`` is reproducible and independent of
``registry("vm1-jitter")``.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was created with."""
        return self._seed

    def __call__(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream object, so stateful
        consumption is shared between callers using the same name.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self._seed, key])
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *rewound* generator for ``name`` (drops prior state)."""
        self._streams.pop(name, None)
        return self(name)

    def spawn(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (for replications)."""
        return RngRegistry(seed=self._seed * 1_000_003 + salt)


def generator_from_seed(seed) -> np.random.Generator:
    """The one sanctioned way to build a generator from a bare seed.

    Analysis helpers that take a user-supplied seed (bootstrap
    resampling, scenario synthesis, LMS subset draws) route their
    construction through here so ``repro lint``'s REP007 rule can
    guarantee no component mints generators ad hoc.  ``seed`` accepts
    anything ``numpy.random.default_rng`` does (int, SeedSequence,
    None for OS entropy -- the latter only in explicitly
    non-reproducible tooling).
    """
    return np.random.default_rng(seed)
