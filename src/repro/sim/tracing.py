"""Simulator event tracing (debugging instrumentation).

A :class:`SimTracer` records a bounded, filterable log of interesting
moments -- component state changes, scheduler decisions, experiment
milestones -- stamped with the simulation clock.  Components emit via
:meth:`SimTracer.emit`; nothing is recorded unless a tracer is
installed, so the hot path stays free of logging overhead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded moment."""

    time: float
    source: str
    message: str

    def render(self) -> str:
        return f"[{self.time:12.3f}s] {self.source}: {self.message}"


class SimTracer:
    """Bounded in-memory event log bound to one simulator clock.

    Parameters
    ----------
    sim:
        The clock source.
    capacity:
        Maximum retained events (oldest dropped first).
    source_filter:
        Optional predicate on the source label; events from filtered-out
        sources are not recorded.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        capacity: int = 10_000,
        source_filter: Optional[Callable[[str], bool]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._sim = sim
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._filter = source_filter
        #: Total emitted (including dropped and filtered).
        self.emitted = 0
        #: Recorded but later evicted by the capacity bound.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, source: str, message: str) -> None:
        """Record one event at the current simulation time."""
        if not source:
            raise ValueError("source must be non-empty")
        self.emitted += 1
        if self._filter is not None and not self._filter(source):
            return
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(
            TraceEvent(time=self._sim.now, source=source, message=message)
        )

    def events(
        self,
        *,
        source: Optional[str] = None,
        since: float = float("-inf"),
    ) -> List[TraceEvent]:
        """Recorded events, optionally restricted by source and time."""
        return [
            ev
            for ev in self._events
            if ev.time >= since and (source is None or ev.source == source)
        ]

    def tail(self, n: int = 20) -> List[TraceEvent]:
        """The most recent ``n`` events."""
        if n <= 0:
            raise ValueError("n must be positive")
        return list(self._events)[-n:]

    def clear(self) -> None:
        """Drop all recorded events (counters keep running)."""
        self._events.clear()

    def render(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        """Human-readable dump."""
        return "\n".join(
            ev.render() for ev in (events if events is not None else self._events)
        )
