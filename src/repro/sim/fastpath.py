"""The process-wide fast-path/slow-path switch.

The hot numeric and dispatch kernels each ship two interchangeable
implementations:

* a **fast path** -- batched event drain in
  :class:`~repro.sim.engine.Simulator`, the steady-state quantum memo in
  :class:`~repro.xen.machine.PhysicalMachine`, the vectorized
  water-fill / credit top-up in :mod:`repro.xen.scheduler`, and the
  precompiled monitor sampling plan in :mod:`repro.monitor.script`;
* a **slow path** -- the original scalar/per-event reference
  implementations, retained verbatim.

Both paths are bit-for-bit identical by construction; the parity suite
(``tests/xen/test_fastpath_parity.py`` and friends) asserts it, and the
CI byte-identity job runs whole artifacts both ways.  The slow path is
selected process-wide with ``REPRO_SIM_SLOWPATH=1`` (read once at
import) or, scoped, with :func:`force_slowpath` -- the knob exists so a
suspected fast-path bug can be bisected in one environment variable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment variable selecting the scalar/per-event reference path.
SLOWPATH_ENV = "REPRO_SIM_SLOWPATH"

_slowpath = os.environ.get(SLOWPATH_ENV, "").strip() not in ("", "0")  # repro: noqa[REP009] the sanctioned fast/slow-path switch


def slowpath_enabled() -> bool:
    """True when the scalar/per-event reference implementations run."""
    return _slowpath


def enabled() -> bool:
    """True when the fast paths run (the default)."""
    return not _slowpath


def set_slowpath(value: bool) -> None:
    """Flip the process-wide switch (tests and the parity harness)."""
    global _slowpath
    _slowpath = bool(value)


@contextmanager
def force_slowpath(value: bool = True) -> Iterator[None]:
    """Scoped override: run the block on the chosen path."""
    previous = _slowpath
    set_slowpath(value)
    try:
        yield
    finally:
        set_slowpath(previous)
