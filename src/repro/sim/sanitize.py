"""Opt-in runtime sanitizer: determinism invariants checked while running.

The static pass (:mod:`repro.lint`) catches hazards visible in source;
this layer catches the dynamic ones.  With ``Simulator(sanitize=True)``
(or the global default flipped by ``repro run --sanitize``) the
simulator attaches a :class:`SanitizerHooks` that

* asserts the **stable tie-break invariant** on every event pop: the
  heap must yield ``(time, priority, seq)`` keys that only go out of
  sort order for events scheduled *after* the previous pop (higher
  ``seq``).  Any other inversion means an event was mutated in place or
  the queue was corrupted -- exactly the bug class that silently
  reorders same-timestamp work between runs;
* counts **per-stream RNG draws** so two runs of the same artifact can
  be compared stream by stream: identical outputs with different draw
  counts means a component is stealing entropy from another's stream;
* guards **NaN/Inf propagation** from monitor samples into model
  training (see :func:`guard_finite_matrix`).

The module-level default exists so the CLI can switch sanitizing on for
simulators it never constructs itself; aggregated draw counts from all
simulators built while the default is on are available through
:func:`aggregate_draw_counts`.
"""

from __future__ import annotations

import math
from collections import Counter
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.sim.engine import SimulationError
from repro.sim.events import Event
from repro.sim.rng import RngRegistry


class SanitizerError(SimulationError):
    """A determinism invariant was violated at runtime."""


class CountingGenerator:
    """Transparent proxy over ``numpy.random.Generator`` counting calls.

    Every bound-method call (``normal``, ``random``, ``integers``, ...)
    increments the stream's draw counter by one *call* -- the unit two
    runs are compared in.  Non-callable attributes pass straight
    through.
    """

    __slots__ = ("_gen", "_name", "_counts")

    def __init__(
        self, gen: np.random.Generator, name: str, counts: "Counter[str]"
    ) -> None:
        self._gen = gen
        self._name = name
        self._counts = counts

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._gen, attr)
        if not callable(value):
            return value
        counts, name = self._counts, self._name

        def counted(*args: Any, **kwargs: Any) -> Any:
            counts[name] += 1
            return value(*args, **kwargs)

        counted.__name__ = attr
        return counted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CountingGenerator({self._name!r}, {self._counts[self._name]} draws)"


class SanitizedRngRegistry(RngRegistry):
    """Registry whose streams are wrapped in :class:`CountingGenerator`.

    Stream derivation is identical to :class:`RngRegistry` -- the
    wrapper only observes, so a sanitized run draws byte-identical
    numbers to an unsanitized one.
    """

    def __init__(self, seed: int, hooks: "SanitizerHooks") -> None:
        super().__init__(seed)
        self._hooks = hooks
        self._proxies: Dict[str, CountingGenerator] = {}

    def __call__(self, name: str) -> np.random.Generator:
        proxy = self._proxies.get(name)
        if proxy is None:
            gen = super().__call__(name)
            self._hooks.draw_counts.setdefault(name, 0)
            proxy = CountingGenerator(gen, name, self._hooks.draw_counts)
            self._proxies[name] = proxy
        return proxy  # type: ignore[return-value]

    def fresh(self, name: str) -> np.random.Generator:
        self._proxies.pop(name, None)
        return super().fresh(name)


class SanitizerHooks:
    """Mutable state of one sanitized simulator."""

    def __init__(self) -> None:
        #: Stream name -> number of generator method calls so far.
        self.draw_counts: Counter[str] = Counter()
        self._last_key: Optional[Tuple[float, int, int]] = None
        self._watermark = 0
        #: Events vetted by :meth:`check_pop`.
        self.pops = 0
        #: Values vetted by :func:`guard_finite_matrix` via this hook set.
        self.finite_checks = 0

    def check_pop(self, event: Event, *, next_seq: int) -> None:
        """Assert the stable tie-break invariant for one popped event.

        Pops may only leave ``(time, priority, seq)`` sort order for an
        event scheduled *after* the previous pop (its ``seq`` is at or
        beyond the watermark recorded then) -- the legal case of an
        event callback scheduling same-time, lower-priority work.  An
        inversion by an event that already sat in the queue means it
        was mutated in place after scheduling, or the heap was
        corrupted: exactly the bug class that silently reorders
        same-timestamp work between runs.

        ``next_seq`` is the queue's insertion watermark *after* this
        pop (see :attr:`repro.sim.events.EventQueue.next_seq`).
        """
        if not math.isfinite(event.time):
            raise SanitizerError(
                f"popped event with non-finite time {event.time!r}"
            )
        key = (event.time, event.priority, event.seq)
        last = self._last_key
        if last is not None:
            if event.time < last[0]:
                raise SanitizerError(
                    f"event time regressed at pop: {key} after {last}"
                )
            if key < last and event.seq < self._watermark:
                raise SanitizerError(
                    "deterministic tie-break violated: event "
                    f"{key} popped after {last} despite being scheduled "
                    "before that pop -- was the event mutated after "
                    "scheduling?"
                )
        self._last_key = key
        self._watermark = next_seq
        self.pops += 1

    def snapshot(self) -> Dict[str, int]:
        """Current per-stream draw counts (stable, name-sorted)."""
        return {name: self.draw_counts[name] for name in sorted(self.draw_counts)}


# --------------------------------------------------------------------------
# Process-wide default + draw-count aggregation (used by the CLI flag).
# --------------------------------------------------------------------------

_default_enabled = False
_collected: List[SanitizerHooks] = []


def default_enabled() -> bool:
    """Whether newly built simulators sanitize by default."""
    return _default_enabled


def set_default(enabled: bool) -> None:
    """Flip the process-wide default (the ``--sanitize`` switch)."""
    global _default_enabled
    _default_enabled = bool(enabled)


def register_hooks(hooks: SanitizerHooks) -> None:
    """Track a simulator's hooks for :func:`aggregate_draw_counts`."""
    _collected.append(hooks)


def reset_collector() -> None:
    """Forget every tracked hook set (start of a measured run)."""
    _collected.clear()


def aggregate_draw_counts() -> Dict[str, int]:
    """Merge per-stream draw counts across every tracked simulator."""
    total: Counter[str] = Counter()
    for hooks in _collected:
        total.update(hooks.draw_counts)
    return {name: total[name] for name in sorted(total)}


def total_pops() -> int:
    """Events vetted across every tracked simulator."""
    return sum(hooks.pops for hooks in _collected)


def diff_draw_counts(
    a: Mapping[str, int], b: Mapping[str, int]
) -> List[str]:
    """Human-readable differences between two draw-count snapshots.

    Returns one line per stream whose count differs (or exists on only
    one side), name-sorted; an empty list means the runs consumed
    randomness identically.  The chaos-fuzz determinism oracle reports
    these lines verbatim, so a replay divergence names the exact stream
    that drifted instead of a bare digest mismatch.
    """
    lines: List[str] = []
    for name in sorted(set(a) | set(b)):
        left = a.get(name)
        right = b.get(name)
        if left != right:
            lines.append(f"{name}: {left} != {right}")
    return lines


@contextmanager
def sanitized() -> Iterator[None]:
    """Enable the default and reset collection for the block's duration."""
    previous = _default_enabled
    set_default(True)
    reset_collector()
    try:
        yield
    finally:
        set_default(previous)


def guard_finite_matrix(
    series: Mapping[str, np.ndarray], *, context: str
) -> None:
    """Raise if any named series carries NaN/Inf into model training.

    Called on the post-validity-mask training inputs: a non-finite
    value here means a monitor gap leaked past its validity mask (or a
    fault filler escaped), which would silently poison the regression.
    No-op unless sanitizing is enabled.
    """
    if not _default_enabled:
        return
    for name in sorted(series):
        values = np.asarray(series[name], dtype=float)
        bad = ~np.isfinite(values)
        if bad.any():
            idx = int(np.argmax(bad))
            raise SanitizerError(
                f"non-finite value {values[idx]!r} in series {name!r} at "
                f"tick {idx} reached {context}; a monitor gap leaked past "
                "its validity mask"
            )
    for hooks in _collected:
        hooks.finite_checks += 1
