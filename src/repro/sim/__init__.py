"""Discrete-event simulation kernel.

This subpackage provides the minimal, dependency-free event-driven
machinery the Xen substrate is built on:

* :class:`~repro.sim.events.Event` and
  :class:`~repro.sim.events.EventQueue` -- a stable priority queue of
  timestamped callbacks.
* :class:`~repro.sim.engine.Simulator` -- the clock and scheduler.
* :class:`~repro.sim.process.PeriodicProcess` -- a recurring activity
  (workload ticks, monitor sampling, scheduler quanta).
* :class:`~repro.sim.rng.RngRegistry` -- named, independently seeded
  random streams so components never perturb each other's noise.

The kernel is deliberately small and fully deterministic: two runs with
the same seed produce bit-identical traces, which the test-suite relies
on heavily.
"""

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry, generator_from_seed
from repro.sim.sanitize import SanitizerError, SanitizerHooks, sanitized
from repro.sim.tracing import SimTracer, TraceEvent

__all__ = [
    "Event",
    "EventQueue",
    "PeriodicProcess",
    "RngRegistry",
    "SanitizerError",
    "SanitizerHooks",
    "SimTracer",
    "SimulationError",
    "Simulator",
    "TraceEvent",
    "generator_from_seed",
    "sanitized",
]
