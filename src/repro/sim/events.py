"""Timestamped events and the stable event queue.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a
monotonically increasing insertion counter, which makes ordering *stable*:
two events scheduled for the same instant at the same priority fire in
the order they were scheduled.  Stability matters for reproducibility --
the Xen scheduler quantum, workload ticks and monitor samples frequently
coincide on whole-second boundaries.

Internally the heap stores ``(time, priority, seq, event)`` tuples
rather than the events themselves: tuple comparison runs entirely in C
(usually resolving on the leading float), which roughly halves the cost
of a push/pop pair on the simulator's hot path.  The ordering key is
unchanged -- the trailing event is never reached by a comparison because
``seq`` is unique.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Default event priority.  Lower values fire first at equal timestamps.
DEFAULT_PRIORITY = 0

#: A heap entry: ``(time, priority, seq, event)``.
_INF = float("inf")


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Slotted: the simulator allocates one ``Event`` per dispatch on the
    hot path, and ``__slots__`` drops the per-instance ``__dict__``
    (smaller, faster attribute access).  No code may attach ad-hoc
    attributes to events -- carry data in ``payload``.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Tie-break for events at the same instant; lower fires first.
    seq:
        Insertion counter; guarantees stable FIFO order for ties.
    callback:
        Callable invoked as ``callback(event)`` when the event fires.
    payload:
        Arbitrary user data carried by the event.
    cancelled:
        Set via :meth:`cancel`; cancelled events are skipped by the queue.
    """

    time: float
    priority: int = DEFAULT_PRIORITY
    seq: int = 0
    callback: Optional[Callable[["Event"], None]] = field(
        default=None, compare=False
    )
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be silently dropped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled and self.callback is not None:
            self.callback(self)


class EventQueue:
    """A heap of :class:`Event` with stable same-time ordering.

    The queue never raises on popping cancelled events -- they are lazily
    discarded, which keeps :meth:`cancel` O(1).
    """

    def __init__(self) -> None:
        #: Heap of ``(time, priority, seq, Event)`` entries.  Private to
        #: the queue and :meth:`Simulator._drain`'s batched fast path.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._next_seq = 0

    @property
    def next_seq(self) -> int:
        """The insertion counter the *next* pushed event will receive.

        A watermark over scheduling history: every event with
        ``seq < next_seq`` was pushed before this point.  The runtime
        sanitizer uses it to tell "scheduled after the previous pop"
        (legal same-time, lower-priority pops) from heap corruption.
        """
        return self._next_seq

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    def __bool__(self) -> bool:
        self._discard_cancelled_head()
        return bool(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[Event], None],
        *,
        priority: int = DEFAULT_PRIORITY,
        payload: Any = None,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event.

        Raises
        ------
        ValueError
            If ``time`` is negative or not finite.
        """
        if not (time >= 0.0) or time != time or time == _INF:
            raise ValueError(f"event time must be finite and >= 0, got {time!r}")
        seq = self._next_seq
        self._next_seq = seq + 1
        ev = Event(
            time=time,
            priority=priority,
            seq=seq,
            callback=callback,
            payload=payload,
        )
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def repush(self, ev: Event, time: float) -> Event:
        """Requeue an already-popped event at a new ``time``.

        The allocation-free reschedule used by
        :class:`~repro.sim.process.PeriodicProcess`: the event keeps its
        callback, payload and priority but receives a fresh ``seq``, so
        ordering is exactly as if a new event had been pushed.  The
        caller owns two invariants the hot path does not re-check:
        ``ev`` is not queued (it was popped and has fired or been
        skipped) and ``time`` is finite and non-negative (a periodic
        lattice validated at construction satisfies both).
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        ev.time = time
        ev.seq = seq
        heapq.heappush(self._heap, (time, ev.priority, seq, ev))
        return ev

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None``."""
        self._discard_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._discard_cancelled_head()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def _discard_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
