"""EXPERIMENTS.md generation: paper-vs-measured for every artifact.

Each table/figure carries (a) the paper's reported numbers (static,
transcribed below) and (b) our measured values, harvested from the
shape-check details of a live reproduction run.  ``repro report`` writes
the document; the checked-in EXPERIMENTS.md is one such run at paper
scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentResult

#: What the paper reports, per artifact id.
PAPER_CLAIMS: Dict[str, List[str]] = {
    "table1": [
        "xentop/top/mpstat/ifconfig/vmstat each cover only part of the "
        "VM/Dom0/PM x cpu/mem/io/bw matrix; no single tool suffices, "
        "motivating the unified script.",
    ],
    "table2": [
        "CPU 1/30/60/90/99 %, MEM 0.03/5/10/20/50 Mb, "
        "I/O 15/19/27/46/72 blocks/s, BW 0.001/0.16/0.32/0.64/1.28 Mb/s.",
    ],
    "table3": [
        "CPU overhead = |Dom0| + |hypervisor| (CPU and BW workloads); "
        "I/O, BW, MEM overheads = |sum(VM) - PM|.",
    ],
    "fig2a": [
        "Dom0 CPU 16.8 % -> 29.5 % with increase rate growing 0.01 -> 0.31;",
        "hypervisor CPU 3 % -> 14 % with rate growing 0.04 -> 0.26.",
    ],
    "fig2b": [
        "PM I/O is nearly twice the VM I/O; Dom0 I/O is zero.",
    ],
    "fig2c": [
        "All CPU utilizations stable under varying I/O intensity "
        "(I/O capped near 90 blocks/s by the virtual disk).",
    ],
    "fig2d": [
        "PM BW ~ VM BW with ~400 bytes/s overhead; Dom0 BW is zero.",
    ],
    "fig2e": [
        "Dom0 CPU 16.0 % -> 30.2 % at a constant increase rate 0.01 per "
        "Kb/s; VM CPU 0.5 % -> 3 %; hypervisor 2.5 % -> 3.5 %.",
    ],
    "fig3a": [
        "Guests saturate at ~95 % each; Dom0 and hypervisor rise then "
        "hold ~23.4 % / ~12.0 %.",
    ],
    "fig3b": ["PM I/O more than twice the sum of guest I/O."],
    "fig3c": ["Dom0 ~17.4 %, VM ~0.84 %, hypervisor ~2.7 %, all stable."],
    "fig3d": ["PM BW overhead ~3 % of the guest sum; Dom0 BW zero."],
    "fig3e": [
        "Dom0 17.1 % -> 41.8 % (rate 0.01 on aggregate Kb/s); "
        "hypervisor 2.6 % -> 4.0 % (rate ~0.0005).",
    ],
    "fig4a": [
        "Guests saturate at ~47 % each; Dom0 ~23.4 %, hypervisor ~12.0 %.",
    ],
    "fig4b": ["PM I/O more than twice the sum of guest I/O."],
    "fig4c": ["Dom0 ~17.4 %, hypervisor ~3.5 %, stable across intensity."],
    "fig4d": ["PM BW overhead ~3 % of guest sum."],
    "fig4e": [
        "Dom0 17.3 % -> 67.1 % (slope 2x Figure 3(e): twice the aggregate "
        "intensity); hypervisor 3.5 % -> 6.3 %.",
    ],
    "fig5a": [
        "Dom0 and PM bandwidth are zero for intra-PM traffic (packets "
        "redirected inside the PM never reach the NIC).",
    ],
    "fig5b": [
        "Dom0 CPU rises at 0.002 per Kb/s -- 5x less than inter-PM.",
    ],
    "fig6": [
        "Experiment setup: a client host drives the RUBiS web front-end "
        "in VM1 on PM1; the database runs in VM2 on PM2; each PM has its "
        "own Dom0 and hypervisor.",
    ],
    "fig7a": ["90 % of PM1 CPU prediction errors < 3 %; errors shrink as clients grow."],
    "fig7b": ["90 % of PM2 CPU prediction errors < 4 % (DB tier has lower BW, so relatively higher errors)."],
    "fig7c": ["90 % of PM1 BW errors < 4 %; ~80 % < 1 %."],
    "fig7d": ["90 % of PM2 BW errors < 4 %; ~80 % < 1 %."],
    "fig8a": ["90 % of PM1 CPU errors < 2 %."],
    "fig8b": ["90 % of PM2 CPU errors < 5 %."],
    "fig8c": ["90 % of PM1 BW errors < 3.5 %."],
    "fig8d": ["90 % of PM2 BW errors < 3.5 %."],
    "fig9a": ["90 % of PM1 CPU errors < 2 %."],
    "fig9b": ["Most PM2 CPU errors ~4.5 %."],
    "fig9c": ["80 % of PM1 BW errors < 1 %."],
    "fig9d": ["80 % of PM2 BW errors < 1 %."],
    "fig10a": [
        "VOA throughput stable (~85 req/s) and above VOU in every "
        "scenario; VOU degrades as more co-located VMs run lookbusy.",
    ],
    "fig10b": [
        "VOU total processing time exceeds VOA's, increasingly so with "
        "scenario index.",
    ],
    "memconst": [
        "(Section III-C, unplotted) Memory workloads leave Dom0 CPU at "
        "16.8 %, hypervisor at 3.0 %, PM I/O at 18.8 blocks/s and PM BW "
        "at 254 bytes/s -- hence no memory figures in the paper.",
    ],
    "toolover": [
        "(Section III-A, motivation) Running every tool everywhere "
        "perturbs the measured system; the unified script minimizes the "
        "probe footprint.",
    ],
    "pmconsist": [
        "(Section III-C) 'We carried out the same experiment in "
        "different PMs and the results are the same' -- the paper "
        "reports one PM.",
    ],
    "purity": [
        "(Section III-B) httperf/Iperf-style benchmarks 'cannot provide "
        "a workload that has high utilization on a sole resource and "
        "low overhead on other resources'; the Table II generators can.",
    ],
    "chaosa": [
        "(beyond the paper) The Section V model is trained from a "
        "healthy monitor; this artifact measures how prediction error "
        "grows when the monitor drops and silently corrupts samples, "
        "with the OLS -> LMS auto engine absorbing the corruption.",
    ],
    "chaosb": [
        "(beyond the paper) The Section VI placement loop assumes "
        "migrations succeed; this artifact injects PM crashes, VM "
        "stalls, NIC degradation and mid-flight migration failures and "
        "asserts the resilient loop's bookkeeping stays closed.",
    ],
}

#: Known, documented deviations of the reproduction.
DEVIATIONS: Dict[str, str] = {
    "fig2a": (
        "Terminal Dom0 increase rate measures ~0.25 vs the paper's "
        "reading of 0.31; the 16.8 -> 29.5 endpoints pin the quadratic."
    ),
    "fig7a": (
        "Our substrate's Dom0 response is convex while Eq. (1) is "
        "linear, so single-VM CPU errors peak at ~7 % at 300 clients "
        "(paper: 3 %), converging toward the paper's band at 700 "
        "clients. The decreasing-with-clients shape is asserted."
    ),
    "fig7b": "Same linear-vs-convex bias as fig7a (~8 % worst-case p90).",
}


def _artifact_section(result: ExperimentResult) -> str:
    lines = [f"### {result.experiment_id}: {result.title}", ""]
    claims = PAPER_CLAIMS.get(result.experiment_id)
    if claims:
        lines.append("**Paper reports:**")
        lines.extend(f"- {c}" for c in claims)
        lines.append("")
    lines.append("**Measured (this reproduction):**")
    for check in result.checks:
        mark = "x" if check.passed else " "
        detail = f" -- {check.detail}" if check.detail else ""
        lines.append(f"- [{mark}] {check.name}{detail}")
    deviation = DEVIATIONS.get(result.experiment_id)
    if deviation:
        lines.append("")
        lines.append(f"**Deviation:** {deviation}")
    lines.append("")
    return "\n".join(lines)


def generate_experiments_md(
    results: Sequence[ExperimentResult],
    *,
    fast: bool = False,
    provenance: Optional[Sequence[str]] = None,
) -> str:
    """Render the full EXPERIMENTS.md body from live results.

    ``provenance`` carries extra header lines for resumed runs (each
    starting with ``Run provenance:`` so diffs can filter them); it is
    ``None`` for ordinary runs, whose output must stay byte-identical
    whether or not a ``--run-dir`` manifest was recorded.
    """
    if not results:
        raise ValueError("no experiment results to report")
    n_pass = sum(1 for r in results if r.passed)
    header = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of every table and figure in *Profiling and "
        "Understanding Virtualization Overhead in Cloud* (ICPP 2015).",
        "",
        "Generated by `repro report`"
        + (" (fast mode — reduced durations/trials)." if fast else
           " at paper scale (120 s sweeps, 10-minute RUBiS runs, 10 "
           "placement trials)."),
        "",
        f"**Shape checks: {n_pass}/{len(results)} artifacts pass.**",
        "",
        "Absolute numbers come from our simulated substrate (see "
        "DESIGN.md section 2 for the substitutions), so the comparison "
        "below is about *shape*: baselines, plateaus, slopes, ratios, "
        "who wins and by how much.",
        "",
        "Every number here is machine-enforced reproducible: `repro "
        "lint` statically bans nondeterminism at the source level "
        "(unregistered RNG streams, wall-clock reads, unordered "
        "iteration — see README § Determinism enforcement), the runtime "
        "sanitizer (`--sanitize`) asserts stable event tie-breaking and "
        "per-stream RNG draw counts while artifacts run, and a "
        "double-run regression test proves byte-identical reports with "
        "identical draw counts per stream.",
        "",
        "Determinism also makes the reproduction parallel and "
        "cacheable: `repro report --jobs N` fans experiment cells over "
        "worker processes (batched `--chunk` tasks on a warm pool) and "
        "`--cache-dir` serves repeated cells from a content-addressed "
        "cache — both byte-identical to a serial run (README § "
        "Parallel execution & caching). The numbers below were "
        "produced by the default fast-path simulation core (batched "
        "event dispatch, steady-state quantum memo, vectorized "
        "scheduler and monitor kernels — README § Performance); the "
        "fast path only skips provably redundant work, so every figure "
        "is byte-for-byte identical to the scalar reference path "
        "(`REPRO_SIM_SLOWPATH=1`), which CI re-proves on every push. "
        "`repro bench` records the perf trajectory (`BENCH_<rev>."
        "json`: events/sec, parallel speedup, cache hit rate) and "
        "`repro bench --compare` gates regressions; wall-clock numbers "
        "are machine-dependent, so only ratios are comparable across "
        "hosts.",
        "",
        "Runs are crash-safe: `--run-dir` checkpoints every completed "
        "cell behind checksummed artifacts and `--resume` (or `repro "
        "runs resume`) re-executes only what is missing — a resumed "
        "report is byte-identical to an uninterrupted one (README § "
        "Crash safety & resume).",
        "",
        "Adding `--obs-dir DIR` records harness observability (metrics "
        "+ spans) alongside any run without changing a single output "
        "byte; `repro obs summary` then shows per-source span counts, "
        "wall time, and error tallies. Interpret them as a profile of "
        "the *harness*, not the simulated system: wall seconds are "
        "machine-dependent (compare ratios, like the README § "
        "Observability bench guidance), sim-clock span stamps and "
        "counters such as `repro_sim_events_total` are deterministic "
        "and must not vary across hosts, and a nonzero `error(s)` "
        "column or `repro_supervisor_retries_total` means supervision "
        "absorbed failures — worth investigating even though the "
        "artifacts themselves stayed correct.",
        "",
        "The fitted overhead models also run as a resilient online "
        "service: `repro serve run` ingests a monitor stream through a "
        "crash-safe WAL into recursive-least-squares candidates, "
        "detects regime drift (Page-Hinkley) and refits, and answers "
        "placement queries only from an integrity-guarded versioned "
        "model registry (README § Online prediction service). CI's "
        "serve-smoke job SIGKILLs the service mid-stream under "
        "injected delivery faults and requires the resumed state to be "
        "byte-identical to an uninterrupted run's, with quarantined or "
        "dark streams answered from the last promoted version, flagged "
        "`degraded` — never silently wrong, never a crash.",
        "",
        "Resilience is fuzzed, not assumed: `repro chaos fuzz` samples "
        "deterministic fault plans across every fault surface — "
        "machine faults into the resilient placement loop, delivery "
        "faults into the serve ingest path, SIGKILL/stall faults into "
        "the supervised executor — executes each plan, and judges the "
        "outcome against machine-checked invariant oracles (guest "
        "conservation, migration accounting, circuit-breaker "
        "monotonicity, WAL-replay idempotency, crash-resume identity, "
        "zero-fault byte-identity, exactly-once worker faults). A "
        "violation is delta-debugged down to a minimal replayable JSON "
        "plan (`repro chaos replay`), and the campaign is summarized "
        "in a byte-reproducible `resilience.json` scorecard (README § "
        "Chaos fuzzing & resilience scorecard). CI runs a fixed-seed "
        "campaign on every push and proves the detector itself works "
        "by replaying a committed planted-violation fixture, requiring "
        "it to fail and to shrink to the committed known-minimal plan.",
        "",
        "The placement comparison also runs at datacenter scale: "
        "`repro fleet` partitions 1000+ PMs across per-shard event "
        "queues joined by epoch-barrier mailboxes, deploys 10^4+ VMs "
        "under each strategy, and drives them with an open-loop "
        "population of 10^5+ emulated clients — VOU's overhead-blind "
        "packing overloads and churns migrations while VOA serves the "
        "full offered load. Cell summaries stream through the "
        "executor's incremental-consume mode (bounded memory at any "
        "fleet size), and the artifacts are byte-identical at any "
        "`--shards` value and for serial vs `--jobs` runs (README § "
        "Fleet scale).",
        "",
    ]
    if provenance:
        header.extend(list(provenance) + [""])
    body = [_artifact_section(r) for r in results]
    return "\n".join(header) + "\n" + "\n".join(body)
