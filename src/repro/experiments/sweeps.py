"""Shared micro-benchmark sweep machinery for Figures 2-5.

One *sweep* runs a Table II benchmark at every intensity level on
``n_vms`` co-located guests and records the mean utilization of each
entity/resource per level -- exactly the points the paper's Figures 2-4
plot.  Figure 5 (intra-PM traffic) gets its own driver because the
workload targets a co-located VM instead of an external host.

Every intensity level is an independent simulation seeded with
``seed + index``, so a sweep decomposes into
:class:`~repro.perf.cells.MicrobenchCell` descriptors executed by the
parallel cell executor: with ``repro run --jobs N`` the levels fan out
over worker processes, and with ``--cache-dir`` previously computed
levels are served from the content-addressed result cache.  Results are
merged in level order, so parallel output is byte-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.monitor.metrics import trace_name
from repro.monitor.script import MeasurementScript
from repro.perf.cells import MicrobenchCell
from repro.perf.executor import run_cells
from repro.sim.engine import Simulator
from repro.workloads.netload import intra_pm_ping
from repro.workloads.suite import BW, intensity_levels, make_benchmark
from repro.xen.calibration import XenCalibration
from repro.xen.machine import PhysicalMachine
from repro.xen.specs import VMSpec

#: Duration of each measurement in the paper (2 minutes at 1 Hz).
PAPER_DURATION_S = 120.0
#: Fast-mode duration used by the test suite.
FAST_DURATION_S = 12.0
#: Warm-up simulated before sampling starts.
WARMUP_S = 3.0

#: The pseudo-kind of the Figure 5 intra-PM sweep cells.
INTRA_PM_KIND = "bw-intra"

#: (entity, resource) pairs every sweep level records, in report order.
LEVEL_SERIES: Tuple[Tuple[str, str], ...] = tuple(
    (entity, resource)
    for entity in ("vm0", "dom0", "pm")
    for resource in ("cpu", "mem", "io", "bw")
) + (("hyp", "cpu"),)


@dataclass
class SweepResult:
    """Per-level mean utilizations of one benchmark sweep."""

    kind: str
    n_vms: int
    levels: List[float]
    #: (entity, resource) -> one mean per level.  Entities: ``vm0`` (the
    #: representative guest -- the paper notes all guests measure the
    #: same), ``dom0``, ``hyp``, ``pm``.
    means: Dict[Tuple[str, str], List[float]]

    def series(self, entity: str, resource: str) -> List[float]:
        """The curve for one entity/resource over the sweep levels."""
        try:
            return self.means[(entity, resource)]
        except KeyError:
            raise KeyError(
                f"no ({entity}, {resource}) series in sweep {self.kind}"
            ) from None


def _level_means(report) -> Dict[Tuple[str, str], float]:
    """All per-(entity, resource) means of one level in a single pass.

    The sample matrix is reduced with one vectorized ``mean(axis=1)``
    over the stacked traces instead of 13 scalar ``np.mean`` calls;
    row-wise reduction of a C-contiguous matrix is bit-identical to the
    per-trace means it replaces.
    """
    matrix = np.stack(
        [
            report.series(entity, resource).values
            for entity, resource in LEVEL_SERIES
        ]
    )
    means = matrix.mean(axis=1)
    return {
        pair: float(means[i]) for i, pair in enumerate(LEVEL_SERIES)
    }


def run_level_cell(cell: MicrobenchCell):
    """Execute one sweep level (the body of the old serial loops).

    Returns ``(means, events)`` where ``means`` maps ``(entity,
    resource)`` to the level's mean utilization and ``events`` is the
    number of simulator events dispatched -- the executor's throughput
    accounting.
    """
    sim = Simulator(seed=cell.seed + cell.index)
    pm = PhysicalMachine(sim, name="pm1", calibration=cell.calibration)
    if cell.kind == INTRA_PM_KIND:
        vm1 = pm.create_vm(VMSpec(name="vm0"))
        pm.create_vm(VMSpec(name="vm1"))
        intra_pm_ping(cell.level * 1000.0, "vm1").attach(vm1)
    else:
        vms = [
            pm.create_vm(VMSpec(name=f"vm{k}")) for k in range(cell.n_vms)
        ]
        for vm in vms:
            make_benchmark(cell.kind, cell.level).attach(vm)
    pm.start()
    sim.run_until(WARMUP_S)
    report = MeasurementScript(pm).run(duration=cell.duration)
    return _level_means(report), sim.dispatched


def _sweep_cells(
    kind: str,
    n_vms: int,
    levels: List[float],
    *,
    duration: float,
    seed: int,
    calibration: Optional[XenCalibration],
) -> List[MicrobenchCell]:
    return [
        MicrobenchCell(
            kind=kind,
            n_vms=n_vms,
            level=level,
            index=index,
            duration=duration,
            seed=seed,
            calibration=calibration,
        )
        for index, level in enumerate(levels)
    ]


def _assemble(
    kind: str, n_vms: int, levels: List[float], cells: List[MicrobenchCell]
) -> SweepResult:
    """Run the cells and merge per-level means in level-key order."""
    level_means = run_cells(cells)
    means: Dict[Tuple[str, str], List[float]] = {}
    for per_level in level_means:
        for pair in LEVEL_SERIES:
            means.setdefault(pair, []).append(per_level[pair])
    return SweepResult(kind=kind, n_vms=n_vms, levels=levels, means=means)


def microbench_sweep(
    kind: str,
    n_vms: int,
    *,
    duration: float = PAPER_DURATION_S,
    seed: int = 42,
    calibration: Optional[XenCalibration] = None,
    levels: Optional[List[float]] = None,
) -> SweepResult:
    """Sweep one Table II benchmark over its intensity grid."""
    levels = list(levels) if levels is not None else list(intensity_levels(kind))
    cells = _sweep_cells(
        kind, n_vms, levels,
        duration=duration, seed=seed, calibration=calibration,
    )
    return _assemble(kind, n_vms, levels, cells)


def intra_pm_sweep(
    *,
    duration: float = PAPER_DURATION_S,
    seed: int = 42,
    calibration: Optional[XenCalibration] = None,
    levels: Optional[List[float]] = None,
) -> SweepResult:
    """Figure 5's sweep: VM1 pings VM2 on the same PM with 64 Kb packets.

    Levels are the Table II BW grid in Mb/s; VM1 is the measured guest.
    """
    levels = list(levels) if levels is not None else list(intensity_levels(BW))
    cells = _sweep_cells(
        INTRA_PM_KIND, 2, levels,
        duration=duration, seed=seed, calibration=calibration,
    )
    return _assemble(INTRA_PM_KIND, 2, levels, cells)
