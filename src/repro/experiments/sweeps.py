"""Shared micro-benchmark sweep machinery for Figures 2-5.

One *sweep* runs a Table II benchmark at every intensity level on
``n_vms`` co-located guests and records the mean utilization of each
entity/resource per level -- exactly the points the paper's Figures 2-4
plot.  Figure 5 (intra-PM traffic) gets its own driver because the
workload targets a co-located VM instead of an external host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.monitor.script import MeasurementScript
from repro.sim.engine import Simulator
from repro.workloads.netload import intra_pm_ping
from repro.workloads.suite import BW, intensity_levels, make_benchmark
from repro.xen.calibration import XenCalibration
from repro.xen.machine import PhysicalMachine
from repro.xen.specs import VMSpec

#: Duration of each measurement in the paper (2 minutes at 1 Hz).
PAPER_DURATION_S = 120.0
#: Fast-mode duration used by the test suite.
FAST_DURATION_S = 12.0
#: Warm-up simulated before sampling starts.
WARMUP_S = 3.0


@dataclass
class SweepResult:
    """Per-level mean utilizations of one benchmark sweep."""

    kind: str
    n_vms: int
    levels: List[float]
    #: (entity, resource) -> one mean per level.  Entities: ``vm0`` (the
    #: representative guest -- the paper notes all guests measure the
    #: same), ``dom0``, ``hyp``, ``pm``.
    means: Dict[Tuple[str, str], List[float]]

    def series(self, entity: str, resource: str) -> List[float]:
        """The curve for one entity/resource over the sweep levels."""
        try:
            return self.means[(entity, resource)]
        except KeyError:
            raise KeyError(
                f"no ({entity}, {resource}) series in sweep {self.kind}"
            ) from None


def microbench_sweep(
    kind: str,
    n_vms: int,
    *,
    duration: float = PAPER_DURATION_S,
    seed: int = 42,
    calibration: Optional[XenCalibration] = None,
    levels: Optional[List[float]] = None,
) -> SweepResult:
    """Sweep one Table II benchmark over its intensity grid."""
    levels = list(levels) if levels is not None else list(intensity_levels(kind))
    means: Dict[Tuple[str, str], List[float]] = {}
    for idx, level in enumerate(levels):
        sim = Simulator(seed=seed + idx)
        pm = PhysicalMachine(sim, name="pm1", calibration=calibration)
        vms = [pm.create_vm(VMSpec(name=f"vm{k}")) for k in range(n_vms)]
        for vm in vms:
            make_benchmark(kind, level).attach(vm)
        pm.start()
        sim.run_until(WARMUP_S)
        report = MeasurementScript(pm).run(duration=duration)
        for entity in ("vm0", "dom0", "pm"):
            for resource in ("cpu", "mem", "io", "bw"):
                means.setdefault((entity, resource), []).append(
                    report.mean(entity, resource)
                )
        means.setdefault(("hyp", "cpu"), []).append(report.mean("hyp", "cpu"))
    return SweepResult(kind=kind, n_vms=n_vms, levels=levels, means=means)


def intra_pm_sweep(
    *,
    duration: float = PAPER_DURATION_S,
    seed: int = 42,
    calibration: Optional[XenCalibration] = None,
    levels: Optional[List[float]] = None,
) -> SweepResult:
    """Figure 5's sweep: VM1 pings VM2 on the same PM with 64 Kb packets.

    Levels are the Table II BW grid in Mb/s; VM1 is the measured guest.
    """
    levels = list(levels) if levels is not None else list(intensity_levels(BW))
    means: Dict[Tuple[str, str], List[float]] = {}
    for idx, level in enumerate(levels):
        sim = Simulator(seed=seed + idx)
        pm = PhysicalMachine(sim, name="pm1", calibration=calibration)
        vm1 = pm.create_vm(VMSpec(name="vm0"))
        pm.create_vm(VMSpec(name="vm1"))
        intra_pm_ping(level * 1000.0, "vm1").attach(vm1)
        pm.start()
        sim.run_until(WARMUP_S)
        report = MeasurementScript(pm).run(duration=duration)
        for entity in ("vm0", "dom0", "pm"):
            for resource in ("cpu", "mem", "io", "bw"):
                means.setdefault((entity, resource), []).append(
                    report.mean(entity, resource)
                )
        means.setdefault(("hyp", "cpu"), []).append(report.mean("hyp", "cpu"))
    return SweepResult(kind="bw-intra", n_vms=2, levels=levels, means=means)
