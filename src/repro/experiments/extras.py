"""Extra reproduction artifacts beyond the numbered figures.

* ``memconst`` -- Section III-C's unplotted result: under the
  memory-intensive benchmark every other metric is constant (Dom0 CPU
  16.8 %, hypervisor 3.0 %, Dom0 I/O and BW zero, PM I/O 18.8 blocks/s,
  PM BW 254 bytes/s), which is why the paper shows no memory figures.
* ``toolover`` -- Section III-A's motivation quantified: the naive
  run-every-tool-everywhere monitoring deployment perturbs the system
  it measures; the unified script's minimal covering set perturbs it
  far less.
* ``pmconsist`` -- Section III-C's sanity check: "We carried out the
  same experiment in different PMs and the results are the same", so
  the paper reports one PM.  We run the Fig. 2(a) operating point on
  several independently-seeded PMs and assert agreement.
* ``purity`` -- Section III-B's critique of httperf/Iperf benchmarks:
  they load several resources at once, unlike the single-resource
  Table II generators.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    Series,
    approx_check,
    bound_check,
)
from repro.experiments.sweeps import PAPER_DURATION_S, microbench_sweep
from repro.monitor.overhead import (
    apply_probe_load,
    naive_probe_load,
    unified_probe_load,
)
from repro.monitor.script import MeasurementScript
from repro.sim.engine import Simulator
from repro.workloads.lookbusy import CpuHog
from repro.xen.machine import PhysicalMachine
from repro.xen.specs import VMSpec


def run_memconst(
    *, duration: float = PAPER_DURATION_S, seed: int = 42
) -> ExperimentResult:
    """The memory-benchmark constants of Section III-C."""
    sweep = microbench_sweep("mem", 1, duration=duration, seed=seed)
    dom0 = sweep.series("dom0", "cpu")
    hyp = sweep.series("hyp", "cpu")
    pm_io = sweep.series("pm", "io")
    pm_bw = sweep.series("pm", "bw")
    vm_mem = sweep.series("vm0", "mem")
    checks = [
        approx_check("dom0 CPU constant 16.8%", max(dom0), 16.8, abs_tol=0.3),
        approx_check("hyp CPU constant 3.0%", max(hyp), 3.0, abs_tol=0.3),
        approx_check("PM I/O constant 18.8 blocks/s", max(pm_io), 18.8, abs_tol=0.5),
        approx_check(
            "PM BW constant 254 bytes/s", max(pm_bw), 254 * 8 / 1000, abs_tol=0.2
        ),
        bound_check("dom0 I/O zero", max(sweep.series("dom0", "io")), below=1e-9),
        bound_check("dom0 BW zero", max(sweep.series("dom0", "bw")), below=1e-9),
        bound_check(
            "VM memory tracks the working set",
            vm_mem[-1] - vm_mem[0],
            above=sweep.levels[-1] - sweep.levels[0] - 2.0,
        ),
    ]
    series = [
        Series("dom0.cpu", list(sweep.levels), dom0, "MEM workload (Mb)", "CPU (%)"),
        Series("hyp.cpu", list(sweep.levels), hyp, "MEM workload (Mb)", "CPU (%)"),
        Series("vm.mem", list(sweep.levels), vm_mem, "MEM workload (Mb)", "MB"),
        Series("pm.io", list(sweep.levels), pm_io, "MEM workload (Mb)", "blocks/s"),
        Series("pm.bw", list(sweep.levels), pm_bw, "MEM workload (Mb)", "Kb/s"),
    ]
    return ExperimentResult(
        experiment_id="memconst",
        title="Memory benchmark leaves every other metric constant",
        series=series,
        checks=checks,
        notes=(
            "The paper omits memory figures for exactly this reason "
            "(Section III-C)."
        ),
    )


def run_toolover(
    *, duration: float = PAPER_DURATION_S, seed: int = 42
) -> ExperimentResult:
    """Quantify monitoring self-overhead: naive tools vs unified script."""

    def measure(load):
        sim = Simulator(seed=seed)
        pm = PhysicalMachine(sim, name="pm1")
        vm = pm.create_vm(VMSpec(name="vm1"))
        CpuHog(60.0).attach(vm)
        if load is not None:
            apply_probe_load(pm, load)
        pm.start()
        sim.run_until(3.0)
        report = MeasurementScript(pm).run(duration=duration)
        return report.mean("dom0", "cpu"), report.mean("vm1", "cpu")

    clean_dom0, clean_vm = measure(None)
    unified_dom0, unified_vm = measure(unified_probe_load())
    naive_dom0, naive_vm = measure(naive_probe_load())

    checks = [
        bound_check(
            "naive probing inflates Dom0 CPU",
            naive_dom0 - clean_dom0,
            above=1.0,
        ),
        bound_check(
            "naive probing inflates guest CPU",
            naive_vm - clean_vm,
            above=0.4,
        ),
        bound_check(
            "unified script perturbs Dom0 less than naive",
            unified_dom0,
            below=naive_dom0,
        ),
        bound_check(
            "unified script perturbs guests by <= half of naive",
            unified_vm - clean_vm,
            below=(naive_vm - clean_vm) / 2 + 0.1,
        ),
    ]
    series = [
        Series(
            "dom0.cpu",
            [0.0, 1.0, 2.0],
            [clean_dom0, unified_dom0, naive_dom0],
            "strategy (0=none, 1=unified, 2=naive)",
            "CPU (%)",
        ),
        Series(
            "vm.cpu",
            [0.0, 1.0, 2.0],
            [clean_vm, unified_vm, naive_vm],
            "strategy (0=none, 1=unified, 2=naive)",
            "CPU (%)",
        ),
    ]
    return ExperimentResult(
        experiment_id="toolover",
        title="Monitoring self-overhead: unified script vs naive tools",
        series=series,
        checks=checks,
        notes=(
            "Quantifies Section III-A's argument for the unified "
            "measurement script."
        ),
    )


def run_pmconsist(
    *, duration: float = PAPER_DURATION_S, seed: int = 42, n_pms: int = 3
) -> ExperimentResult:
    """Repeat one operating point on several PMs; results must agree."""
    if n_pms < 2:
        raise ValueError("need at least two PMs to compare")

    def one_pm(k: int):
        sim = Simulator(seed=seed + 1000 * k)
        pm = PhysicalMachine(sim, name=f"pm{k}")
        vm = pm.create_vm(VMSpec(name="vm1"))
        CpuHog(90.0).attach(vm)
        pm.start()
        sim.run_until(3.0)
        report = MeasurementScript(pm).run(duration=duration)
        return (
            report.mean("dom0", "cpu"),
            report.mean("hyp", "cpu"),
            report.mean("vm1", "cpu"),
        )

    results = [one_pm(k) for k in range(n_pms)]
    dom0 = [r[0] for r in results]
    hyp = [r[1] for r in results]
    vm = [r[2] for r in results]
    # Tolerances sized for the 1 Hz measurement noise: a run of
    # ``duration`` samples averages the ~2 % multiplicative CPU noise
    # down by sqrt(duration), and the spread of a few such means stays
    # within ~4 standard errors.
    import math

    se = 0.02 * 90.0 / math.sqrt(max(duration, 1.0))
    checks = [
        bound_check(
            "dom0 CPU agrees across PMs (spread)",
            max(dom0) - min(dom0),
            below=max(0.25, 4 * se * 29.5 / 90.0),
        ),
        bound_check(
            "hypervisor CPU agrees across PMs (spread)",
            max(hyp) - min(hyp),
            below=max(0.15, 4 * se * 14.0 / 90.0),
        ),
        bound_check(
            "guest CPU agrees across PMs (spread)",
            max(vm) - min(vm),
            below=max(0.3, 4 * se),
        ),
    ]
    xs = [float(k) for k in range(n_pms)]
    series = [
        Series("dom0.cpu", xs, dom0, "PM index", "CPU (%)"),
        Series("hyp.cpu", xs, hyp, "PM index", "CPU (%)"),
        Series("vm.cpu", xs, vm, "PM index", "CPU (%)"),
    ]
    return ExperimentResult(
        experiment_id="pmconsist",
        title="The same experiment on different PMs gives the same results",
        series=series,
        checks=checks,
        notes="Section III-C: the paper reports one PM for this reason.",
    )


def run_purity(*, duration: float = 0.0, seed: int = 42) -> ExperimentResult:
    """Resource purity of Table II generators vs httperf/Iperf.

    ``duration`` is accepted for interface uniformity but unused: purity
    is a property of the offered demand vector, not of a timed run.
    """
    from repro.workloads.legacy import HttperfLoad, IperfLoad, resource_purity
    from repro.workloads.suite import make_benchmark
    from repro.xen.vm import GuestVM

    def purity_of(workload) -> float:
        vm = GuestVM(VMSpec(name="probe"))
        workload.attach(vm)
        try:
            return resource_purity(vm)
        finally:
            workload.detach()

    table_ii = {
        "cpu@60": purity_of(make_benchmark("cpu", 60.0)),
        "mem@20": purity_of(make_benchmark("mem", 20.0)),
        "io@46": purity_of(make_benchmark("io", 46.0)),
        "bw@0.64": purity_of(make_benchmark("bw", 0.64)),
    }
    legacy = {
        "httperf@80rps": purity_of(HttperfLoad(80.0)),
    }
    # Iperf is judged in absolute terms: a stream near line rate burns
    # a large share of a VCPU -- the "low overhead on other resources"
    # property fails even though its *relative* footprint is BW-heavy.
    iperf = IperfLoad(800.0)
    iperf_vm = GuestVM(VMSpec(name="iperf-probe"))
    iperf.attach(iperf_vm)
    iperf_cpu = iperf_vm.demand.cpu_pct
    iperf.detach()
    checks = [
        bound_check(
            f"Table II {name} is near single-resource", value, above=0.85
        )
        for name, value in table_ii.items()
    ] + [
        bound_check(
            f"legacy {name} smears across resources", value, below=0.8
        )
        for name, value in legacy.items()
    ] + [
        bound_check(
            "Iperf near line rate burns substantial guest CPU (%)",
            iperf_cpu,
            above=50.0,
        )
    ]
    names = list(table_ii) + list(legacy)
    values = list(table_ii.values()) + list(legacy.values())
    series = [
        Series(
            "resource purity",
            list(range(len(names))),
            values,
            "workload (" + ", ".join(names) + ")",
            "purity [0-1]",
        )
    ]
    return ExperimentResult(
        experiment_id="purity",
        title="Single-resource purity: Table II generators vs httperf/Iperf",
        series=series,
        checks=checks,
        notes=(
            "Section III-B: why the paper built lookbusy/ping micro "
            "benchmarks instead of reusing httperf/Iperf."
        ),
    )
