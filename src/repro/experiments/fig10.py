"""Figure 10: virtualization-overhead-aware VM placement (VOA vs VOU).

Bar charts over the four workload scenarios:

* (a) mean RUBiS throughput with 10th/90th-percentile error bars;
* (b) total processing time.

Shape criteria: VOA's throughput is stable across scenarios and at
least VOU's everywhere; VOU degrades as the scenario index (number of
loaded co-located VMs) rises; VOA's total time stays at or below VOU's.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import (
    Check,
    ExperimentResult,
    Series,
    bound_check,
)
from repro.experiments.prediction import trained_models
from repro.models.multi_vm import MultiVMOverheadModel
from repro.placement.placer import VOA, VOU
from repro.placement.scenario import (
    DEFAULT_TRIALS,
    SCENARIOS,
    ScenarioResult,
    run_scenario_experiment,
)


def _grid(
    model: Optional[MultiVMOverheadModel],
    scenarios: Sequence[int],
    trials: int,
    duration_s: float,
    profile_s: float,
    seed: int,
) -> dict[tuple[int, str], ScenarioResult]:
    if model is None:
        _, model = trained_models()
    results = run_scenario_experiment(
        model,
        scenarios=scenarios,
        trials=trials,
        duration_s=duration_s,
        profile_s=profile_s,
        seed=seed,
    )
    return {(r.scenario, r.strategy): r for r in results}


def run_fig10a(
    *,
    model: Optional[MultiVMOverheadModel] = None,
    scenarios: Sequence[int] = SCENARIOS,
    trials: int = DEFAULT_TRIALS,
    duration_s: float = 120.0,
    profile_s: float = 60.0,
    seed: int = 2015,
    _grid_cache: Optional[dict] = None,
) -> ExperimentResult:
    """Fig. 10(a): average throughput of VOA vs VOU."""
    grid = _grid_cache or _grid(
        model, scenarios, trials, duration_s, profile_s, seed
    )
    xs = [float(s) for s in scenarios]
    voa = [grid[(s, VOA)].mean_throughput() for s in scenarios]
    vou = [grid[(s, VOU)].mean_throughput() for s in scenarios]
    checks: list[Check] = []
    for i, s in enumerate(scenarios):
        checks.append(
            bound_check(
                f"VOA >= VOU at scenario {s}", voa[i], above=vou[i] - 1e-9
            )
        )
    checks.append(
        bound_check(
            "VOA throughput stable across scenarios",
            max(voa) - min(voa),
            below=0.1 * max(voa),
        )
    )
    heaviest = len(scenarios) - 1
    checks.append(
        bound_check(
            "VOU degrades in the heaviest scenario",
            vou[heaviest],
            below=0.93 * voa[heaviest],
        )
    )
    return ExperimentResult(
        experiment_id="fig10a",
        title="Average RUBiS throughput: VOA vs VOU",
        series=[
            Series("VOA", xs, voa, "Workload scenario", "Throughput (req/s)"),
            Series("VOU", xs, vou, "Workload scenario", "Throughput (req/s)"),
        ],
        checks=checks,
    )


def run_fig10b(
    *,
    model: Optional[MultiVMOverheadModel] = None,
    scenarios: Sequence[int] = SCENARIOS,
    trials: int = DEFAULT_TRIALS,
    duration_s: float = 120.0,
    profile_s: float = 60.0,
    seed: int = 2015,
    _grid_cache: Optional[dict] = None,
) -> ExperimentResult:
    """Fig. 10(b): total request-processing time of VOA vs VOU."""
    grid = _grid_cache or _grid(
        model, scenarios, trials, duration_s, profile_s, seed
    )
    xs = [float(s) for s in scenarios]
    voa = [grid[(s, VOA)].mean_total_time() for s in scenarios]
    vou = [grid[(s, VOU)].mean_total_time() for s in scenarios]
    checks: list[Check] = [
        bound_check(
            f"VOU total time >= VOA at scenario {s}",
            vou[i],
            above=voa[i] - 1e-9,
        )
        for i, s in enumerate(scenarios)
    ]
    heaviest = len(scenarios) - 1
    checks.append(
        bound_check(
            "VOU total time inflated in heaviest scenario",
            vou[heaviest],
            above=1.05 * voa[heaviest],
        )
    )
    return ExperimentResult(
        experiment_id="fig10b",
        title="Total processing time: VOA vs VOU",
        series=[
            Series("VOA", xs, voa, "Workload scenario", "Total time (s)"),
            Series("VOU", xs, vou, "Workload scenario", "Total time (s)"),
        ],
        checks=checks,
    )


def run_fig10(
    *,
    model: Optional[MultiVMOverheadModel] = None,
    scenarios: Sequence[int] = SCENARIOS,
    trials: int = DEFAULT_TRIALS,
    duration_s: float = 120.0,
    profile_s: float = 60.0,
    seed: int = 2015,
) -> list[ExperimentResult]:
    """Both Figure 10 panels from one shared scenario grid."""
    grid = _grid(model, scenarios, trials, duration_s, profile_s, seed)
    return [
        run_fig10a(_grid_cache=grid, scenarios=scenarios),
        run_fig10b(_grid_cache=grid, scenarios=scenarios),
    ]
