"""Figure 5: intra-PM bandwidth-intensive workload.

VM1 pings VM2 *on the same PM* with 64 Kb packets.  Shape criteria
(Section IV-B):

* (a) Dom0 and PM bandwidth utilizations are **zero** -- redirected
  packets never occupy the physical NIC; the guests still see the
  traffic on their VIFs.
* (b) Dom0 CPU rises at 0.002 per Kb/s -- 5x less than the inter-PM
  rate of 0.01.
"""

from __future__ import annotations

from repro.analysis.rates import fit_slope
from repro.experiments.base import (
    ExperimentResult,
    Series,
    approx_check,
    bound_check,
)
from repro.experiments.fig2 import _cpu_series
from repro.experiments.sweeps import PAPER_DURATION_S, intra_pm_sweep
from repro.xen.calibration import DEFAULT_CALIBRATION


def run_fig5a(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> ExperimentResult:
    """Fig. 5(a): bandwidth utilizations for intra-PM traffic."""
    sweep = intra_pm_sweep(duration=duration, seed=seed)
    vm = sweep.series("vm0", "bw")
    pm = sweep.series("pm", "bw")
    dom0 = sweep.series("dom0", "bw")
    floor = DEFAULT_CALIBRATION.pm_bw_floor_kbps
    checks = [
        bound_check("dom0 BW is zero", max(dom0), below=1e-9),
        bound_check(
            "PM BW stays at the idle floor (no physical traffic)",
            max(pm) - floor,
            below=0.5,
        ),
        approx_check(
            "VM still sees its traffic (Kb/s)",
            vm[-1],
            sweep.levels[-1] * 1000.0,
            abs_tol=30.0,
        ),
    ]
    series = [
        Series("PM", list(sweep.levels), pm, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
        Series("VM", list(sweep.levels), vm, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
        Series("Dom0", list(sweep.levels), dom0, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
    ]
    return ExperimentResult(
        experiment_id="fig5a",
        title="BW utilizations for intra-PM BW-intensive workload",
        series=series,
        checks=checks,
    )


def run_fig5b(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> ExperimentResult:
    """Fig. 5(b): Dom0 CPU slope is 0.002 -- 5x below inter-PM."""
    sweep = intra_pm_sweep(duration=duration, seed=seed)
    dom0 = sweep.series("dom0", "cpu")
    kbps = [lv * 1000.0 for lv in sweep.levels]
    slope = fit_slope(kbps, dom0)
    inter_rate = DEFAULT_CALIBRATION.dom0_net_pct_per_kbps
    checks = [
        approx_check("dom0 slope 0.002 %/(Kb/s)", slope, 0.002, abs_tol=0.0006),
        approx_check(
            "slope is 5x below inter-PM rate",
            inter_rate / max(slope, 1e-9),
            5.0,
            abs_tol=1.5,
        ),
    ]
    return ExperimentResult(
        experiment_id="fig5b",
        title="CPU utilizations for intra-PM BW-intensive workload",
        series=_cpu_series(sweep, "Input BW workload (Mb/s)"),
        checks=checks,
    )


def run_fig5(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> list[ExperimentResult]:
    """Both Figure 5 subfigures."""
    return [
        run_fig5a(duration=duration, seed=seed),
        run_fig5b(duration=duration, seed=seed),
    ]
