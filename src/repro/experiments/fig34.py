"""Figures 3 and 4: resource utilizations for 2 / 4 co-located VMs.

Same five subfigures as Figure 2, but with every guest running the
benchmark simultaneously.  The new shape criteria (Section IV-B):

* CPU saturation: guests settle at ~95 % (N=2) / ~47 % (N=4); Dom0 and
  hypervisor plateau at 23.4 % / 12.0 %.
* PM I/O remains ~2x the *sum* of guest I/O.
* Dom0's CPU-vs-BW slope stays 0.01 per aggregate Kb/s, so the
  per-figure slope over per-VM intensity scales with N; the hypervisor
  slope is ~0.0005 per aggregate Kb/s.
* PM BW overhead ~3 % of the guest sum.
"""

from __future__ import annotations

from repro.analysis.rates import fit_slope
from repro.experiments.base import (
    ExperimentResult,
    Series,
    approx_check,
    bound_check,
)
from repro.experiments.fig2 import CPU_ENTITIES, _cpu_series
from repro.experiments.sweeps import PAPER_DURATION_S, microbench_sweep


def _figure_id(n_vms: int, sub: str) -> str:
    return {2: "fig3", 4: "fig4"}[n_vms] + sub


def run_cpu_subfig(
    n_vms: int, *, duration: float = PAPER_DURATION_S, seed: int = 42
) -> ExperimentResult:
    """Fig. 3(a) / 4(a): CPU utilizations with co-located CPU hogs."""
    sweep = microbench_sweep("cpu", n_vms, duration=duration, seed=seed)
    dom0 = sweep.series("dom0", "cpu")
    hyp = sweep.series("hyp", "cpu")
    vm = sweep.series("vm0", "cpu")
    vm_sat = {2: 95.0, 4: 47.0}[n_vms]
    checks = [
        approx_check(
            f"VM saturates at ~{vm_sat}%", vm[-1], vm_sat, abs_tol=1.5
        ),
        approx_check("dom0 plateau 23.4%", dom0[-1], 23.4, abs_tol=1.0),
        approx_check("hyp plateau 12.0%", hyp[-1], 12.0, abs_tol=1.0),
        bound_check(
            "dom0 rises then flattens (plateau < single-VM endpoint)",
            dom0[-1],
            below=29.5,
            above=dom0[0],
        ),
        bound_check(
            "VM cannot reach 100% under colocation", vm[-1], below=99.0
        ),
    ]
    return ExperimentResult(
        experiment_id=_figure_id(n_vms, "a"),
        title=f"CPU utilizations for CPU-intensive workload ({n_vms} VMs)",
        series=_cpu_series(sweep, "Input CPU workload (%)"),
        checks=checks,
    )


def run_io_util_subfig(
    n_vms: int, *, duration: float = PAPER_DURATION_S, seed: int = 42
) -> ExperimentResult:
    """Fig. 3(b) / 4(b): I/O utilizations with co-located I/O hogs."""
    sweep = microbench_sweep("io", n_vms, duration=duration, seed=seed)
    vm = sweep.series("vm0", "io")
    pm = sweep.series("pm", "io")
    dom0 = sweep.series("dom0", "io")
    # "The I/O utilization of the PM is more than twice of the sum of
    # the utilizations of its guest VMs."
    ratio = (pm[-1] - 18.8) / (n_vms * vm[-1])
    checks = [
        approx_check("PM I/O ~ 2x sum of VM I/O", ratio, 2.05, abs_tol=0.15),
        bound_check("dom0 I/O is zero", max(dom0), below=1e-9),
    ]
    series = [
        Series("PM", list(sweep.levels), pm, "Input I/O workload (blocks/s)", "I/O utilization (blocks/s)"),
        Series("VM", list(sweep.levels), vm, "Input I/O workload (blocks/s)", "I/O utilization (blocks/s)"),
        Series("Dom0", list(sweep.levels), dom0, "Input I/O workload (blocks/s)", "I/O utilization (blocks/s)"),
    ]
    return ExperimentResult(
        experiment_id=_figure_id(n_vms, "b"),
        title=f"I/O utilizations for I/O-intensive workload ({n_vms} VMs)",
        series=series,
        checks=checks,
    )


def run_io_cpu_subfig(
    n_vms: int, *, duration: float = PAPER_DURATION_S, seed: int = 42
) -> ExperimentResult:
    """Fig. 3(c) / 4(c): CPU utilizations stay stable under I/O load."""
    sweep = microbench_sweep("io", n_vms, duration=duration, seed=seed)
    dom0 = sweep.series("dom0", "cpu")
    hyp = sweep.series("hyp", "cpu")
    checks = [
        approx_check(
            "dom0 ~17.4% (small colocation lift)", dom0[-1], 17.4, abs_tol=0.7
        ),
        bound_check("dom0 CPU stable", max(dom0) - min(dom0), below=1.0),
        bound_check("hyp CPU stable", max(hyp) - min(hyp), below=0.8),
    ]
    return ExperimentResult(
        experiment_id=_figure_id(n_vms, "c"),
        title=f"CPU utilizations for I/O-intensive workload ({n_vms} VMs)",
        series=_cpu_series(sweep, "Input I/O workload (blocks/s)"),
        checks=checks,
    )


def run_bw_util_subfig(
    n_vms: int, *, duration: float = PAPER_DURATION_S, seed: int = 42
) -> ExperimentResult:
    """Fig. 3(d) / 4(d): BW utilizations; ~3% PM overhead on the sum."""
    sweep = microbench_sweep("bw", n_vms, duration=duration, seed=seed)
    vm = sweep.series("vm0", "bw")
    pm = sweep.series("pm", "bw")
    dom0 = sweep.series("dom0", "bw")
    vm_sum = n_vms * vm[-1]
    overhead_frac = (pm[-1] - vm_sum) / pm[-1]
    checks = [
        bound_check("dom0 BW is zero", max(dom0), below=1e-9),
        bound_check(
            "PM BW overhead ~3% of guest sum",
            overhead_frac,
            below=0.05,
            above=0.005,
        ),
    ]
    series = [
        Series("PM", list(sweep.levels), pm, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
        Series("VM", list(sweep.levels), vm, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
        Series("Dom0", list(sweep.levels), dom0, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
    ]
    return ExperimentResult(
        experiment_id=_figure_id(n_vms, "d"),
        title=f"BW utilizations for BW-intensive workload ({n_vms} VMs)",
        series=series,
        checks=checks,
    )


def run_bw_cpu_subfig(
    n_vms: int, *, duration: float = PAPER_DURATION_S, seed: int = 42
) -> ExperimentResult:
    """Fig. 3(e) / 4(e): Dom0/hypervisor CPU vs co-located BW load."""
    sweep = microbench_sweep("bw", n_vms, duration=duration, seed=seed)
    dom0 = sweep.series("dom0", "cpu")
    hyp = sweep.series("hyp", "cpu")
    # Per-VM intensity in Kb/s; aggregate = N x per-VM, so the slope
    # over per-VM Kb/s is N x 0.01 (the paper: Fig 4(e)'s Dom0 slope is
    # twice Fig 3(e)'s).
    kbps = [lv * 1000.0 for lv in sweep.levels]
    dom0_slope = fit_slope(kbps, dom0) / n_vms
    hyp_slope = fit_slope(kbps, hyp) / n_vms
    endpoint = {2: 41.8, 4: 67.1}[n_vms]
    hyp_endpoint = {2: 4.0, 4: 6.3}[n_vms]
    checks = [
        approx_check(
            "dom0 slope 0.01 per aggregate Kb/s",
            dom0_slope,
            0.01,
            abs_tol=0.002,
        ),
        approx_check(
            f"dom0 endpoint ~{endpoint}%", dom0[-1], endpoint, abs_tol=2.5
        ),
        approx_check(
            "hyp slope ~0.0005 per aggregate Kb/s",
            hyp_slope,
            0.00055,
            abs_tol=0.0002,
        ),
        approx_check(
            f"hyp endpoint ~{hyp_endpoint}%",
            hyp[-1],
            hyp_endpoint,
            abs_tol=1.2,
        ),
    ]
    return ExperimentResult(
        experiment_id=_figure_id(n_vms, "e"),
        title=f"CPU utilizations for BW-intensive workload ({n_vms} VMs)",
        series=_cpu_series(sweep, "Input BW workload (Mb/s)"),
        checks=checks,
    )


def run_fig3(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> list[ExperimentResult]:
    """All five Figure 3 subfigures (2 co-located VMs)."""
    return [
        run_cpu_subfig(2, duration=duration, seed=seed),
        run_io_util_subfig(2, duration=duration, seed=seed),
        run_io_cpu_subfig(2, duration=duration, seed=seed),
        run_bw_util_subfig(2, duration=duration, seed=seed),
        run_bw_cpu_subfig(2, duration=duration, seed=seed),
    ]


def run_fig4(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> list[ExperimentResult]:
    """All five Figure 4 subfigures (4 co-located VMs)."""
    return [
        run_cpu_subfig(4, duration=duration, seed=seed),
        run_io_util_subfig(4, duration=duration, seed=seed),
        run_io_cpu_subfig(4, duration=duration, seed=seed),
        run_bw_util_subfig(4, duration=duration, seed=seed),
        run_bw_cpu_subfig(4, duration=duration, seed=seed),
    ]
