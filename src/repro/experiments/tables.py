"""Tables I-III of the paper, regenerated from the library's own data.

The point of regenerating tables from code (rather than pasting text) is
consistency: Table I comes from the monitor's capability matrix, Table
II from the workload suite's grids, and Table III from the metric
definitions the experiments actually evaluate.  If the code drifts from
the paper, the table checks fail.
"""

from __future__ import annotations

from repro.experiments.base import Check, ExperimentResult
from repro.monitor.tools import SCOPE_DOM0, SCOPE_PM, SCOPE_VM, TABLE_I, render_table_i
from repro.workloads.suite import TABLE_II


def run_table1() -> ExperimentResult:
    """Table I: features of the measurement tools."""
    text = render_table_i()
    checks = [
        Check(
            "five tools present",
            set(TABLE_I) == {"xentop", "top", "mpstat", "ifconfig", "vmstat"},
        ),
        Check(
            "xentop covers VM cpu/io/bw but not mem",
            TABLE_I["xentop"][(SCOPE_VM, "cpu")].supported
            and TABLE_I["xentop"][(SCOPE_VM, "io")].supported
            and TABLE_I["xentop"][(SCOPE_VM, "bw")].supported
            and not TABLE_I["xentop"][(SCOPE_VM, "mem")].supported,
        ),
        Check(
            "only mpstat sees hypervisor CPU",
            [
                t
                for t, caps in TABLE_I.items()
                if caps[(SCOPE_PM, "cpu")].supported and caps[(SCOPE_PM, "cpu")].in_script
            ]
            == ["mpstat"],
        ),
        Check(
            "no tool covers everything",
            all(
                any(not c.supported for c in caps.values())
                for caps in TABLE_I.values()
            ),
        ),
        Check(
            "dom0 memory comes from top",
            TABLE_I["top"][(SCOPE_DOM0, "mem")].in_script,
        ),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Features of measurement tools",
        text=text,
        checks=checks,
    )


def run_table2() -> ExperimentResult:
    """Table II: generated benchmarks and their intensity grids."""
    lines = ["Workload           | intensity levels"]
    for spec in TABLE_II.values():
        levels = " ".join(f"{lv:g}" for lv in spec.levels)
        lines.append(f"{spec.label:<18} ({spec.units}) | {levels}")
    expected = {
        "cpu": (1.0, 30.0, 60.0, 90.0, 99.0),
        "mem": (0.03, 5.0, 10.0, 20.0, 50.0),
        "io": (15.0, 19.0, 27.0, 46.0, 72.0),
        "bw": (0.001, 0.16, 0.32, 0.64, 1.28),
    }
    checks = [
        Check(
            f"{kind} grid matches the paper",
            TABLE_II[kind].levels == levels,
            detail=str(TABLE_II[kind].levels),
        )
        for kind, levels in expected.items()
    ]
    checks.append(
        Check("five levels per workload", all(len(s.levels) == 5 for s in TABLE_II.values()))
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Generated benchmarks for measurement study",
        text="\n".join(lines),
        checks=checks,
    )


def run_table3() -> ExperimentResult:
    """Table III: definitions of utilization overhead.

    The definitions are reproduced with the workloads whose overhead the
    paper marks as significant; the measurement experiments (Figures
    2-5) evaluate exactly these quantities.
    """
    rows = [
        ("CPU", "|Dom0| + |hypervisor|", ("CPU", "BW")),
        ("I/O", "|sum(VM_io) - PM_io|", ("I/O",)),
        ("BW", "|sum(VM_bw) - PM_bw|", ("BW",)),
        ("MEM", "|sum(VM_mem) - PM_mem|", ("MEM",)),
    ]
    lines = ["Metric | overhead definition        | intensity workloads"]
    for metric, definition, workloads in rows:
        lines.append(f"{metric:<6} | {definition:<26} | {', '.join(workloads)}")
    checks = [
        Check(
            "CPU overhead attributed to Dom0 + hypervisor",
            rows[0][1] == "|Dom0| + |hypervisor|",
        ),
        Check(
            "CPU overhead marked for CPU and BW workloads",
            rows[0][2] == ("CPU", "BW"),
        ),
        Check(
            "I/O, BW, MEM overheads are sum-vs-PM deltas",
            all("sum(VM" in r[1] for r in rows[1:]),
        ),
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="Definition of utilization overhead",
        text="\n".join(lines),
        checks=checks,
    )
