"""Fleet-scale VOA vs VOU: the Figure 10 comparison at datacenter size.

The paper's placement experiment stops at 2 PMs and 5 VMs; this one
runs the same strategies over a sharded fleet simulator
(:mod:`repro.cluster.fleet`) with 1000+ PMs, 10^4+ VMs and an
open-loop population of 10^5+ emulated clients:

* **fleeta** -- fleet throughput over time: the open-loop offered load
  and what each strategy's packing actually serves.  VOU packs guests
  against nominal hardware, so Dom0/hypervisor cycles it never
  budgeted for overload its PMs and requests are lost; VOA's packing
  absorbs the same load.
* **fleetb** -- placement churn and overload: overloaded PM-ticks and
  reactive migrations per epoch.  VOU pays for its packing with
  migration churn that takes most of the run to undo; VOA needs
  (almost) none.

Trials fan out as :class:`~repro.perf.cells.FleetCell`\\ s through
``run_cells``' incremental-consume mode: each trial's bounded summary
is folded into per-strategy accumulators and released, so a fleet
sweep's memory stays flat no matter how many trials ride along.  All
series and checks are built from the summary's *invariant* fields, so
the rendered artifacts are byte-identical at any ``--shards`` value
and for serial-vs-``--jobs`` runs alike.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.base import (
    Check,
    ExperimentResult,
    Series,
    bound_check,
)
from repro.cluster.fleet import FleetConfig
from repro.perf.cells import FleetCell
from repro.perf.executor import run_cells
from repro.placement.placer import VOA, VOU

#: Default scale: the ROADMAP's datacenter-scale floor.
DEFAULT_PMS = 1000
DEFAULT_VMS = 10_000
DEFAULT_CLIENTS = 100_000
DEFAULT_DURATION_S = 300.0
DEFAULT_EPOCH_S = 10.0
DEFAULT_TRIALS = 2


class _StrategyAccumulator:
    """Streaming per-strategy aggregates over fleet trials."""

    def __init__(self) -> None:
        self.trials = 0
        self.served_fraction_sum = 0.0
        self.migrations = 0
        self.migrations_rejected = 0
        self.overloaded_pm_ticks = 0
        self.hotspots = 0
        self.pms_used = 0
        self.placed_forced = 0
        self.events = 0
        #: Epoch series of the first trial (the figure's time axis).
        self.epoch_time: List[float] = []
        self.epoch_offered: List[float] = []
        self.epoch_served: List[float] = []
        self.epoch_overloaded: List[int] = []
        self.epoch_migrations: List[int] = []

    def fold(self, summary: Dict[str, Any]) -> None:
        if self.trials == 0:
            self.epoch_time = list(summary["epoch_time"])
            self.epoch_offered = list(summary["epoch_offered"])
            self.epoch_served = list(summary["epoch_served"])
            self.epoch_overloaded = list(summary["epoch_overloaded"])
            self.epoch_migrations = list(summary["epoch_migrations"])
            self.pms_used = int(summary["pms_used"])
            self.placed_forced = int(summary["placed_forced"])
        self.trials += 1
        self.served_fraction_sum += float(summary["served_fraction"])
        self.migrations += int(summary["migrations"])
        self.migrations_rejected += int(summary["migrations_rejected"])
        self.overloaded_pm_ticks += int(summary["overloaded_pm_ticks"])
        self.hotspots += int(summary["hotspots"])
        self.events += int(summary["events"])

    @property
    def served_fraction(self) -> float:
        return self.served_fraction_sum / max(1, self.trials)


def _epoch_rate(served: List[float], times: List[float]) -> List[float]:
    """Per-epoch served request rate (req/s) from per-epoch totals."""
    rates = []
    prev = 0.0
    for total, t in zip(served, times):
        span = t - prev
        rates.append(total / span if span > 0 else 0.0)
        prev = t
    return rates


def run_fleet_experiment(
    *,
    pms: int = DEFAULT_PMS,
    vms: int = DEFAULT_VMS,
    clients: int = DEFAULT_CLIENTS,
    duration_s: float = DEFAULT_DURATION_S,
    epoch_s: float = DEFAULT_EPOCH_S,
    shards: int = 1,
    trials: int = DEFAULT_TRIALS,
    seed: int = 2015,
    ramp_s: float | None = None,
    max_migrations_per_epoch: int = 50,
) -> List[ExperimentResult]:
    """Both fleet panels from one streamed (strategy x trial) sweep."""
    if ramp_s is None:
        ramp_s = duration_s / 3.0
    if trials < 1:
        raise ValueError("trials must be >= 1")
    # Validate the scale eagerly (FleetConfig's own checks) so a bad
    # CLI value is a usage error, not a permanently-failed fan-out.
    FleetConfig(
        pms=pms, vms=vms, clients=clients, duration_s=duration_s,
        epoch_s=epoch_s, shards=shards, seed=seed, ramp_s=ramp_s,
        max_migrations_per_epoch=max_migrations_per_epoch,
    )
    cells = [
        FleetCell(
            pms=pms,
            vms=vms,
            clients=clients,
            duration_s=duration_s,
            epoch_s=epoch_s,
            shards=shards,
            strategy=strategy,
            seed=seed + trial,
            ramp_s=ramp_s,
            max_migrations_per_epoch=max_migrations_per_epoch,
        )
        for strategy in (VOA, VOU)
        for trial in range(trials)
    ]
    acc = {VOA: _StrategyAccumulator(), VOU: _StrategyAccumulator()}

    def fold(index: int, value: Dict[str, Any]) -> None:
        acc[cells[index].strategy].fold(value)

    run_cells(cells, phase="fleet", consume=fold)
    voa, vou = acc[VOA], acc[VOU]

    scale_note = (
        f"{pms} PMs, {vms} VMs, {clients} open-loop clients, "
        f"{duration_s:g}s, {trials} trial(s)"
    )
    times = voa.epoch_time
    fleeta = ExperimentResult(
        experiment_id="fleeta",
        title="Fleet throughput: VOA vs VOU at datacenter scale",
        series=[
            Series(
                "offered", times, _epoch_rate(voa.epoch_offered, times),
                "Time (s)", "Request rate (req/s)",
            ),
            Series(
                "VOA served", times, _epoch_rate(voa.epoch_served, times),
                "Time (s)", "Request rate (req/s)",
            ),
            Series(
                "VOU served", times, _epoch_rate(vou.epoch_served, times),
                "Time (s)", "Request rate (req/s)",
            ),
        ],
        checks=[
            bound_check(
                "VOA serves the offered load",
                voa.served_fraction, above=0.99,
            ),
            bound_check(
                "VOU loses throughput to overhead-blind packing",
                vou.served_fraction, below=voa.served_fraction - 0.05,
            ),
            bound_check(
                "VOA uses more PMs than VOU (spread vs pack)",
                float(voa.pms_used), above=float(vou.pms_used) + 1.0,
            ),
        ],
        notes=scale_note,
    )
    fleetb = ExperimentResult(
        experiment_id="fleetb",
        title="Placement churn and overload: VOA vs VOU",
        series=[
            Series(
                "VOA overloaded PM-ticks", times,
                [float(v) for v in voa.epoch_overloaded],
                "Time (s)", "Overloaded PM-ticks / epoch",
            ),
            Series(
                "VOU overloaded PM-ticks", times,
                [float(v) for v in vou.epoch_overloaded],
                "Time (s)", "Overloaded PM-ticks / epoch",
            ),
            Series(
                "VOA migrations", times,
                [float(v) for v in voa.epoch_migrations],
                "Time (s)", "Migrations / epoch",
            ),
            Series(
                "VOU migrations", times,
                [float(v) for v in vou.epoch_migrations],
                "Time (s)", "Migrations / epoch",
            ),
        ],
        checks=[
            Check(
                "VOU pays with migration churn",
                vou.migrations > voa.migrations and vou.migrations > 0,
                f"VOU={vou.migrations} VOA={voa.migrations}",
            ),
            Check(
                "VOU overloads dominate",
                vou.overloaded_pm_ticks > voa.overloaded_pm_ticks,
                f"VOU={vou.overloaded_pm_ticks} "
                f"VOA={voa.overloaded_pm_ticks}",
            ),
            bound_check(
                "VOA avoids hotspot churn",
                float(voa.hotspots),
                below=max(1.0, 0.05 * max(1, vou.hotspots)),
            ),
        ],
        text=(
            f"VOA: served={voa.served_fraction:.4f} "
            f"pms_used={voa.pms_used} forced={voa.placed_forced} "
            f"migrations={voa.migrations} hotspots={voa.hotspots}\n"
            f"VOU: served={vou.served_fraction:.4f} "
            f"pms_used={vou.pms_used} forced={vou.placed_forced} "
            f"migrations={vou.migrations} hotspots={vou.hotspots} "
            f"rejected={vou.migrations_rejected}"
        ),
        notes=scale_note,
    )
    return [fleeta, fleetb]
