"""Experiment registry: every paper artifact by id.

``run("fig2a")`` reproduces one subfigure; ``run_group("fig2")`` a whole
figure; :data:`ALL_IDS` enumerates the reproduction surface.  ``fast``
mode shrinks durations/trials for smoke tests; the benchmark suite runs
everything at paper scale.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.experiments import (
    chaos,
    extras,
    fig2,
    fig5,
    fig6,
    fig10,
    fig34,
    fig789,
    tables,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.prediction import trained_models

#: Group id -> callable returning a list of ExperimentResult.
_GROUPS: Dict[str, Callable[..., List[ExperimentResult]]] = {}


def _register(group_id: str, fn: Callable[..., List[ExperimentResult]]) -> None:
    _GROUPS[group_id] = fn


def _fast_kwargs(group_id: str, fast: bool) -> dict:
    if not fast:
        return {}
    if group_id in (
        "fig2", "fig3", "fig4", "fig5", "fig6", "memconst", "toolover",
        "pmconsist",
    ):
        return {"duration": 12.0}
    if group_id in ("fig7", "fig8", "fig9"):
        single, multi = trained_models(duration=20.0)
        return {
            "single_model": single,
            "multi_model": multi,
            "client_counts": (300, 700),
            "duration": 60.0,
        }
    if group_id == "fig10":
        _, multi = trained_models(duration=20.0)
        return {
            "model": multi,
            "trials": 3,
            "duration_s": 40.0,
            "profile_s": 25.0,
        }
    if group_id == "chaos":
        _, multi = trained_models(duration=20.0)
        return {
            "duration": 15.0,
            "kinds": ("cpu", "bw"),
            "levels": ((0.0, 0.0), (0.05, 0.02), (0.10, 0.05)),
            "model": multi,
            "duration_s": 60.0,
        }
    return {}


_register("table1", lambda **kw: [tables.run_table1()])
_register("table2", lambda **kw: [tables.run_table2()])
_register("table3", lambda **kw: [tables.run_table3()])
_register("fig2", fig2.run_fig2)
_register("fig3", fig34.run_fig3)
_register("fig4", fig34.run_fig4)
_register("fig5", fig5.run_fig5)
_register("fig6", lambda **kw: [fig6.run_fig6(**kw)])
_register("fig7", fig789.run_fig7)
_register("fig8", fig789.run_fig8)
_register("fig9", fig789.run_fig9)
_register("fig10", fig10.run_fig10)
_register("memconst", lambda **kw: [extras.run_memconst(**kw)])
_register("toolover", lambda **kw: [extras.run_toolover(**kw)])
_register("pmconsist", lambda **kw: [extras.run_pmconsist(**kw)])
_register("purity", lambda **kw: [extras.run_purity(**kw)])
_register("chaos", chaos.run_chaos)

#: Every group id, in paper order.
GROUP_IDS: List[str] = list(_GROUPS)

#: Every individual artifact id (subfigures included).
ALL_IDS: List[str] = (
    ["table1", "table2", "table3"]
    + [f"fig2{s}" for s in "abcde"]
    + [f"fig3{s}" for s in "abcde"]
    + [f"fig4{s}" for s in "abcde"]
    + [f"fig5{s}" for s in "ab"]
    + ["fig6"]
    + [f"fig7{s}" for s in "abcd"]
    + [f"fig8{s}" for s in "abcd"]
    + [f"fig9{s}" for s in "abcd"]
    + [f"fig10{s}" for s in "ab"]
    + ["memconst", "toolover", "pmconsist", "purity"]
    + ["chaosa", "chaosb"]
)


def run_group(group_id: str, *, fast: bool = False) -> List[ExperimentResult]:
    """Run every artifact of one figure/table group."""
    if group_id not in _GROUPS:
        raise KeyError(
            f"unknown experiment group {group_id!r}; have {GROUP_IDS}"
        )
    return _GROUPS[group_id](**_fast_kwargs(group_id, fast))


def run(experiment_id: str, *, fast: bool = False) -> ExperimentResult:
    """Run one artifact by id (e.g. ``fig3c``)."""
    if experiment_id in _GROUPS:
        results = run_group(experiment_id, fast=fast)
        if len(results) == 1:
            return results[0]
        raise KeyError(
            f"{experiment_id!r} is a group of {len(results)} artifacts; "
            "use run_group, or pick one subfigure"
        )
    group = experiment_id.rstrip("abcde")
    if group not in _GROUPS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; have {ALL_IDS}"
        )
    for result in run_group(group, fast=fast):
        if result.experiment_id == experiment_id:
            return result
    raise KeyError(f"group {group!r} produced no artifact {experiment_id!r}")


def run_all(
    *, fast: bool = False, groups: Sequence[str] = ()
) -> List[ExperimentResult]:
    """Run the full reproduction (or a subset of groups)."""
    out: List[ExperimentResult] = []
    for gid in groups or GROUP_IDS:
        out.extend(run_group(gid, fast=fast))
    return out
