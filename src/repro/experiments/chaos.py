"""Chaos experiments: graceful degradation under injected faults.

Two artifacts beyond the paper's figures, exercising the robustness
subsystems end to end:

``chaosa`` -- *model degradation sweep*.  Re-runs the Section V training
sweep while the monitor suffers dropout bursts and outlier corruption at
increasing rates, refits the Eq. (3) model with the auto (OLS -> LMS)
engine, and evaluates each model against a clean held-out sweep.  The
curve shows how prediction error grows with fault intensity; the checks
assert it grows *gracefully* (bounded at the 5 % dropout / 2 % outlier
operating point from the issue's acceptance criteria).

``chaosb`` -- *placement resilience run*.  An overloaded PM in a small
cluster is relieved by the :class:`ResilientControlLoop` while a
:class:`FaultInjector` crashes PMs, stalls guests and degrades NICs,
and live migrations themselves fail mid-flight 30 % of the time.  The
checks assert the control loop's bookkeeping stays closed (every
submitted move lands, is abandoned, or is still queued), that rollback
and retry paths actually fired, and that no guest was lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.experiments.base import Check, ExperimentResult, Series, bound_check
from repro.experiments.prediction import trained_models
from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector
from repro.models.multi_vm import MultiVMOverheadModel
from repro.models.training import TrainingConfig, gather_training_samples
from repro.models.validation import fit_quality
from repro.placement.migration import HotspotDetector, MigrationPlanner
from repro.placement.resilient import (
    MigrationExecutor,
    PmCircuitBreaker,
    ResilientControlLoop,
    RetryPolicy,
)
from repro.sim.engine import Simulator
from repro.workloads.suite import make_benchmark
from repro.xen.specs import VMSpec

#: (dropout probability, outlier probability) sweep, mild to harsh.
#: The third level is the issue's acceptance operating point.
DEFAULT_LEVELS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (0.02, 0.01),
    (0.05, 0.02),
    (0.10, 0.05),
)

#: Targets whose RMSE the degradation curve reports.
_CURVE_TARGETS = ("dom0.cpu", "hyp.cpu")


def run_chaosa(
    *,
    levels: Sequence[Tuple[float, float]] = DEFAULT_LEVELS,
    duration: float = 60.0,
    kinds: Tuple[str, ...] = ("cpu", "bw", "io"),
    vm_counts: Tuple[int, ...] = (1, 2),
    seed: int = 2015,
    eval_seed: int = 4051,
) -> ExperimentResult:
    """Model-degradation sweep over monitor fault intensities."""
    if not levels:
        raise ValueError("levels must be non-empty")
    clean_eval = gather_training_samples(
        TrainingConfig(
            kinds=kinds, vm_counts=vm_counts, duration=duration,
            seed=eval_seed,
        )
    )
    rmse: Dict[str, List[float]] = {t: [] for t in _CURVE_TARGETS}
    retention: List[float] = []
    clean_n: Optional[int] = None
    for dropout, outliers in levels:
        faults = (
            FaultConfig.sampling_only(dropout=dropout, outliers=outliers)
            if (dropout or outliers)
            else None
        )
        samples = gather_training_samples(
            TrainingConfig(
                kinds=kinds, vm_counts=vm_counts, duration=duration,
                seed=seed, faults=faults, drop_invalid=True,
            )
        )
        if clean_n is None:
            clean_n = len(samples)
        retention.append(len(samples) / clean_n)
        model = MultiVMOverheadModel.fit(samples, method="auto")
        quality = fit_quality(model, clean_eval)
        for t in _CURVE_TARGETS:
            rmse[t].append(quality[t].rmse)

    xs = [d for d, _o in levels]
    series = [
        Series(
            label=f"{t} RMSE vs clean holdout",
            x=list(xs),
            y=rmse[t],
            x_label="monitor dropout probability",
            y_label="RMSE (pp)",
        )
        for t in _CURVE_TARGETS
    ] + [
        Series(
            label="training-sample retention",
            x=list(xs),
            y=retention,
            x_label="monitor dropout probability",
            y_label="kept fraction",
        )
    ]

    checks = [
        bound_check(
            "clean baseline dom0 RMSE small",
            rmse["dom0.cpu"][0],
            below=2.5,
        ),
    ]
    # Graceful degradation at the issue's acceptance operating point
    # (5 % dropout + 2 % outliers), when the sweep includes it: the
    # refit model must stay within a bounded distance of the clean fit.
    for i, (dropout, outliers) in enumerate(levels):
        if (dropout, outliers) == (0.05, 0.02):
            checks.append(
                bound_check(
                    "bounded error at 5% dropout + 2% outliers",
                    rmse["dom0.cpu"][i],
                    below=max(3.0 * rmse["dom0.cpu"][0], 2.0),
                )
            )
    checks.append(
        bound_check(
            "worst-case degradation bounded",
            max(max(v) for v in rmse.values()),
            below=5.0,
        )
    )
    checks.append(
        bound_check(
            "dropout actually removed samples",
            min(retention),
            below=1.0 - 0.5 * max(d for d, _ in levels),
            above=0.3,
        )
    )
    return ExperimentResult(
        experiment_id="chaosa",
        title="Model degradation under monitor faults (dropout + outliers)",
        series=series,
        checks=checks,
        notes=(
            "Each level retrains Eq. (3) with method='auto' (OLS with "
            "LMS fallback) on fault-injected sweeps and scores it on a "
            "clean held-out sweep."
        ),
    )


#: Fault intensity of the chaosb scenario (also pinned into plans).
CHAOSB_FAULTS = FaultConfig(
    pm_crash_rate=1.0 / 80.0,
    pm_reboot_s=10.0,
    vm_stall_rate=1.0 / 120.0,
    vm_stall_s=4.0,
    nic_degrade_rate=1.0 / 60.0,
    nic_degrade_s=8.0,
)


def run_chaosb(
    *,
    model: Optional[MultiVMOverheadModel] = None,
    duration_s: float = 120.0,
    placement_seed: int = 2023,
    migration_failure_prob: float = 0.3,
    train_duration: float = 40.0,
    plan: Optional["FaultPlan"] = None,
    capture: Optional[Dict[str, object]] = None,
) -> ExperimentResult:
    """Placement resilience under PM/VM/NIC faults + flaky migrations.

    ``plan`` replays a previously captured chaosb scenario: its pinned
    seed, horizon, fault config and *concrete* event schedule override
    the keyword knobs, so the rerun is bit-identical (the explicit
    schedule skips every ``faults.*`` stream draw, and stream
    independence keeps all other randomness untouched).  ``capture``,
    when given a dict, receives the scenario as a replayable
    ``FaultPlan`` under key ``"plan"`` (the ``--plan-out`` path).
    """
    from repro.faults.plan import DRIVER_CHAOSB, FaultPlan, PlacementPlan

    config = CHAOSB_FAULTS
    schedule = None
    if plan is not None:
        if plan.placement is None:
            raise ValueError("chaosb replay needs a placement section")
        pp = plan.placement
        placement_seed = pp.seed
        duration_s = pp.duration_s
        migration_failure_prob = pp.migration_failure_prob
        train_duration = pp.train_duration
        config = pp.config
        schedule = list(pp.events)
    if model is None:
        _single, model = trained_models(duration=train_duration)

    sim = Simulator(seed=placement_seed)
    cluster = Cluster(sim)
    for name in ("pm1", "pm2", "pm3"):
        cluster.create_pm(name)
    # pm1 starts overloaded: four hot guests; pm2/pm3 nearly idle.
    for i in range(4):
        vm = cluster.place_vm(VMSpec(name=f"hot{i}", mem_mb=256), "pm1")
        make_benchmark("cpu", 95.0).attach(vm)
    for i, pm_name in enumerate(("pm2", "pm3")):
        vm = cluster.place_vm(VMSpec(name=f"bg{i}", mem_mb=256), pm_name)
        make_benchmark("cpu", 10.0).attach(vm)
    n_guests = sum(len(pm.vms) for pm in cluster.pms.values())
    cluster.start()

    injector = FaultInjector(
        cluster, config, horizon=duration_s, schedule=schedule,
    )
    injector.arm()
    if capture is not None:
        capture["plan"] = FaultPlan(
            seed=placement_seed,
            driver=DRIVER_CHAOSB,
            placement=PlacementPlan(
                seed=placement_seed,
                duration_s=duration_s,
                train_duration=train_duration,
                migration_failure_prob=migration_failure_prob,
                pm_count=3,
                hot_vms=4,
                bg_vms=2,
                config=config,
                events=tuple(injector.schedule),
            ),
        )

    executor = MigrationExecutor(
        cluster,
        policy=RetryPolicy(max_attempts=4, backoff_s=2.0),
        breaker=PmCircuitBreaker(failure_threshold=3, cooldown_s=20.0),
        failure_prob=migration_failure_prob,
    )
    loop = ResilientControlLoop(
        cluster,
        model,
        interval=2.0,
        detector=HotspotDetector(model, k=2, n=4, threshold_frac=0.6),
        planner=MigrationPlanner(model, target_frac=0.6),
        executor=executor,
    )
    loop.start()
    sim.run_until(duration_s)

    stats = executor.stats
    ok_times = [a.time for a in executor.log if a.ok]
    series = [
        Series(
            label="cumulative successful migrations",
            x=ok_times or [0.0],
            y=list(range(1, len(ok_times) + 1)) or [0.0],
            x_label="time (s)",
            y_label="migrations landed",
        ),
        Series(
            label="attempt outcomes",
            x=[0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            y=[
                float(stats.submitted),
                float(stats.succeeded),
                float(stats.rollbacks),
                float(stats.retries),
                float(stats.abandoned),
                float(stats.vetoed),
            ],
            x_label=(
                "0=submitted 1=succeeded 2=rollbacks 3=retries "
                "4=abandoned 5=vetoed"
            ),
            y_label="count",
        ),
    ]
    guests_now = sum(len(pm.vms) for pm in cluster.pms.values())
    accounted = stats.succeeded + stats.abandoned + executor.pending
    checks = [
        Check(
            "no guest lost or duplicated",
            guests_now == n_guests,
            f"{guests_now}/{n_guests} guests",
        ),
        Check(
            "move accounting closed",
            accounted == stats.submitted,
            f"succeeded+abandoned+pending={accounted} "
            f"submitted={stats.submitted}",
        ),
        bound_check(
            "migrations landed despite faults",
            float(stats.succeeded),
            above=1.0,
        ),
        bound_check(
            "mid-flight rollback exercised",
            float(stats.rollbacks),
            above=1.0,
        ),
        bound_check(
            "retry path exercised", float(stats.retries), above=1.0
        ),
        Check(
            "faults actually fired",
            bool(injector.applied),
            f"{len(injector.applied)} fault events applied "
            f"({injector.applied_by_kind()})",
        ),
        Check(
            "loop survived PM outages",
            loop.rounds >= int(duration_s / loop.interval) - 1,
            f"{loop.rounds} control rounds, "
            f"{loop.missing_observations} missing observations",
        ),
    ]
    return ExperimentResult(
        experiment_id="chaosb",
        title="Resilient placement loop under injected faults",
        series=series,
        checks=checks,
        notes=(
            f"{migration_failure_prob:.0%} of migrations abort mid-flight "
            "and roll back; PM crashes, VM stalls and NIC degradation "
            "are injected from the fault schedule."
        ),
    )


def run_chaos(**kwargs) -> List[ExperimentResult]:
    """The chaos group: degradation sweep + resilience run."""
    a_keys = {
        "levels", "duration", "kinds", "vm_counts", "seed", "eval_seed",
    }
    b_keys = {
        "model", "duration_s", "placement_seed", "migration_failure_prob",
        "train_duration", "plan", "capture",
    }
    a_kw = {k: v for k, v in kwargs.items() if k in a_keys}
    b_kw = {k: v for k, v in kwargs.items() if k in b_keys}
    unknown = set(kwargs) - a_keys - b_keys
    if unknown:
        raise TypeError(f"unknown chaos arguments: {sorted(unknown)}")
    return [run_chaosa(**a_kw), run_chaosb(**b_kw)]
