"""Figure 2: resource utilizations for one VM.

Five subfigures, all from single-VM micro-benchmark sweeps:

* (a) CPU utilizations (VM, Dom0, hypervisor) vs CPU workload;
* (b) I/O utilizations (VM, Dom0, PM) vs I/O workload;
* (c) CPU utilizations vs I/O workload;
* (d) BW utilizations (VM, Dom0, PM) vs BW workload;
* (e) CPU utilizations vs BW workload.

Shape criteria come from the paper's Section IV-A summary: Dom0 and
hypervisor CPU baselines and convex growth, PM I/O ~ 2x VM I/O, zero
Dom0 I/O and BW, constant 0.01 Dom0-CPU slope under BW load, and the
near-zero PM bandwidth overhead.
"""

from __future__ import annotations

from repro.analysis.rates import fit_slope, summarize_rates
from repro.experiments.base import (
    Check,
    ExperimentResult,
    Series,
    approx_check,
    bound_check,
)
from repro.experiments.sweeps import PAPER_DURATION_S, microbench_sweep

#: Entities plotted per CPU-utilization subfigure.
CPU_ENTITIES = (("hyp", "Hypervisor"), ("vm0", "VM"), ("dom0", "Dom0"))


def _cpu_series(sweep, x_label: str) -> list[Series]:
    return [
        Series(
            label=label,
            x=list(sweep.levels),
            y=sweep.series(entity, "cpu"),
            x_label=x_label,
            y_label="CPU utilization (%)",
        )
        for entity, label in CPU_ENTITIES
    ]


def run_fig2a(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> ExperimentResult:
    """Fig. 2(a): CPU utilizations for a CPU-intensive single VM."""
    sweep = microbench_sweep("cpu", 1, duration=duration, seed=seed)
    dom0 = sweep.series("dom0", "cpu")
    hyp = sweep.series("hyp", "cpu")
    vm = sweep.series("vm0", "cpu")
    dom0_rates = summarize_rates(sweep.levels, dom0)
    hyp_rates = summarize_rates(sweep.levels, hyp)
    checks = [
        approx_check("dom0 baseline 16.8%", dom0[0], 16.8, abs_tol=0.5),
        approx_check("dom0 endpoint 29.5%", dom0[-1], 29.5, abs_tol=1.0),
        approx_check("hyp baseline 3.0%", hyp[0], 3.0, abs_tol=0.5),
        approx_check("hyp endpoint 14%", hyp[-1], 14.0, abs_tol=1.0),
        bound_check(
            "dom0 rate grows (0.01 -> ~0.3)",
            dom0_rates.final,
            above=3 * max(dom0_rates.initial, 1e-6),
        ),
        bound_check(
            "hyp rate grows (0.04 -> ~0.26)",
            hyp_rates.final,
            above=2 * max(hyp_rates.initial, 1e-6),
        ),
        approx_check("VM tracks input at 99%", vm[-1], 99.0, abs_tol=1.0),
    ]
    return ExperimentResult(
        experiment_id="fig2a",
        title="CPU utilizations for CPU-intensive workload (1 VM)",
        series=_cpu_series(sweep, "Input CPU workload (%)"),
        checks=checks,
    )


def run_fig2b(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> ExperimentResult:
    """Fig. 2(b): I/O utilizations for an I/O-intensive single VM."""
    sweep = microbench_sweep("io", 1, duration=duration, seed=seed)
    vm = sweep.series("vm0", "io")
    pm = sweep.series("pm", "io")
    dom0 = sweep.series("dom0", "io")
    ratio = (pm[-1] - 18.8) / vm[-1]
    checks = [
        approx_check("PM I/O ~ 2x VM I/O", ratio, 2.05, abs_tol=0.15),
        bound_check("dom0 I/O is zero", max(dom0), below=1e-9),
        approx_check(
            "VM I/O tracks input", vm[-1], sweep.levels[-1], abs_tol=2.0
        ),
    ]
    series = [
        Series("PM", list(sweep.levels), pm, "Input I/O workload (blocks/s)", "I/O utilization (blocks/s)"),
        Series("VM", list(sweep.levels), vm, "Input I/O workload (blocks/s)", "I/O utilization (blocks/s)"),
        Series("Dom0", list(sweep.levels), dom0, "Input I/O workload (blocks/s)", "I/O utilization (blocks/s)"),
    ]
    return ExperimentResult(
        experiment_id="fig2b",
        title="I/O utilizations for I/O-intensive workload (1 VM)",
        series=series,
        checks=checks,
    )


def run_fig2c(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> ExperimentResult:
    """Fig. 2(c): CPU utilizations stay flat under I/O load."""
    sweep = microbench_sweep("io", 1, duration=duration, seed=seed)
    dom0 = sweep.series("dom0", "cpu")
    hyp = sweep.series("hyp", "cpu")
    vm = sweep.series("vm0", "cpu")
    checks = [
        bound_check(
            "dom0 CPU stable (16 +/- 0.3 style)",
            max(dom0) - min(dom0),
            below=0.8,
        ),
        bound_check("hyp CPU stable", max(hyp) - min(hyp), below=0.5),
        approx_check("VM CPU flat at 0.84%", vm[-1], 0.84 + 0.3, abs_tol=0.5),
    ]
    return ExperimentResult(
        experiment_id="fig2c",
        title="CPU utilizations for I/O-intensive workload (1 VM)",
        series=_cpu_series(sweep, "Input I/O workload (blocks/s)"),
        checks=checks,
    )


def run_fig2d(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> ExperimentResult:
    """Fig. 2(d): BW utilizations for a BW-intensive single VM."""
    sweep = microbench_sweep("bw", 1, duration=duration, seed=seed)
    vm = sweep.series("vm0", "bw")
    pm = sweep.series("pm", "bw")
    dom0 = sweep.series("dom0", "bw")
    overhead_kbps = pm[-1] - vm[-1]
    checks = [
        bound_check("dom0 BW is zero", max(dom0), below=1e-9),
        approx_check(
            "VM BW tracks input (Kb/s)",
            vm[-1],
            sweep.levels[-1] * 1000.0,
            abs_tol=30.0,
        ),
        bound_check(
            "PM BW overhead negligible (~400 B/s)",
            overhead_kbps,
            below=15.0,
            above=0.0,
        ),
    ]
    series = [
        Series("PM", list(sweep.levels), pm, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
        Series("VM", list(sweep.levels), vm, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
        Series("Dom0", list(sweep.levels), dom0, "Input BW workload (Mb/s)", "BW utilization (Kb/s)"),
    ]
    return ExperimentResult(
        experiment_id="fig2d",
        title="BW utilizations for BW-intensive workload (1 VM)",
        series=series,
        checks=checks,
    )


def run_fig2e(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> ExperimentResult:
    """Fig. 2(e): CPU utilizations under BW load (Dom0 slope 0.01)."""
    sweep = microbench_sweep("bw", 1, duration=duration, seed=seed)
    dom0 = sweep.series("dom0", "cpu")
    hyp = sweep.series("hyp", "cpu")
    vm = sweep.series("vm0", "cpu")
    kbps_levels = [lv * 1000.0 for lv in sweep.levels]
    slope = fit_slope(kbps_levels, dom0)
    checks = [
        approx_check("dom0 slope 0.01 %/(Kb/s)", slope, 0.01, abs_tol=0.002),
        approx_check("dom0 endpoint ~30%", dom0[-1], 29.7, abs_tol=1.5),
        bound_check("VM CPU rises to ~3%", vm[-1], below=4.0, above=2.0),
        bound_check(
            "hyp CPU rises slightly (2.5 -> 3.5)",
            hyp[-1] - hyp[0],
            below=1.6,
            above=0.4,
        ),
    ]
    return ExperimentResult(
        experiment_id="fig2e",
        title="CPU utilizations for BW-intensive workload (1 VM)",
        series=_cpu_series(sweep, "Input BW workload (Mb/s)"),
        checks=checks,
    )


def run_fig2(*, duration: float = PAPER_DURATION_S, seed: int = 42) -> list[ExperimentResult]:
    """All five Figure 2 subfigures."""
    return [
        run_fig2a(duration=duration, seed=seed),
        run_fig2b(duration=duration, seed=seed),
        run_fig2c(duration=duration, seed=seed),
        run_fig2d(duration=duration, seed=seed),
        run_fig2e(duration=duration, seed=seed),
    ]
