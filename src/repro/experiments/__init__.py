"""Per-table / per-figure reproduction harness (DESIGN.md section 5)."""

from repro.experiments.base import (
    Check,
    ExperimentResult,
    Series,
    approx_check,
    bound_check,
)
from repro.experiments.sweeps import (
    FAST_DURATION_S,
    PAPER_DURATION_S,
    SweepResult,
    intra_pm_sweep,
    microbench_sweep,
)

__all__ = [
    "Check",
    "ExperimentResult",
    "FAST_DURATION_S",
    "PAPER_DURATION_S",
    "Series",
    "SweepResult",
    "approx_check",
    "bound_check",
    "intra_pm_sweep",
    "microbench_sweep",
]
