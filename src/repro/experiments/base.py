"""Experiment result containers and rendering.

Every paper artifact (table or figure) is reproduced by one function
that returns an :class:`ExperimentResult`: the data series the paper
plots, plus explicit *shape checks* -- the qualitative criteria from
DESIGN.md section 5 (who wins, by what factor, where plateaus sit).
The benchmark suite asserts the checks; the CLI renders the series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Check:
    """One shape criterion and its verdict."""

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f": {self.detail}" if self.detail else "")


@dataclass
class Series:
    """One plotted curve (or bar group): y over x."""

    label: str
    x: List[float]
    y: List[float]
    x_label: str = ""
    y_label: str = ""

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x ({len(self.x)}) and y "
                f"({len(self.y)}) lengths differ"
            )


@dataclass
class ExperimentResult:
    """Everything one table/figure reproduction produced."""

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    #: Free-form rendered body (used by the tables, which are not x/y).
    text: str = ""
    notes: str = ""

    @property
    def passed(self) -> bool:
        """True when every shape check holds."""
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> List[Check]:
        """The checks that did not hold."""
        return [c for c in self.checks if not c.passed]

    def check(self, name: str) -> Check:
        """Look a check up by name."""
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(f"no check named {name!r} in {self.experiment_id}")

    def render(self) -> str:
        """Human-readable report: series table + check verdicts."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.text:
            lines.append(self.text)
        for s in self.series:
            lines.append(f"-- {s.label} ({s.x_label} -> {s.y_label})")
            xs = "  ".join(f"{v:>10.4g}" for v in s.x)
            ys = "  ".join(f"{v:>10.4g}" for v in s.y)
            lines.append(f"   x: {xs}")
            lines.append(f"   y: {ys}")
        for c in self.checks:
            lines.append(c.render())
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def approx_check(
    name: str, actual: float, expected: float, *, abs_tol: float
) -> Check:
    """A |actual - expected| <= tol check with a readable detail line."""
    passed = abs(actual - expected) <= abs_tol
    return Check(
        name,
        passed,
        f"actual={actual:.3g}, expected={expected:.3g} +/- {abs_tol:.3g}",
    )


def bound_check(
    name: str, actual: float, *, below: Optional[float] = None,
    above: Optional[float] = None,
) -> Check:
    """An interval check (either bound optional)."""
    passed = True
    parts = [f"actual={actual:.4g}"]
    if below is not None:
        passed = passed and actual <= below
        parts.append(f"<= {below:.4g}")
    if above is not None:
        passed = passed and actual >= above
        parts.append(f">= {above:.4g}")
    return Check(name, passed, " ".join(parts))
