"""Shared machinery for the Figures 7-9 prediction experiments.

The paper deploys ``n`` RUBiS application pairs -- all web front-ends on
PM1, all database back-ends on PM2 -- loads each with 300..700 emulated
clients, records per-second VM utilizations, and compares the model's
PM-level predictions against the measured PM utilizations via the
relative-error CDF.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.models.evaluation import ErrorReport, error_report
from repro.models.multi_vm import MultiVMOverheadModel
from repro.models.samples import samples_from_report
from repro.models.single_vm import SingleVMOverheadModel
from repro.models.training import (
    TrainingConfig,
    train_multi_vm_model,
    train_single_vm_model,
)
from repro.monitor.script import MeasurementScript
from repro.rubis.app import RUBiSApplication
from repro.rubis.client import PAPER_CLIENT_COUNTS, ClientPopulation
from repro.sim.engine import Simulator
from repro.xen.specs import VMSpec

#: The paper records a 10-minute interval per client count.
PAPER_RUN_S = 600.0
#: Warm-up before sampling (ramp excluded from the paper's variable-rate
#: phase is still present; we only skip the scheduler fixed-point).
WARMUP_S = 3.0


@lru_cache(maxsize=4)
def trained_models(
    duration: float = 120.0, warmup: float = 3.0, seed: int = 2015
) -> Tuple[SingleVMOverheadModel, MultiVMOverheadModel]:
    """Train (and cache) the Eq. (2) and Eq. (3) models.

    The default arguments reproduce the paper's full training sweep;
    tests pass a shorter duration.
    """
    single = train_single_vm_model(
        TrainingConfig(vm_counts=(1,), duration=duration, warmup=warmup, seed=seed)
    )
    multi = train_multi_vm_model(
        TrainingConfig(
            vm_counts=(1, 2, 4), duration=duration, warmup=warmup, seed=seed
        )
    )
    return single, multi


@dataclass
class PredictionRun:
    """Error reports of one deployment size across client counts."""

    n_apps: int
    #: (pm_name, target, clients) -> error report; targets ``pm.cpu``
    #: and ``pm.bw``.
    reports: Dict[Tuple[str, str, int], ErrorReport]

    def report(self, pm: str, target: str, clients: int) -> ErrorReport:
        """One CDF curve of the figure."""
        return self.reports[(pm, target, clients)]

    def worst_p90(self, pm: str, target: str) -> float:
        """Max 90th-percentile error across client counts."""
        return max(
            rep.p90
            for (p, t, _c), rep in self.reports.items()
            if p == pm and t == target
        )

    def best_p90(self, pm: str, target: str) -> float:
        """Min 90th-percentile error across client counts."""
        return min(
            rep.p90
            for (p, t, _c), rep in self.reports.items()
            if p == pm and t == target
        )


def run_prediction_experiment(
    n_apps: int,
    single_model: SingleVMOverheadModel,
    multi_model: MultiVMOverheadModel,
    *,
    client_counts: Sequence[int] = PAPER_CLIENT_COUNTS,
    duration: float = PAPER_RUN_S,
    seed: int = 99,
) -> PredictionRun:
    """Deploy ``n_apps`` RUBiS pairs and score the model's predictions."""
    if n_apps <= 0:
        raise ValueError("n_apps must be positive")
    reports: Dict[Tuple[str, str, int], ErrorReport] = {}
    for clients in client_counts:
        sim = Simulator(seed=seed + clients)
        cluster = Cluster(sim)
        pm1 = cluster.create_pm("pm1")
        pm2 = cluster.create_pm("pm2")
        apps: List[RUBiSApplication] = []
        for k in range(n_apps):
            web = cluster.place_vm(VMSpec(name=f"web{k}"), "pm1")
            db = cluster.place_vm(VMSpec(name=f"db{k}"), "pm2")
            apps.append(
                RUBiSApplication(
                    cluster,
                    web,
                    db,
                    ClientPopulation(
                        clients, rng=sim.rng(f"clients-{k}")
                    ),
                    name=f"rubis{k}",
                )
            )
        cluster.start()
        for app in apps:
            app.start()
        sim.run_until(WARMUP_S)
        script1 = MeasurementScript(pm1)
        script2 = MeasurementScript(pm2)
        script1.start()
        script2.start()
        sim.run_until(sim.now + duration)
        for pm_name, script in (("pm1", script1), ("pm2", script2)):
            report = script.stop()
            samples = samples_from_report(report)
            if n_apps == 1:
                X = np.vstack([s.vm_sum.as_array() for s in samples])
                pred = single_model.predict_many(X)
            else:
                pred = multi_model.predict_samples(samples)
            measured_cpu = np.array(
                [
                    s.targets["dom0.cpu"] + s.targets["hyp.cpu"] + s.vm_sum.cpu
                    for s in samples
                ]
            )
            measured_bw = np.array([s.targets["pm.bw"] for s in samples])
            reports[(pm_name, "pm.cpu", clients)] = error_report(
                pred["pm.cpu"], measured_cpu
            )
            reports[(pm_name, "pm.bw", clients)] = error_report(
                pred["pm.bw"], measured_bw
            )
    return PredictionRun(n_apps=n_apps, reports=reports)
