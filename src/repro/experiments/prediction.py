"""Shared machinery for the Figures 7-9 prediction experiments.

The paper deploys ``n`` RUBiS application pairs -- all web front-ends on
PM1, all database back-ends on PM2 -- loads each with 300..700 emulated
clients, records per-second VM utilizations, and compares the model's
PM-level predictions against the measured PM utilizations via the
relative-error CDF.

Each client count is an independent deployment seeded with
``seed + clients``, so the experiment decomposes into
:class:`~repro.perf.cells.PredictionCell` descriptors: ``repro run
fig7 --jobs N`` fans the client counts out over worker processes (the
trained models ride along pickled; workers never retrain), and
``--cache-dir`` serves previously computed deployments from disk.
Results merge in client-count order -- parallel output is
byte-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.models.evaluation import ErrorReport, error_report
from repro.models.multi_vm import MultiVMOverheadModel
from repro.models.samples import samples_from_report
from repro.models.single_vm import SingleVMOverheadModel
from repro.models.training import (
    TrainingConfig,
    train_multi_vm_model,
    train_single_vm_model,
)
from repro.monitor.script import MeasurementScript
from repro.perf.cells import PredictionCell
from repro.perf.executor import run_cells
from repro.rubis.app import RUBiSApplication
from repro.rubis.client import PAPER_CLIENT_COUNTS, ClientPopulation
from repro.sim.engine import Simulator
from repro.xen.specs import VMSpec

#: The paper records a 10-minute interval per client count.
PAPER_RUN_S = 600.0
#: Warm-up before sampling (ramp excluded from the paper's variable-rate
#: phase is still present; we only skip the scheduler fixed-point).
WARMUP_S = 3.0

#: Session-level model memo: one training per distinct configuration.
#: Keyed on the *normalized* (duration, warmup, seed) triple, so
#: positional and keyword call spellings share one entry -- every fast
#: experiment group (fig7/8/9/10, chaos) reuses a single instance
#: instead of retraining per group.
_MODEL_MEMO: Dict[
    Tuple[float, float, int],
    Tuple[SingleVMOverheadModel, MultiVMOverheadModel],
] = {}


def trained_models(
    duration: float = 120.0, warmup: float = 3.0, seed: int = 2015
) -> Tuple[SingleVMOverheadModel, MultiVMOverheadModel]:
    """Train (and memoize) the Eq. (2) and Eq. (3) models.

    The default arguments reproduce the paper's full training sweep;
    tests pass a shorter duration.  Training runs at most once per
    (duration, warmup, seed) per process and the instances are shared
    -- ``run_all(fast=True)`` trains once for fig7/8/9/10 and chaos
    combined.
    """
    key = (float(duration), float(warmup), int(seed))
    models = _MODEL_MEMO.get(key)
    if models is None:
        single = train_single_vm_model(
            TrainingConfig(
                vm_counts=(1,), duration=duration, warmup=warmup, seed=seed
            )
        )
        multi = train_multi_vm_model(
            TrainingConfig(
                vm_counts=(1, 2, 4), duration=duration, warmup=warmup,
                seed=seed,
            )
        )
        models = _MODEL_MEMO[key] = (single, multi)
    return models


def clear_model_memo() -> None:
    """Drop every memoized model (tests that count training runs)."""
    _MODEL_MEMO.clear()


@dataclass
class PredictionRun:
    """Error reports of one deployment size across client counts."""

    n_apps: int
    #: (pm_name, target, clients) -> error report; targets ``pm.cpu``
    #: and ``pm.bw``.
    reports: Dict[Tuple[str, str, int], ErrorReport]

    def report(self, pm: str, target: str, clients: int) -> ErrorReport:
        """One CDF curve of the figure."""
        return self.reports[(pm, target, clients)]

    def worst_p90(self, pm: str, target: str) -> float:
        """Max 90th-percentile error across client counts."""
        return max(
            rep.p90
            for (p, t, _c), rep in self.reports.items()
            if p == pm and t == target
        )

    def best_p90(self, pm: str, target: str) -> float:
        """Min 90th-percentile error across client counts."""
        return min(
            rep.p90
            for (p, t, _c), rep in self.reports.items()
            if p == pm and t == target
        )


def run_client_cell(
    cell: PredictionCell,
) -> Tuple[Dict[Tuple[str, str], ErrorReport], int]:
    """One client count's deployment (the body of the old serial loop).

    Returns ``(reports, events)``: the per-(pm, target) error reports
    and the simulator event count for throughput accounting.
    """
    n_apps, clients = cell.n_apps, cell.clients
    sim = Simulator(seed=cell.seed + clients)
    cluster = Cluster(sim)
    pm1 = cluster.create_pm("pm1")
    pm2 = cluster.create_pm("pm2")
    apps: List[RUBiSApplication] = []
    for k in range(n_apps):
        web = cluster.place_vm(VMSpec(name=f"web{k}"), "pm1")
        db = cluster.place_vm(VMSpec(name=f"db{k}"), "pm2")
        apps.append(
            RUBiSApplication(
                cluster,
                web,
                db,
                ClientPopulation(
                    clients, rng=sim.rng(f"clients-{k}")
                ),
                name=f"rubis{k}",
            )
        )
    cluster.start()
    for app in apps:
        app.start()
    sim.run_until(WARMUP_S)
    script1 = MeasurementScript(pm1)
    script2 = MeasurementScript(pm2)
    script1.start()
    script2.start()
    sim.run_until(sim.now + cell.duration)
    reports: Dict[Tuple[str, str], ErrorReport] = {}
    for pm_name, script in (("pm1", script1), ("pm2", script2)):
        report = script.stop()
        samples = samples_from_report(report)
        if n_apps == 1:
            X = np.vstack([s.vm_sum.as_array() for s in samples])
            pred = cell.single_model.predict_many(X)
        else:
            pred = cell.multi_model.predict_samples(samples)
        measured_cpu = np.array(
            [
                s.targets["dom0.cpu"] + s.targets["hyp.cpu"] + s.vm_sum.cpu
                for s in samples
            ]
        )
        measured_bw = np.array([s.targets["pm.bw"] for s in samples])
        reports[(pm_name, "pm.cpu")] = error_report(
            pred["pm.cpu"], measured_cpu
        )
        reports[(pm_name, "pm.bw")] = error_report(
            pred["pm.bw"], measured_bw
        )
    return reports, sim.dispatched


def run_prediction_experiment(
    n_apps: int,
    single_model: SingleVMOverheadModel,
    multi_model: MultiVMOverheadModel,
    *,
    client_counts: Sequence[int] = PAPER_CLIENT_COUNTS,
    duration: float = PAPER_RUN_S,
    seed: int = 99,
) -> PredictionRun:
    """Deploy ``n_apps`` RUBiS pairs and score the model's predictions."""
    if n_apps <= 0:
        raise ValueError("n_apps must be positive")
    cells = [
        PredictionCell(
            n_apps=n_apps,
            clients=clients,
            duration=duration,
            seed=seed,
            single_model=single_model,
            multi_model=multi_model,
        )
        for clients in client_counts
    ]
    per_client = run_cells(cells)
    reports: Dict[Tuple[str, str, int], ErrorReport] = {}
    for clients, cell_reports in zip(client_counts, per_client):
        for (pm_name, target), rep in cell_reports.items():
            reports[(pm_name, target, clients)] = rep
    return PredictionRun(n_apps=n_apps, reports=reports)
