"""Figures 7-9: prediction-error CDFs for 1 / 2 / 3 RUBiS pairs per PM.

Each figure has four subfigures: PM1 CPU, PM2 CPU, PM1 bandwidth, PM2
bandwidth, each a family of error CDFs for 300..700 clients.

Shape criteria (paper Section VI-A, with our measured bands recorded in
EXPERIMENTS.md):

* Figure 7: 90 % of CPU prediction errors within a few percent (paper
  3 % PM1 / 4 % PM2; our single-VM linear model carries extra bias from
  the convex Dom0 response, see the note below); PM1 CPU errors shrink
  as the client count grows; bandwidth errors have 90 % < 4 % and
  ~80 % < 1 %.
* Figure 8: 90 % of CPU errors small on both PMs; bandwidth 90 % < 3.5 %.
* Figure 9: 90 % of PM1 CPU errors < 2 %; 80 % of bandwidth errors < 1 %.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import Check, ExperimentResult, Series, bound_check
from repro.experiments.prediction import (
    PAPER_RUN_S,
    PredictionRun,
    run_prediction_experiment,
    trained_models,
)
from repro.models.multi_vm import MultiVMOverheadModel
from repro.models.single_vm import SingleVMOverheadModel
from repro.rubis.client import PAPER_CLIENT_COUNTS


def _cdf_series(
    run: PredictionRun, pm: str, target: str, clients: Sequence[int]
) -> list[Series]:
    out = []
    for c in clients:
        vals, frac = run.report(pm, target, c).cdf()
        out.append(
            Series(
                label=str(c),
                x=vals.tolist(),
                y=frac.tolist(),
                x_label="Prediction Error (%)",
                y_label="CDF of prediction error (%)",
            )
        )
    return out


def _figure(
    fig: str,
    n_apps: int,
    cpu_p90_bounds: dict[str, float],
    bw_p90_bound: float,
    *,
    single_model: Optional[SingleVMOverheadModel] = None,
    multi_model: Optional[MultiVMOverheadModel] = None,
    client_counts: Sequence[int] = PAPER_CLIENT_COUNTS,
    duration: float = PAPER_RUN_S,
    seed: int = 99,
    extra_checks=None,
) -> list[ExperimentResult]:
    if single_model is None or multi_model is None:
        single_model, multi_model = trained_models()
    run = run_prediction_experiment(
        n_apps,
        single_model,
        multi_model,
        client_counts=client_counts,
        duration=duration,
        seed=seed,
    )
    subs = {
        "a": ("pm1", "pm.cpu", "PM1 CPU prediction"),
        "b": ("pm2", "pm.cpu", "PM2 CPU prediction"),
        "c": ("pm1", "pm.bw", "PM1 bandwidth prediction"),
        "d": ("pm2", "pm.bw", "PM2 bandwidth prediction"),
    }
    results = []
    for sub, (pm, target, title) in subs.items():
        checks: list[Check] = []
        if target == "pm.cpu":
            checks.append(
                bound_check(
                    f"90% of {pm} CPU errors small",
                    run.worst_p90(pm, target),
                    below=cpu_p90_bounds[pm],
                )
            )
        else:
            checks.append(
                bound_check(
                    f"90% of {pm} BW errors < {bw_p90_bound}%",
                    run.worst_p90(pm, target),
                    below=bw_p90_bound,
                )
            )
            best_p80 = min(
                run.report(pm, target, c).percentile(80) for c in client_counts
            )
            checks.append(
                bound_check("~80% of BW errors < 1%", best_p80, below=1.3)
            )
        if extra_checks:
            checks.extend(extra_checks(run, pm, target))
        results.append(
            ExperimentResult(
                experiment_id=f"{fig}{sub}",
                title=f"{title} ({n_apps} RUBiS pair(s))",
                series=_cdf_series(run, pm, target, client_counts),
                checks=checks,
            )
        )
    return results


def run_fig7(
    *,
    single_model: Optional[SingleVMOverheadModel] = None,
    multi_model: Optional[MultiVMOverheadModel] = None,
    client_counts: Sequence[int] = PAPER_CLIENT_COUNTS,
    duration: float = PAPER_RUN_S,
    seed: int = 99,
) -> list[ExperimentResult]:
    """Figure 7: one RUBiS pair (single-VM model, Eq. 2).

    Note: the paper reports 90 % of CPU errors under 3-4 %; our
    substrate's convex Dom0 response gives the *linear* Eq. (1) model a
    mid-range bias, so the reproduced band is ~7 % at 300 clients,
    converging toward the paper's numbers at high client counts.  The
    decreasing-with-clients shape the paper highlights is asserted.
    """

    def extra(run: PredictionRun, pm: str, target: str):
        if pm == "pm1" and target == "pm.cpu":
            lo = run.report(pm, target, min(client_counts)).p90
            hi = run.report(pm, target, max(client_counts)).p90
            return [
                bound_check(
                    "PM1 CPU errors decrease as clients increase",
                    hi,
                    below=lo,
                )
            ]
        return []

    return _figure(
        "fig7",
        1,
        cpu_p90_bounds={"pm1": 7.5, "pm2": 8.0},
        bw_p90_bound=4.0,
        single_model=single_model,
        multi_model=multi_model,
        client_counts=client_counts,
        duration=duration,
        seed=seed,
        extra_checks=extra,
    )


def run_fig8(
    *,
    single_model: Optional[SingleVMOverheadModel] = None,
    multi_model: Optional[MultiVMOverheadModel] = None,
    client_counts: Sequence[int] = PAPER_CLIENT_COUNTS,
    duration: float = PAPER_RUN_S,
    seed: int = 99,
) -> list[ExperimentResult]:
    """Figure 8: two RUBiS pairs per PM (Eq. 3 model, N=2)."""
    return _figure(
        "fig8",
        2,
        cpu_p90_bounds={"pm1": 4.0, "pm2": 5.0},
        bw_p90_bound=3.5,
        single_model=single_model,
        multi_model=multi_model,
        client_counts=client_counts,
        duration=duration,
        seed=seed,
    )


def run_fig9(
    *,
    single_model: Optional[SingleVMOverheadModel] = None,
    multi_model: Optional[MultiVMOverheadModel] = None,
    client_counts: Sequence[int] = PAPER_CLIENT_COUNTS,
    duration: float = PAPER_RUN_S,
    seed: int = 99,
) -> list[ExperimentResult]:
    """Figure 9: three RUBiS pairs per PM -- a VM count never trained on,
    exercising the alpha(N) interpolation of Eq. (3)."""
    return _figure(
        "fig9",
        3,
        cpu_p90_bounds={"pm1": 2.5, "pm2": 4.5},
        bw_p90_bound=3.0,
        single_model=single_model,
        multi_model=multi_model,
        client_counts=client_counts,
        duration=duration,
        seed=seed,
    )
