"""Figure 6: the RUBiS experiment setup, as a verified topology.

Figure 6 is a diagram, not a measurement: a client host drives a web
front-end VM on PM1, which queries a database VM on PM2; each PM runs
Dom0 and the hypervisor.  We reproduce it as an executable artifact:
build exactly that deployment, run it briefly, and check the structural
facts the figure conveys -- client traffic enters PM1 from outside the
cluster, web<->DB traffic crosses the inter-PM path (both NICs busy,
both Dom0s paying netback cost), and each PM carries its own Dom0 and
hypervisor load.
"""

from __future__ import annotations

from repro.cluster.deployment import (
    DeploymentSpec,
    RubisRef,
    VmPlacement,
    build_deployment,
)
from repro.experiments.base import Check, ExperimentResult, Series, bound_check


def run_fig6(*, duration: float = 60.0, seed: int = 42) -> ExperimentResult:
    """Build and verify the Figure 6 deployment."""
    spec = DeploymentSpec(
        pms=("pm1", "pm2"),
        vms=(
            VmPlacement("web-server", "pm1"),
            VmPlacement("db-server", "pm2"),
        ),
        rubis=(RubisRef(web="web-server", db="db-server", clients=500),),
    )
    dep = build_deployment(spec, seed=seed)
    dep.start()
    dep.run(duration)

    pm1 = dep.cluster.pms["pm1"].snapshot()
    pm2 = dep.cluster.pms["pm2"].snapshot()
    app = dep.apps["rubis"]
    web_flows = dep.cluster.find_vm("web-server").flows
    external_resp = [f for f in web_flows if f.external]
    db_query = [f for f in web_flows if f.dst == "db-server"]

    checks = [
        Check(
            "web tier on PM1, DB tier on PM2",
            dep.cluster.pm_of("web-server").name == "pm1"
            and dep.cluster.pm_of("db-server").name == "pm2",
        ),
        Check(
            "client is external to the cluster",
            len(external_resp) == 1,
            detail=f"web responds to {external_resp[0].dst}",
        ),
        Check(
            "web queries the DB over the inter-PM path",
            len(db_query) == 1 and not db_query[0].intra_pm,
        ),
        bound_check(
            "PM1 NIC carries client+DB traffic (Kb/s)",
            pm1.pm_bw_kbps,
            above=100.0,
        ),
        bound_check(
            "PM2 NIC carries the query/result path (Kb/s)",
            pm2.pm_bw_kbps,
            above=50.0,
        ),
        bound_check(
            "PM1 Dom0 pays netback cost above idle",
            pm1.dom0_cpu_pct,
            above=18.0,
        ),
        bound_check(
            "PM2 Dom0 pays netback cost above idle",
            pm2.dom0_cpu_pct,
            above=17.0,
        ),
        bound_check(
            "each PM runs its own hypervisor load",
            min(pm1.hypervisor_cpu_pct, pm2.hypervisor_cpu_pct),
            above=3.0,
        ),
        bound_check(
            "requests flow end to end",
            app.total_completed,
            above=0.9 * app.total_offered,
        ),
    ]
    series = [
        Series(
            "PM bandwidth (Kb/s)",
            [1.0, 2.0],
            [pm1.pm_bw_kbps, pm2.pm_bw_kbps],
            "PM index",
            "Kb/s",
        ),
        Series(
            "Dom0 CPU (%)",
            [1.0, 2.0],
            [pm1.dom0_cpu_pct, pm2.dom0_cpu_pct],
            "PM index",
            "%",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Experiment setup: client -> web (PM1) -> DB (PM2)",
        series=series,
        checks=checks,
        notes="Figure 6 is a topology diagram; this artifact builds and "
        "verifies that topology end to end.",
    )
