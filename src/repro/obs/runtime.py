"""The process-wide observability collector and instrumentation helpers.

Components never hold a registry; they call the module-level helpers
(:func:`inc`, :func:`set_gauge`, :func:`observe`, :func:`span`), which
are cheap no-ops unless a collector is :func:`install`-ed -- the exact
zero-overhead-when-uninstalled contract of
:class:`repro.sim.tracing.SimTracer`, made process-wide the way
:mod:`repro.sim.sanitize` publishes its default.

``default_enabled`` / ``set_default`` carry the *intent* to collect
across process boundaries: a pool worker that sees the flag installs
its own scoped collector around each cell, snapshots it into the
outcome, and the parent merges the snapshot -- so ``--jobs N`` runs
report the same metrics a serial run would.

This module is the sole sanctioned wall-clock reader of the package:
:func:`wall_now` is the REP011-audited funnel every span stamp flows
through, the same precedent as :func:`repro.perf.profiler.wall_now`.
Observability never touches a random stream and never schedules an
event, so enabling it cannot change what a run computes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.registry import MetricsRegistry, labels_key
from repro.obs.spans import STATUS_ERROR, STATUS_OK, Span, SpanRecorder

#: Schema tag of :meth:`ObsCollector.snapshot` payloads.
SNAPSHOT_SCHEMA = "repro-obs-snapshot/1"

#: Histogram of span wall durations, labelled by source (seconds).
SPAN_WALL_METRIC = "repro_span_wall_seconds"


def wall_now() -> float:
    """Wall-clock seconds for span stamps (diagnostics only)."""
    return time.perf_counter()  # repro: noqa[REP002] span wall stamps profile the harness itself and never feed simulated time


class ObsCollector:
    """One metrics registry plus one span recorder."""

    def __init__(
        self,
        *,
        span_capacity: int = 10_000,
        source_filter=None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(
            capacity=span_capacity, source_filter=source_filter
        )

    def record_span(self, span: Span) -> None:
        """Record a finished span and its wall duration histogram."""
        self.spans.record(span)
        self.metrics.histogram(
            SPAN_WALL_METRIC,
            "wall-clock duration of recorded spans",
            source=span.source,
        ).observe(span.wall_elapsed)

    def snapshot(self) -> Dict[str, object]:
        """JSON-able dump of everything collected so far."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": self.metrics.snapshot(),
            "spans": [s.as_dict() for s in self.spans.spans()],
        }

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold a worker/cached snapshot into this collector."""
        if snap.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unknown obs snapshot schema {snap.get('schema')!r}"
            )
        self.metrics.merge_snapshot(snap["metrics"])
        for row in snap["spans"]:
            self.spans.record(Span.from_dict(row))


# --------------------------------------------------------------------------
# Process-wide state.
# --------------------------------------------------------------------------

_collector: Optional[ObsCollector] = None
_default_enabled = False


def install(collector: Optional[ObsCollector] = None) -> ObsCollector:
    """Install (and return) the process-wide collector."""
    global _collector
    _collector = collector if collector is not None else ObsCollector()
    return _collector


def installed() -> Optional[ObsCollector]:
    """The current collector, or ``None`` when observability is off."""
    return _collector


def uninstall() -> None:
    """Remove the process-wide collector (helpers become no-ops again)."""
    global _collector
    _collector = None


def default_enabled() -> bool:
    """Whether runs should collect (``--obs-dir``); workers inherit it."""
    return _default_enabled


def set_default(enabled: bool) -> None:
    """Set the process-wide collection intent."""
    global _default_enabled
    _default_enabled = bool(enabled)


@contextmanager
def collecting(
    collector: Optional[ObsCollector] = None,
) -> Iterator[ObsCollector]:
    """Scoped install: collector + default flag on entry, restored on exit."""
    global _collector
    previous, previous_default = _collector, _default_enabled
    active = install(collector)
    set_default(True)
    try:
        yield active
    finally:
        _collector = previous
        set_default(previous_default)


# --------------------------------------------------------------------------
# Cheap instrumentation helpers (no-ops when nothing is installed).
# --------------------------------------------------------------------------


def inc(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a counter, if a collector is installed."""
    if _collector is not None:
        _collector.metrics.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge, if a collector is installed."""
    if _collector is not None:
        _collector.metrics.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: object) -> None:
    """Observe into a histogram, if a collector is installed."""
    if _collector is not None:
        _collector.metrics.histogram(name, **labels).observe(value)


@contextmanager
def span(
    name: str, source: str, *, sim=None, **labels: object
) -> Iterator[None]:
    """Time a region: wall stamps always, sim stamps when ``sim`` given.

    Uninstalled, this is a bare ``yield`` -- no clock is read, nothing
    allocated beyond the generator frame, and exceptions pass through
    untouched either way (recorded with ``status="error"``).
    """
    collector = _collector
    if collector is None:
        yield
        return
    wall_start = wall_now()
    sim_start = sim.now if sim is not None else None
    status = STATUS_OK
    try:
        yield
    except BaseException:
        status = STATUS_ERROR
        raise
    finally:
        collector.record_span(
            Span(
                name=name,
                source=source,
                wall_start=wall_start,
                wall_end=wall_now(),
                sim_start=sim_start,
                sim_end=sim.now if sim is not None else None,
                status=status,
                labels=labels_key(labels),
            )
        )
