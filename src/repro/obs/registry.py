"""The metrics registry: counters, gauges, histograms with labels.

A :class:`MetricsRegistry` holds metric *families* keyed by name; each
family holds one child per distinct label set.  ``counter`` / ``gauge``
/ ``histogram`` are get-or-create, so instrumentation sites never need
registration boilerplate, and re-using a name with a different kind is
a hard error rather than silent corruption.

Registries are plain in-memory state with a deterministic, sorted
iteration order (export output depends only on what was recorded, not
on dict insertion history across processes).  ``snapshot`` /
``merge_snapshot`` turn a registry into JSON-able data and back so a
pool worker can ship its cell's metrics home, mirroring how sanitizer
draw counts travel in :class:`repro.perf.executor.CellOutcome`.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Valid metric and label names (OpenMetrics-compatible subset).
_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: latency-flavoured, seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: One label set, canonicalized: sorted ``(name, value)`` pairs.
LabelsKey = Tuple[Tuple[str, str], ...]

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"


def labels_key(labels: Dict[str, object]) -> LabelsKey:
    """Canonical hashable form of one label set."""
    for name in labels:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus/OpenMetrics semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.buckets = bounds
        #: Per-bound observation counts (non-cumulative; the +Inf
        #: overflow lives in ``count - sum(counts)``).
        self.counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def cumulative(self) -> List[int]:
        """Cumulative counts per bound (what ``_bucket`` samples report)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: Dict[LabelsKey, object] = {}


class MetricsRegistry:
    """Get-or-create registry of labelled metric families."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def __len__(self) -> int:
        """Total child series across every family."""
        return sum(len(f.children) for f in self._families.values())

    # -- get-or-create ---------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter child of ``name`` for this label set.

        Counter names must end in ``_total`` (the OpenMetrics sample
        suffix), so exported names never collide with gauges.
        """
        if not name.endswith("_total"):
            raise ValueError(f"counter name {name!r} must end in '_total'")
        family = self._family(name, KIND_COUNTER, help)
        return family.children.setdefault(  # type: ignore[return-value]
            labels_key(labels), Counter()
        )

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge child of ``name`` for this label set."""
        family = self._family(name, KIND_GAUGE, help)
        return family.children.setdefault(  # type: ignore[return-value]
            labels_key(labels), Gauge()
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram child of ``name`` for this label set."""
        family = self._family(
            name, KIND_HISTOGRAM, help, tuple(float(b) for b in buckets)
        )
        key = labels_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Histogram(family.buckets or buckets)
            family.children[key] = child
        return child  # type: ignore[return-value]

    # -- iteration (export order) ----------------------------------------

    def families(self) -> Iterator[Tuple[str, str, str, List[Tuple[LabelsKey, object]]]]:
        """``(name, kind, help, [(labels_key, child), ...])`` sorted."""
        for name in sorted(self._families):
            family = self._families[name]
            yield (
                name,
                family.kind,
                family.help,
                sorted(family.children.items(), key=lambda kv: kv[0]),
            )

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-able dump of every family and child."""
        out: Dict[str, object] = {}
        for name, kind, help, children in self.families():
            dumped = []
            for key, child in children:
                labels = [list(pair) for pair in key]
                if kind == KIND_HISTOGRAM:
                    dumped.append(
                        {
                            "labels": labels,
                            "buckets": list(child.buckets),
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    dumped.append({"labels": labels, "value": child.value})
            out[name] = {"kind": kind, "help": help, "children": dumped}
        return out

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms accumulate; gauges take the snapshot's
        value (last writer wins, as for a plain ``set``).
        """
        for name, family in snap.items():
            kind = family["kind"]
            for child in family["children"]:
                labels = {k: v for k, v in child["labels"]}
                if kind == KIND_COUNTER:
                    self.counter(name, family["help"], **labels).inc(
                        child["value"]
                    )
                elif kind == KIND_GAUGE:
                    self.gauge(name, family["help"], **labels).set(
                        child["value"]
                    )
                else:
                    hist = self.histogram(
                        name, family["help"], buckets=child["buckets"],
                        **labels,
                    )
                    if tuple(child["buckets"]) != hist.buckets:
                        raise ValueError(
                            f"histogram {name!r} bucket mismatch on merge"
                        )
                    for i, c in enumerate(child["counts"]):
                        hist.counts[i] += c
                    hist.sum += child["sum"]
                    hist.count += child["count"]
