"""Deterministic-safe observability: metrics, spans, exporters.

The paper is a profiling study; this package lets the reproduction
profile *itself* without perturbing it.  It follows the same contract
as :class:`repro.sim.tracing.SimTracer`: **nothing is recorded unless a
collector is installed**, so instrumented hot paths cost one global
read when observability is off and runs stay byte-identical to an
uninstrumented build.

Three layers:

:mod:`repro.obs.registry`
    Counters, gauges and histograms, labelled by component / cell / PM.
:mod:`repro.obs.spans`
    Bounded span log; every span stamps wall-clock and (when a
    simulator is in scope) sim-clock start/end.
:mod:`repro.obs.export`
    OpenMetrics text + JSONL span exporters, strict re-parsers, and the
    ``--obs-dir`` directory writer consumed by ``repro obs``.

:mod:`repro.obs.runtime` owns the process-wide collector plus the cheap
``inc`` / ``set_gauge`` / ``observe`` / ``span`` helpers components
call; it is the only module here allowed to read the wall clock
(REP011-audited funnel, like :func:`repro.perf.profiler.wall_now`).
"""

from repro.obs.export import (
    ObsExportError,
    parse_openmetrics,
    parse_spans_jsonl,
    render_openmetrics,
    render_spans_jsonl,
    write_obs_dir,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.runtime import (
    ObsCollector,
    collecting,
    default_enabled,
    inc,
    install,
    installed,
    observe,
    set_default,
    set_gauge,
    span,
    uninstall,
)
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsCollector",
    "ObsExportError",
    "Span",
    "SpanRecorder",
    "collecting",
    "default_enabled",
    "inc",
    "install",
    "installed",
    "observe",
    "parse_openmetrics",
    "parse_spans_jsonl",
    "render_openmetrics",
    "render_spans_jsonl",
    "set_default",
    "set_gauge",
    "span",
    "uninstall",
    "write_obs_dir",
]
