"""Exporters: OpenMetrics text, JSONL spans, and the ``--obs-dir`` layout.

``--obs-dir DIR`` (and the ``repro obs`` CLI) use one directory per
run::

    DIR/metrics.om    OpenMetrics text exposition (ends with ``# EOF``)
    DIR/spans.jsonl   one JSON object per finished span
    DIR/summary.json  ``repro-obs/1`` digest of both

Every renderer here has a strict re-parser next to it
(:func:`parse_openmetrics`, :func:`parse_spans_jsonl`) -- the CI smoke
job and ``repro obs summary`` validate exports by actually parsing
them, not by grepping.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import (
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    MetricsRegistry,
)
from repro.obs.spans import STATUS_ERROR, STATUS_OK, Span

#: Schema tag of ``summary.json``.
SUMMARY_SCHEMA = "repro-obs/1"

#: File names inside an ``--obs-dir``.
METRICS_FILE = "metrics.om"
SPANS_FILE = "spans.jsonl"
SUMMARY_FILE = "summary.json"


class ObsExportError(ValueError):
    """An export failed to render, parse, or validate."""


# --------------------------------------------------------------------------
# OpenMetrics text exposition.
# --------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(pairs: Tuple[Tuple[str, str], ...]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_openmetrics(metrics: MetricsRegistry) -> str:
    """The registry as OpenMetrics text (terminated by ``# EOF``)."""
    lines: List[str] = []
    for name, kind, help, children in metrics.families():
        family = name[: -len("_total")] if kind == KIND_COUNTER else name
        lines.append(f"# TYPE {family} {kind}")
        if help:
            lines.append(f"# HELP {family} {help}")
        for key, child in children:
            labels = _render_labels(key)
            if kind == KIND_HISTOGRAM:
                cumulative = child.cumulative()
                for bound, cum in zip(child.buckets, cumulative):
                    le = (("le", _format_value(bound)),)
                    lines.append(
                        f"{family}_bucket{_render_labels(key + le)} {cum}"
                    )
                inf = key + (("le", "+Inf"),)
                lines.append(
                    f"{family}_bucket{_render_labels(inf)} {child.count}"
                )
                lines.append(f"{family}_count{labels} {child.count}")
                lines.append(
                    f"{family}_sum{labels} {_format_value(child.sum)}"
                )
            elif kind == KIND_COUNTER:
                lines.append(
                    f"{family}_total{labels} {_format_value(child.value)}"
                )
            else:
                lines.append(
                    f"{family}{labels} {_format_value(child.value)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_labels(body: Optional[str]) -> Dict[str, str]:
    if not body:
        return {}
    labels: Dict[str, str] = {}
    rest = body
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            raise ObsExportError(f"malformed label set {body!r}")
        labels[match.group(1)] = _unescape_label(match.group(2))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ObsExportError(f"malformed label set {body!r}")
    return labels


#: Sample-name suffixes each kind may expose.
_KIND_SUFFIXES = {
    KIND_COUNTER: ("_total",),
    KIND_GAUGE: ("",),
    KIND_HISTOGRAM: ("_bucket", "_count", "_sum"),
}


def parse_openmetrics(text: str) -> Dict[str, Dict[str, object]]:
    """Strictly parse OpenMetrics text rendered by this package.

    Returns ``{family: {"kind": ..., "help": ..., "samples":
    [(sample_name, labels, value), ...]}}`` and raises
    :class:`ObsExportError` on any malformed line, a sample outside a
    declared family, or a missing ``# EOF`` terminator.
    """
    if not text.endswith("# EOF\n"):
        raise ObsExportError("missing '# EOF' terminator")
    families: Dict[str, Dict[str, object]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            try:
                _, _, family, kind = line.split(" ", 3)
            except ValueError:
                raise ObsExportError(f"line {lineno}: malformed TYPE line")
            if kind not in _KIND_SUFFIXES:
                raise ObsExportError(
                    f"line {lineno}: unknown metric kind {kind!r}"
                )
            if family in families:
                raise ObsExportError(
                    f"line {lineno}: duplicate family {family!r}"
                )
            families[family] = {"kind": kind, "help": "", "samples": []}
            continue
        if line.startswith("# HELP "):
            _, _, family, help_text = line.split(" ", 3)
            if family not in families:
                raise ObsExportError(
                    f"line {lineno}: HELP before TYPE for {family!r}"
                )
            families[family]["help"] = help_text
            continue
        if line.startswith("#"):
            raise ObsExportError(f"line {lineno}: unknown comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObsExportError(f"line {lineno}: malformed sample {line!r}")
        sample = match.group("name")
        owner = None
        for family, info in families.items():
            for suffix in _KIND_SUFFIXES[info["kind"]]:
                if sample == family + suffix:
                    owner = family
                    break
            if owner:
                break
        if owner is None:
            raise ObsExportError(
                f"line {lineno}: sample {sample!r} has no declared family"
            )
        labels = _parse_labels(match.group("labels"))
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            if raw != "+Inf":
                raise ObsExportError(
                    f"line {lineno}: bad sample value {raw!r}"
                )
            value = float("inf")
        families[owner]["samples"].append((sample, labels, value))
    return families


# --------------------------------------------------------------------------
# JSONL spans.
# --------------------------------------------------------------------------

_SPAN_STATUSES = (STATUS_OK, STATUS_ERROR)


def validate_span(row: Dict[str, object]) -> None:
    """Schema-check one span row; raise :class:`ObsExportError` if bad."""
    for key in ("name", "source"):
        if not isinstance(row.get(key), str) or not row[key]:
            raise ObsExportError(f"span {key!r} must be a non-empty string")
    for key in ("wall_start", "wall_end"):
        if not isinstance(row.get(key), (int, float)):
            raise ObsExportError(f"span {key!r} must be a number")
    if row["wall_end"] < row["wall_start"]:
        raise ObsExportError("span wall_end precedes wall_start")
    sim = (row.get("sim_start"), row.get("sim_end"))
    if (sim[0] is None) != (sim[1] is None):
        raise ObsExportError("span sim stamps must be both set or both null")
    if sim[0] is not None:
        if not all(isinstance(v, (int, float)) for v in sim):
            raise ObsExportError("span sim stamps must be numbers")
        if sim[1] < sim[0]:
            raise ObsExportError("span sim_end precedes sim_start")
    if row.get("status") not in _SPAN_STATUSES:
        raise ObsExportError(f"span status must be one of {_SPAN_STATUSES}")
    labels = row.get("labels")
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        raise ObsExportError("span labels must map strings to strings")


def render_spans_jsonl(spans: List[Span]) -> str:
    """Spans as JSON Lines, one object per span, in record order."""
    return "".join(
        json.dumps(span.as_dict(), sort_keys=True) + "\n" for span in spans
    )


def parse_spans_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse and schema-validate a JSONL span export."""
    rows: List[Dict[str, object]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsExportError(f"line {lineno}: not JSON ({exc})")
        if not isinstance(row, dict):
            raise ObsExportError(f"line {lineno}: span row must be an object")
        try:
            validate_span(row)
        except ObsExportError as exc:
            raise ObsExportError(f"line {lineno}: {exc}")
        rows.append(row)
    return rows


# --------------------------------------------------------------------------
# Summary digest and the --obs-dir writer/reader.
# --------------------------------------------------------------------------


def build_summary(collector) -> Dict[str, object]:
    """The ``repro-obs/1`` digest of one collector."""
    spans = collector.spans.spans()
    per_source: Dict[str, Dict[str, float]] = {}
    for span in spans:
        stats = per_source.setdefault(
            span.source, {"spans": 0, "wall_s": 0.0, "errors": 0}
        )
        stats["spans"] += 1
        stats["wall_s"] += span.wall_elapsed
        if span.status == STATUS_ERROR:
            stats["errors"] += 1
    counters: Dict[str, float] = {}
    for name, kind, _help, children in collector.metrics.families():
        if kind == KIND_COUNTER:
            counters[name] = sum(child.value for _, child in children)
    return {
        "schema": SUMMARY_SCHEMA,
        "metric_families": sum(
            1 for _ in collector.metrics.families()
        ),
        "series": len(collector.metrics),
        "spans": len(spans),
        "spans_emitted": collector.spans.emitted,
        "spans_dropped": collector.spans.dropped,
        "span_sources": collector.spans.sources(),
        "per_source": per_source,
        "counters": counters,
    }


def render_summary_text(summary: Dict[str, object]) -> str:
    """Human-readable digest for ``repro obs summary``."""
    lines = [
        f"metric families:   {summary['metric_families']} "
        f"({summary['series']} series)",
        f"spans recorded:    {summary['spans']} "
        f"({summary['spans_emitted']} emitted, "
        f"{summary['spans_dropped']} dropped)",
        f"span sources:      {', '.join(summary['span_sources']) or '-'}",
    ]
    for source in summary["span_sources"]:
        stats = summary["per_source"][source]
        lines.append(
            f"  {source:<12} {int(stats['spans']):6d} span(s)  "
            f"{stats['wall_s']:10.4f}s wall  "
            f"{int(stats['errors'])} error(s)"
        )
    if summary["counters"]:
        lines.append("counters:")
        for name, value in sorted(summary["counters"].items()):
            lines.append(f"  {name:<40} {_format_value(value)}")
    return "\n".join(lines)


def write_obs_dir(collector, path: Path | str) -> Dict[str, object]:
    """Write ``metrics.om`` / ``spans.jsonl`` / ``summary.json``.

    Returns the summary dict.  Rendered exports are round-tripped
    through their own parsers before anything is written, so a
    malformed export fails the run instead of landing on disk.
    """
    out = Path(path)
    metrics_text = render_openmetrics(collector.metrics)
    parse_openmetrics(metrics_text)
    spans_text = render_spans_jsonl(collector.spans.spans())
    parse_spans_jsonl(spans_text)
    summary = build_summary(collector)
    out.mkdir(parents=True, exist_ok=True)
    (out / METRICS_FILE).write_text(metrics_text)
    (out / SPANS_FILE).write_text(spans_text)
    (out / SUMMARY_FILE).write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    return summary


def load_obs_dir(
    path: Path | str,
) -> Tuple[Dict[str, object], List[Dict[str, object]], Dict[str, object]]:
    """Read and validate one ``--obs-dir``; raise on anything malformed."""
    root = Path(path)
    if not root.is_dir():
        raise ObsExportError(f"{root} is not an observability directory")
    for name in (METRICS_FILE, SPANS_FILE, SUMMARY_FILE):
        if not (root / name).is_file():
            raise ObsExportError(f"{root} is missing {name}")
    metrics = parse_openmetrics((root / METRICS_FILE).read_text())
    spans = parse_spans_jsonl((root / SPANS_FILE).read_text())
    try:
        summary = json.loads((root / SUMMARY_FILE).read_text())
    except json.JSONDecodeError as exc:
        raise ObsExportError(f"{SUMMARY_FILE}: not JSON ({exc})")
    if summary.get("schema") != SUMMARY_SCHEMA:
        raise ObsExportError(
            f"{SUMMARY_FILE}: unknown schema {summary.get('schema')!r}"
        )
    if summary.get("spans") != len(spans):
        raise ObsExportError(
            f"{SUMMARY_FILE} claims {summary.get('spans')} span(s) but "
            f"{SPANS_FILE} holds {len(spans)}"
        )
    return metrics, spans, summary
