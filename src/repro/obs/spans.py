"""Span records and the bounded span log.

A :class:`Span` is one timed region of work -- a simulator run, a cell
execution, a monitor window, a placement round -- stamped with
wall-clock start/end always and sim-clock start/end when a simulator
was in scope.  :class:`SpanRecorder` keeps a bounded, filterable log of
finished spans under exactly the contract of
:class:`repro.sim.tracing.SimTracer`: bounded capacity with
oldest-first eviction, optional source filtering, and counters that
keep running regardless.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class Span:
    """One finished timed region."""

    name: str
    source: str
    wall_start: float
    wall_end: float
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    status: str = STATUS_OK
    #: Sorted ``(name, value)`` pairs, hashable like a labels key.
    labels: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    @property
    def wall_elapsed(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def sim_elapsed(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "source": self.source,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "status": self.status,
            "labels": {k: v for k, v in self.labels},
        }

    @staticmethod
    def from_dict(row: Dict[str, object]) -> "Span":
        return Span(
            name=row["name"],
            source=row["source"],
            wall_start=row["wall_start"],
            wall_end=row["wall_end"],
            sim_start=row.get("sim_start"),
            sim_end=row.get("sim_end"),
            status=row.get("status", STATUS_OK),
            labels=tuple(sorted(dict(row.get("labels") or {}).items())),
        )

    def render(self) -> str:
        sim = (
            f" sim {self.sim_start:.3f}-{self.sim_end:.3f}s"
            if self.sim_elapsed is not None
            else ""
        )
        labels = (
            " " + " ".join(f"{k}={v}" for k, v in self.labels)
            if self.labels
            else ""
        )
        return (
            f"[{self.wall_elapsed * 1e3:10.3f}ms] {self.source}:"
            f"{self.name}{sim} {self.status}{labels}"
        )


class SpanRecorder:
    """Bounded in-memory log of finished spans.

    Parameters
    ----------
    capacity:
        Maximum retained spans (oldest dropped first).
    source_filter:
        Optional predicate on the source label; spans from filtered-out
        sources are not recorded.
    """

    def __init__(
        self,
        *,
        capacity: int = 10_000,
        source_filter: Optional[Callable[[str], bool]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._filter = source_filter
        #: Total recorded attempts (including dropped and filtered).
        self.emitted = 0
        #: Recorded but later evicted by the capacity bound.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def record(self, span: Span) -> None:
        """Append one finished span (subject to filter and capacity)."""
        if not span.source:
            raise ValueError("source must be non-empty")
        self.emitted += 1
        if self._filter is not None and not self._filter(span.source):
            return
        if len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(span)

    def spans(self, *, source: Optional[str] = None) -> List[Span]:
        """Recorded spans, optionally restricted to one source."""
        return [
            s
            for s in self._spans
            if source is None or s.source == source
        ]

    def sources(self) -> List[str]:
        """Distinct sources present, sorted."""
        return sorted({s.source for s in self._spans})

    def tail(self, n: int = 20) -> List[Span]:
        """The most recent ``n`` spans."""
        if n <= 0:
            raise ValueError("n must be positive")
        return list(self._spans)[-n:]

    def clear(self) -> None:
        """Drop all recorded spans (counters keep running)."""
        self._spans.clear()
