"""Declarative testbed deployments.

Experiments keep re-building the same shapes -- N PMs, VMs with
workloads, RUBiS pairs -- with a dozen lines of imperative setup each.
:class:`DeploymentSpec` describes a testbed as data and
:func:`build_deployment` materializes it on a fresh simulator, which
keeps scenario definitions inspectable and serializable.

Example::

    spec = DeploymentSpec(
        pms=("pm1", "pm2"),
        vms=(
            VmPlacement("web", "pm1"),
            VmPlacement("db", "pm2"),
            VmPlacement("hog", "pm1", workload=WorkloadRef("cpu", 50.0)),
        ),
        rubis=(RubisRef(web="web", db="db", clients=500),),
    )
    dep = build_deployment(spec, seed=42)
    dep.cluster.run(120.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rubis.app import RUBiSApplication
from repro.workloads.base import Workload
from repro.workloads.suite import KINDS, make_benchmark
from repro.xen.calibration import XenCalibration
from repro.xen.specs import MachineSpec, VMSpec


@dataclass(frozen=True)
class WorkloadRef:
    """A Table II workload by kind and intensity (native units)."""

    kind: str
    intensity: float

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if self.intensity < 0:
            raise ValueError("intensity must be >= 0")


@dataclass(frozen=True)
class VmPlacement:
    """One guest: name, hosting PM, optional spec/workload."""

    name: str
    pm: str
    mem_mb: int = 256
    workload: Optional[WorkloadRef] = None

    def __post_init__(self) -> None:
        if not self.name or not self.pm:
            raise ValueError("name and pm must be non-empty")


@dataclass(frozen=True)
class RubisRef:
    """One RUBiS application across two already-declared VMs."""

    web: str
    db: str
    clients: int
    name: str = "rubis"

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise ValueError("clients must be positive")
        if self.web == self.db:
            raise ValueError("web and db tiers must differ")


@dataclass(frozen=True)
class DeploymentSpec:
    """A complete testbed description."""

    pms: Tuple[str, ...]
    vms: Tuple[VmPlacement, ...] = ()
    rubis: Tuple[RubisRef, ...] = ()

    def __post_init__(self) -> None:
        if not self.pms:
            raise ValueError("need at least one PM")
        if len(set(self.pms)) != len(self.pms):
            raise ValueError("duplicate PM names")
        names = [v.name for v in self.vms]
        if len(set(names)) != len(names):
            raise ValueError("duplicate VM names")
        unknown_pm = {v.pm for v in self.vms} - set(self.pms)
        if unknown_pm:
            raise ValueError(f"VMs reference unknown PMs {sorted(unknown_pm)}")
        declared = set(names)
        for app in self.rubis:
            missing = {app.web, app.db} - declared
            if missing:
                raise ValueError(
                    f"RUBiS app {app.name!r} references undeclared VMs "
                    f"{sorted(missing)}"
                )


@dataclass
class Deployment:
    """A materialized testbed, ready to run."""

    sim: Simulator
    cluster: Cluster
    workloads: Dict[str, Workload] = field(default_factory=dict)
    apps: Dict[str, "RUBiSApplication"] = field(default_factory=dict)

    def start(self) -> None:
        """Start the cluster and every application."""
        self.cluster.start()
        for app in self.apps.values():
            app.start()

    def run(self, seconds: float) -> None:
        """Advance the shared clock."""
        self.cluster.run(seconds)


def build_deployment(
    spec: DeploymentSpec,
    *,
    seed: int = 0,
    machine_spec: Optional[MachineSpec] = None,
    calibration: Optional[XenCalibration] = None,
) -> Deployment:
    """Materialize a :class:`DeploymentSpec` on a fresh simulator."""
    # Imported here to break the cluster <-> rubis package cycle.
    from repro.rubis.app import RUBiSApplication
    from repro.rubis.client import ClientPopulation

    sim = Simulator(seed=seed)
    cluster = Cluster(sim, spec=machine_spec, calibration=calibration)
    for pm in spec.pms:
        cluster.create_pm(pm)
    dep = Deployment(sim=sim, cluster=cluster)
    for placement in spec.vms:
        vm = cluster.place_vm(
            VMSpec(name=placement.name, mem_mb=placement.mem_mb), placement.pm
        )
        if placement.workload is not None:
            wl = make_benchmark(
                placement.workload.kind, placement.workload.intensity
            )
            wl.attach(vm)
            dep.workloads[placement.name] = wl
    for app_ref in spec.rubis:
        if app_ref.name in dep.apps:
            raise ValueError(f"duplicate RUBiS app name {app_ref.name!r}")
        dep.apps[app_ref.name] = RUBiSApplication(
            cluster,
            cluster.find_vm(app_ref.web),
            cluster.find_vm(app_ref.db),
            ClientPopulation(
                app_ref.clients, rng=sim.rng(f"clients-{app_ref.name}")
            ),
            name=app_ref.name,
        )
    return dep
