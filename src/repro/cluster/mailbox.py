"""Epoch-barrier mailboxes: deterministic cross-shard message passing.

The fleet simulator partitions PMs across per-shard event queues
(:mod:`repro.cluster.fleet`).  Shards never call into each other while
an epoch is running; every cross-PM interaction is a :class:`Message`
dropped into the sending shard's :class:`Outbox`.  At the epoch
barrier the driver drains every outbox through :func:`merge_epoch`,
which imposes one global delivery order -- the stable key
``(time, src_shard, seq)`` -- and the batch is delivered at the start
of the *next* epoch.

That key is what makes results independent of the shard count.  PMs
are assigned to shards in contiguous index blocks and, within a shard,
same-time sends occur in PM-creation (= PM-index) order, so sorting by
``(time, src_shard, seq)`` reproduces exactly the order a single-shard
run would have produced: first by time, then by PM index, then by each
PM's own send order.  The key is unique (``seq`` is per-outbox), so
the sort is total and the merged batch is byte-stable.

The placement coordinator participates as the pseudo-shard
:data:`CONTROL` (= -1): it consumes shard messages at the barrier and
its own messages (migrations) sort ahead of every shard's at equal
time, again identically at any shard count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

#: Pseudo shard id of the placement coordinator (sorts before shards).
CONTROL = -1


@dataclass(frozen=True)
class Message:
    """One cross-shard message, delivered at the next epoch barrier."""

    #: Simulation time at which the message was sent.
    time: float
    #: Sending shard (:data:`CONTROL` for the coordinator).
    src_shard: int
    #: Per-outbox send counter; makes the sort key unique.
    seq: int
    #: Receiving shard (:data:`CONTROL` to address the coordinator).
    dst_shard: int
    #: Message type, e.g. ``"hotspot"`` / ``"migrate_out"`` / ``"migrate_in"``.
    kind: str
    #: Immutable payload items, ``(key, value)`` pairs.
    payload: Tuple[Tuple[str, object], ...] = ()

    def sort_key(self) -> Tuple[float, int, int]:
        """The global delivery-order key."""
        return (self.time, self.src_shard, self.seq)

    def data(self) -> Dict[str, object]:
        """The payload as a dict."""
        return dict(self.payload)


class Outbox:
    """One sender's buffered messages for the current epoch."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self._seq = 0
        self._messages: List[Message] = []
        #: Total messages ever sent through this outbox.
        self.sent = 0

    def send(
        self, time: float, dst_shard: int, kind: str, **payload: object
    ) -> Message:
        """Buffer one message; it is delivered at the next barrier."""
        msg = Message(
            time=float(time),
            src_shard=self.shard,
            seq=self._seq,
            dst_shard=dst_shard,
            kind=kind,
            payload=tuple(sorted(payload.items())),
        )
        self._seq += 1
        self.sent += 1
        self._messages.append(msg)
        return msg

    def drain(self) -> List[Message]:
        """Remove and return this epoch's buffered messages."""
        batch, self._messages = self._messages, []
        return batch


def merge_epoch(outboxes: Iterable[Outbox]) -> List[Message]:
    """Drain ``outboxes`` into one globally ordered delivery batch.

    An empty epoch (no sends anywhere) merges to an empty batch; the
    barrier itself never fabricates messages.
    """
    batch: List[Message] = []
    for outbox in outboxes:
        batch.extend(outbox.drain())
    batch.sort(key=Message.sort_key)
    return batch
