"""Fleet-scale sharded datacenter simulator (VOA vs VOU at 1000+ PMs).

The paper compares overhead-aware (VOA) and overhead-unaware (VOU)
placement on 2 PMs and 5 VMs (Fig. 10).  This module runs the same
comparison at datacenter scale: thousands of PMs, tens of thousands of
VMs, and an open-loop client population of 10^5 - 10^6 users
(:class:`repro.rubis.openloop.OpenLoopArrivals`).

Architecture
------------
PMs are partitioned across *shards* in contiguous index blocks, each
shard owning its own :class:`repro.sim.engine.Simulator` (event queue,
clock, named RNG streams).  Within a shard every PM is one
:class:`repro.sim.process.PeriodicProcess` that advances a fluid load
model each tick: per-VM demand is the VM's peak-demand template scaled
by the global open-loop load factor and a per-PM multiplicative noise
draw; PM CPU requirement is guests + Dom0 + hypervisor via the linear
overhead form (:class:`repro.placement.admission.LinearOverhead`); the
served request rate degrades by ``capacity / required`` when the PM
overloads.  PMs that stay overloaded emit *hotspot* messages.

Shards never touch each other.  All cross-PM coordination flows
through the epoch-barrier mailbox (:mod:`repro.cluster.mailbox`): at
each barrier the driver merges every shard's outbox into one batch
sorted by the shard-count-invariant ``(time, src_shard, seq)`` key,
the placement coordinator consumes hotspots from that batch, decides
migrations with the O(1) aggregate admission predicates of
:class:`repro.placement.admission.AdmissionPolicy`, and its
``migrate_out`` / ``migrate_in`` messages are delivered at the start
of the next epoch.

Determinism contract (byte-identical at any shard count):

* PM *i* lives on shard ``i * shards // pms`` -- contiguous blocks, so
  sorting by ``(time, src_shard, seq)`` equals global PM-index order
  at equal times.
* Each PM draws only from its own named stream ``fleet.pm.<i>``;
  stream seeds depend on (master seed, name) only, never on the shard
  layout.  Deployment draws come from the coordinator-owned
  ``fleet.deploy`` stream before any shard exists.
* The coordinator runs outside every shard, over the sorted batch.
* Per-epoch aggregates are reduced in global PM-index order, so
  floating-point accumulation order is shard-count independent.

Memory stays bounded at fleet scale: per-PM state is a few small numpy
arrays and the run keeps only per-epoch aggregate series (a handful of
floats per epoch), never per-tick or per-VM history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.mailbox import CONTROL, Message, Outbox, merge_epoch
from repro.obs import runtime as _obs
from repro.placement.admission import (
    BW,
    CPU,
    IO,
    MEM,
    AdmissionPolicy,
    LinearOverhead,
)
from repro.placement.placer import VOA, VOU
from repro.rubis.openloop import OpenLoopArrivals
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

#: Strategies the fleet experiment compares.
STRATEGIES = (VOA, VOU)


def pm_stream(index: int) -> str:
    """The named RNG stream of PM ``index`` (shard-layout independent)."""
    return f"fleet.pm.{index:05d}"


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet run (defaults are smoke scale; the CLI runs
    1000 PMs / 10^4 VMs / 10^5 clients)."""

    pms: int = 24
    vms: int = 240
    clients: int = 20_000
    duration_s: float = 120.0
    tick_s: float = 1.0
    epoch_s: float = 10.0
    shards: int = 1
    strategy: str = VOA
    seed: int = 0
    # Open-loop arrival profile.
    think_time_s: float = 6.0
    ramp_s: float = 40.0
    wave_amplitude: float = 0.06
    wave_period_s: float = 331.0
    # Per-VM peak-demand template draws [cpu %, mem MB, io b/s, bw Kb/s].
    vm_cpu_lo: float = 8.0
    vm_cpu_hi: float = 22.0
    vm_mem_mb: float = 128.0
    vm_io_lo: float = 10.0
    vm_io_hi: float = 40.0
    vm_bw_lo: float = 50.0
    vm_bw_hi: float = 200.0
    #: Relative sigma of the per-tick multiplicative demand noise.
    demand_noise_rel: float = 0.05
    # Hotspot / migration policy.
    hotspot_ticks: int = 3
    cooldown_s: float = 20.0
    max_migrations_per_epoch: int = 50
    vou_fill: float = 0.95
    voa_headroom: float = 0.88

    def __post_init__(self) -> None:
        if self.pms < 1:
            raise ValueError("pms must be >= 1")
        if self.vms < 1:
            raise ValueError("vms must be >= 1")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if not 1 <= self.shards <= self.pms:
            raise ValueError("shards must be in [1, pms]")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.tick_s <= 0 or self.epoch_s < self.tick_s:
            raise ValueError("need tick_s > 0 and epoch_s >= tick_s")
        if self.duration_s < self.epoch_s:
            raise ValueError("duration_s must cover at least one epoch")
        if self.demand_noise_rel < 0:
            raise ValueError("demand_noise_rel must be >= 0")
        if self.hotspot_ticks < 1:
            raise ValueError("hotspot_ticks must be >= 1")
        if self.max_migrations_per_epoch < 0:
            raise ValueError("max_migrations_per_epoch must be >= 0")

    def shard_of(self, pm_index: int) -> int:
        """The shard owning PM ``pm_index`` (contiguous blocks)."""
        return pm_index * self.shards // self.pms

    @property
    def epochs(self) -> int:
        return int(math.ceil(self.duration_s / self.epoch_s))

    def arrivals(self) -> OpenLoopArrivals:
        return OpenLoopArrivals(
            peak_clients=float(self.clients),
            think_time_s=self.think_time_s,
            ramp_s=self.ramp_s,
            wave_amplitude=self.wave_amplitude,
            wave_period_s=self.wave_period_s,
        )

    def policy(self) -> AdmissionPolicy:
        return AdmissionPolicy(
            strategy=self.strategy,
            vou_fill=self.vou_fill,
            voa_headroom=self.voa_headroom,
        )


@dataclass
class FleetSummary:
    """What one fleet run produced (JSON-able, shard-count invariant)."""

    strategy: str
    seed: int
    pms: int
    vms: int
    shards: int
    epochs: int
    clients: int
    duration_s: float
    # Placement.
    pms_used: int = 0
    placed_forced: int = 0
    # Serving totals (requests).
    offered_total: float = 0.0
    served_total: float = 0.0
    served_fraction: float = 0.0
    # Overload / churn totals.
    overloaded_pm_ticks: int = 0
    hotspots: int = 0
    migrations: int = 0
    migrations_cross_shard: int = 0
    migrations_rejected: int = 0
    # Per-epoch series (bounded: one entry per epoch).
    epoch_time: List[float] = field(default_factory=list)
    epoch_offered: List[float] = field(default_factory=list)
    epoch_served: List[float] = field(default_factory=list)
    epoch_overloaded: List[int] = field(default_factory=list)
    epoch_migrations: List[int] = field(default_factory=list)
    # Substrate accounting.
    events: int = 0
    messages: int = 0
    per_shard: List[Dict[str, int]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        out = dict(vars(self))
        out["per_shard"] = [dict(s) for s in self.per_shard]
        return out

    def invariant_dict(self) -> Dict[str, object]:
        """:meth:`as_dict` minus the fields that describe the shard
        layout itself (``shards``, ``per_shard``,
        ``migrations_cross_shard`` -- the last is 0 by definition at
        one shard).  Everything returned here is byte-identical at any
        shard count; artifacts and determinism checks compare this.
        """
        out = self.as_dict()
        for key in ("shards", "per_shard", "migrations_cross_shard"):
            out.pop(key)
        return out


class _PM:
    """One physical machine: fluid per-tick load model."""

    __slots__ = (
        "index", "shard", "vm_ids", "templates", "weight_sum", "rng",
        "streak", "cooldown_until", "acc_offered", "acc_served",
        "acc_overloaded", "acc_hotspots",
    )

    def __init__(
        self,
        index: int,
        shard: "_Shard",
        vm_ids: List[int],
        templates: np.ndarray,
    ) -> None:
        self.index = index
        self.shard = shard
        self.vm_ids = list(vm_ids)
        self.templates = np.array(templates, dtype=float).reshape(-1, 4)
        self.weight_sum = float(self.templates[:, CPU].sum())
        self.rng = shard.sim.rng(pm_stream(index))
        self.streak = 0
        self.cooldown_until = 0.0
        self.acc_offered = 0.0
        self.acc_served = 0.0
        self.acc_overloaded = 0
        self.acc_hotspots = 0

    def reset_epoch(self) -> None:
        self.acc_offered = 0.0
        self.acc_served = 0.0
        self.acc_overloaded = 0
        self.acc_hotspots = 0

    def add_vm(self, vm: int, template: np.ndarray) -> None:
        self.vm_ids.append(vm)
        self.templates = np.vstack([self.templates, template.reshape(1, 4)])
        self.weight_sum = float(self.templates[:, CPU].sum())

    def remove_vm(self, vm: int) -> np.ndarray:
        pos = self.vm_ids.index(vm)
        template = self.templates[pos].copy()
        del self.vm_ids[pos]
        self.templates = np.delete(self.templates, pos, axis=0)
        self.weight_sum = float(self.templates[:, CPU].sum())
        return template

    def tick(self, now: float) -> None:
        shard = self.shard
        n = len(self.vm_ids)
        if n == 0:
            return
        rho = shard.arrivals.load_factor(now)
        if shard.noise_rel > 0.0:
            noise = self.rng.normal(1.0, shard.noise_rel, size=n)
            np.clip(noise, 0.5, 1.5, out=noise)
            sum_m = self.templates.T @ (rho * noise)
        else:
            sum_m = self.templates.sum(axis=0) * rho
        required = shard.overhead.required_cpu(sum_m)
        capacity = shard.effective_capacity_pct
        offered = shard.rate_scale * rho * self.weight_sum
        self.acc_offered += offered * shard.tick_s
        if required <= capacity:
            self.acc_served += offered * shard.tick_s
            self.streak = 0
            return
        self.acc_served += offered * (capacity / required) * shard.tick_s
        self.acc_overloaded += 1
        self.streak += 1
        if (
            self.streak >= shard.hotspot_ticks
            and now >= self.cooldown_until
            and n > 1
        ):
            victim = int(np.argmax(self.templates[:, CPU]))
            shard.outbox.send(
                now, CONTROL, "hotspot",
                pm=self.index, vm=self.vm_ids[victim],
            )
            self.acc_hotspots += 1
            self.cooldown_until = now + shard.cooldown_s
            self.streak = 0


class _Shard:
    """One partition: its own simulator, PMs, and outbox."""

    def __init__(self, shard_id: int, config: FleetConfig,
                 overhead: LinearOverhead, rate_scale: float,
                 effective_capacity_pct: float) -> None:
        self.shard_id = shard_id
        self.sim = Simulator(seed=config.seed)
        self.outbox = Outbox(shard_id)
        self.arrivals = config.arrivals()
        self.overhead = overhead
        self.effective_capacity_pct = effective_capacity_pct
        self.rate_scale = rate_scale
        self.tick_s = config.tick_s
        self.noise_rel = config.demand_noise_rel
        self.hotspot_ticks = config.hotspot_ticks
        self.cooldown_s = config.cooldown_s
        self.pms: Dict[int, _PM] = {}

    def add_pm(self, index: int, vm_ids: List[int],
               templates: np.ndarray) -> None:
        pm = _PM(index, self, vm_ids, templates)
        self.pms[index] = pm
        PeriodicProcess(self.sim, self.tick_s, pm.tick)

    def apply(self, msg: Message) -> None:
        data = msg.data()
        pm = self.pms[int(data["pm"])]
        if msg.kind == "migrate_out":
            pm.remove_vm(int(data["vm"]))
        elif msg.kind == "migrate_in":
            pm.add_vm(
                int(data["vm"]),
                np.array(data["template"], dtype=float),
            )
        else:
            raise ValueError(f"shard cannot apply message kind {msg.kind!r}")


class _Coordinator:
    """Driver-side placement brain: registry, deployment, migrations."""

    def __init__(self, config: FleetConfig, policy: AdmissionPolicy,
                 templates: np.ndarray) -> None:
        self.config = config
        self.policy = policy
        self.templates = templates
        self.vm_pm = np.full(config.vms, -1, dtype=np.int64)
        self.sums = np.zeros((config.pms, 4), dtype=float)
        self.counts = np.zeros(config.pms, dtype=np.int64)
        self.outbox = Outbox(CONTROL)
        self.placed_forced = 0
        self.migrations = 0
        self.migrations_cross_shard = 0
        self.migrations_rejected = 0

    def place(self, vm: int, pm: int) -> None:
        self.sums[pm] += self.templates[vm]
        self.counts[pm] += 1
        self.vm_pm[vm] = pm

    def remove(self, vm: int) -> None:
        pm = int(self.vm_pm[vm])
        self.sums[pm] -= self.templates[vm]
        self.counts[pm] -= 1
        self.vm_pm[vm] = -1

    def deploy(self) -> None:
        """Streaming next-fit initial placement (O(vms + pms)).

        The pointer only advances: a PM that rejects the current VM is
        not revisited for later (possibly smaller) ones -- the price of
        a single pass over 10^4 VMs.  When the pointer runs off the
        end the fleet is full under this policy and the VM is forced
        onto the least-loaded PM by predicted required CPU (the
        :class:`~repro.placement.placer.Placer` fallback, scaled).
        """
        pointer = 0
        pms = self.config.pms
        for vm in range(self.config.vms):
            template = self.templates[vm]
            while pointer < pms and not self.policy.admits(
                self.sums[pointer], template
            ):
                pointer += 1
            if pointer < pms:
                self.place(vm, pointer)
                continue
            required = self.policy.overhead.required_cpu_array(self.sums)
            self.place(vm, int(np.argmin(required)))
            self.placed_forced += 1

    def find_target(self, template: np.ndarray,
                    exclude: int) -> Optional[int]:
        mask = self.policy.admits_array(self.sums, template)
        mask[exclude] = False
        if not mask.any():
            return None
        return int(np.argmax(mask))

    def process(self, batch: List[Message], now: float) -> int:
        """Consume one epoch's hotspot messages; emit migrations.

        Returns the number of migrations scheduled this barrier.
        """
        cfg = self.config
        scheduled = 0
        for msg in batch:
            if msg.dst_shard != CONTROL or msg.kind != "hotspot":
                continue
            data = msg.data()
            pm, vm = int(data["pm"]), int(data["vm"])
            if int(self.vm_pm[vm]) != pm:
                continue  # stale: the VM already migrated away
            if scheduled >= cfg.max_migrations_per_epoch:
                self.migrations_rejected += 1
                continue
            template = self.templates[vm]
            dst = self.find_target(template, exclude=pm)
            if dst is None:
                self.migrations_rejected += 1
                continue
            self.remove(vm)
            self.place(vm, dst)
            self.outbox.send(
                now, cfg.shard_of(pm), "migrate_out", pm=pm, vm=vm,
            )
            self.outbox.send(
                now, cfg.shard_of(dst), "migrate_in", pm=dst, vm=vm,
                template=tuple(float(x) for x in template),
            )
            scheduled += 1
            self.migrations += 1
            if cfg.shard_of(pm) != cfg.shard_of(dst):
                self.migrations_cross_shard += 1
        return scheduled


def _draw_templates(config: FleetConfig, sim: Simulator) -> np.ndarray:
    """Per-VM peak-demand templates from the ``fleet.deploy`` stream."""
    rng = sim.rng("fleet.deploy")
    n = config.vms
    cpu = rng.uniform(config.vm_cpu_lo, config.vm_cpu_hi, size=n)
    io = rng.uniform(config.vm_io_lo, config.vm_io_hi, size=n)
    bw = rng.uniform(config.vm_bw_lo, config.vm_bw_hi, size=n)
    templates = np.empty((n, 4), dtype=float)
    templates[:, CPU] = cpu
    templates[:, MEM] = config.vm_mem_mb
    templates[:, IO] = io
    templates[:, BW] = bw
    return templates


def run_fleet(config: FleetConfig) -> FleetSummary:
    """Run one sharded fleet simulation; return its bounded summary."""
    overhead = LinearOverhead.from_calibration()
    policy = config.policy()
    # The coordinator's simulator exists for its (sanitizer-aware) RNG
    # registry and never dispatches an event.
    coord_sim = Simulator(seed=config.seed)
    templates = _draw_templates(config, coord_sim)
    coordinator = _Coordinator(config, policy, templates)
    with _obs.span("fleet.run", source="cluster"):
        coordinator.deploy()
        # Offered load follows the VMs: each VM carries a share of the
        # peak open-loop request rate proportional to its CPU template,
        # scaled at runtime by the load factor rho(t).
        total_weight = float(templates[:, CPU].sum())
        peak_rate = float(config.clients) / config.think_time_s
        rate_scale = peak_rate / total_weight
        shards = [
            _Shard(s, config, overhead, rate_scale,
                   policy.effective_capacity_pct)
            for s in range(config.shards)
        ]
        for pm_index in range(config.pms):
            resident = [
                int(vm) for vm in np.nonzero(
                    coordinator.vm_pm == pm_index)[0]
            ]
            shards[config.shard_of(pm_index)].add_pm(
                pm_index, resident, templates[resident],
            )
        summary = FleetSummary(
            strategy=config.strategy,
            seed=config.seed,
            pms=config.pms,
            vms=config.vms,
            shards=config.shards,
            epochs=config.epochs,
            clients=config.clients,
            duration_s=config.duration_s,
            pms_used=int((coordinator.counts > 0).sum()),
            placed_forced=coordinator.placed_forced,
        )
        pending: List[Message] = []
        messages = 0
        for epoch in range(config.epochs):
            t_end = min(config.duration_s, (epoch + 1) * config.epoch_s)
            # Barrier delivery: last epoch's batch, in global order.
            for msg in pending:
                if msg.dst_shard != CONTROL:
                    shards[msg.dst_shard].apply(msg)
            for shard in shards:
                shard.sim.run_until(t_end)
            batch = merge_epoch([shard.outbox for shard in shards])
            messages += len(batch)
            for msg in batch:
                _obs.inc("repro_fleet_messages_total", kind=msg.kind)
            migrated = coordinator.process(batch, t_end)
            pending = merge_epoch([coordinator.outbox])
            messages += len(pending)
            for msg in pending:
                _obs.inc("repro_fleet_messages_total", kind=msg.kind)
            # Per-epoch reduction in global PM-index order, so float
            # accumulation order is independent of the shard layout.
            offered = served = 0.0
            overloaded = hotspots = 0
            for pm_index in range(config.pms):
                pm = shards[config.shard_of(pm_index)].pms[pm_index]
                offered += pm.acc_offered
                served += pm.acc_served
                overloaded += pm.acc_overloaded
                hotspots += pm.acc_hotspots
                pm.reset_epoch()
            summary.epoch_time.append(float(t_end))
            summary.epoch_offered.append(offered)
            summary.epoch_served.append(served)
            summary.epoch_overloaded.append(overloaded)
            summary.epoch_migrations.append(migrated)
            summary.offered_total += offered
            summary.served_total += served
            summary.overloaded_pm_ticks += overloaded
            summary.hotspots += hotspots
            _obs.inc("repro_fleet_epochs_total")
        if summary.offered_total > 0:
            summary.served_fraction = (
                summary.served_total / summary.offered_total
            )
        summary.migrations = coordinator.migrations
        summary.migrations_cross_shard = coordinator.migrations_cross_shard
        summary.migrations_rejected = coordinator.migrations_rejected
        summary.events = sum(shard.sim.dispatched for shard in shards)
        summary.messages = messages
        summary.per_shard = [
            {
                "shard": shard.shard_id,
                "pms": len(shard.pms),
                "vms": sum(len(pm.vm_ids) for pm in shard.pms.values()),
                "events": shard.sim.dispatched,
                "sent": shard.outbox.sent,
            }
            for shard in shards
        ]
    _obs.inc("repro_fleet_migrations_total", coordinator.migrations)
    _obs.inc("repro_fleet_hotspots_total", summary.hotspots)
    _obs.set_gauge("repro_fleet_shards", config.shards)
    _obs.set_gauge("repro_fleet_pms", config.pms)
    _obs.set_gauge("repro_fleet_vms", config.vms)
    return summary


def run_fleet_cell(cell) -> Tuple[Dict[str, object], int]:
    """Entry point for :class:`repro.perf.cells.FleetCell`."""
    config = FleetConfig(
        pms=cell.pms,
        vms=cell.vms,
        clients=cell.clients,
        duration_s=cell.duration_s,
        epoch_s=cell.epoch_s,
        shards=cell.shards,
        strategy=cell.strategy,
        seed=cell.seed,
        ramp_s=cell.ramp_s,
        max_migrations_per_epoch=cell.max_migrations_per_epoch,
    )
    summary = run_fleet(config)
    return summary.as_dict(), summary.events
