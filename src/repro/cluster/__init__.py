"""Multi-PM testbed orchestration."""

from repro.cluster.cluster import ROUTING_PRIORITY, Cluster
from repro.cluster.deployment import (
    Deployment,
    DeploymentSpec,
    RubisRef,
    VmPlacement,
    WorkloadRef,
    build_deployment,
)

__all__ = [
    "Cluster",
    "Deployment",
    "DeploymentSpec",
    "ROUTING_PRIORITY",
    "RubisRef",
    "VmPlacement",
    "WorkloadRef",
    "build_deployment",
]
