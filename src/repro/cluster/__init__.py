"""Multi-PM testbed orchestration and the sharded fleet simulator."""

from repro.cluster.cluster import ROUTING_PRIORITY, Cluster
from repro.cluster.deployment import (
    Deployment,
    DeploymentSpec,
    RubisRef,
    VmPlacement,
    WorkloadRef,
    build_deployment,
)
from repro.cluster.fleet import FleetConfig, FleetSummary, run_fleet
from repro.cluster.mailbox import CONTROL, Message, Outbox, merge_epoch

__all__ = [
    "CONTROL",
    "Cluster",
    "Deployment",
    "DeploymentSpec",
    "FleetConfig",
    "FleetSummary",
    "Message",
    "Outbox",
    "ROUTING_PRIORITY",
    "RubisRef",
    "VmPlacement",
    "WorkloadRef",
    "build_deployment",
    "merge_epoch",
    "run_fleet",
]
