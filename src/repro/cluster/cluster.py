"""Multi-PM cluster orchestration.

A :class:`Cluster` owns several :class:`~repro.xen.machine.PhysicalMachine`
instances on one simulator clock and routes inter-PM traffic between
them: every routing tick it scans all guest flows whose destination VM
lives on a *different* PM and feeds the receiving machine's
``external_inbound_kbps`` table, so both the sender's and the receiver's
NIC (and Dom0 netback CPU) see the traffic -- exactly the asymmetry the
paper's RUBiS experiment exercises (web tier sends big responses, DB
tier receives small queries).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.xen.calibration import XenCalibration
from repro.xen.machine import DEFAULT_QUANTUM, PhysicalMachine
from repro.xen.specs import MachineSpec, VMSpec
from repro.xen.vm import GuestVM

#: Routing runs after workload updates (-10) and before machine quanta (0).
ROUTING_PRIORITY = -5


class Cluster:
    """A set of PMs sharing one simulator and a routing fabric."""

    def __init__(
        self,
        sim: Simulator,
        *,
        quantum: float = DEFAULT_QUANTUM,
        calibration: Optional[XenCalibration] = None,
        spec: Optional[MachineSpec] = None,
    ) -> None:
        self.sim = sim
        self.quantum = quantum
        self._calibration = calibration
        self._spec = spec
        self._pms: Dict[str, PhysicalMachine] = {}
        self._router: Optional[PeriodicProcess] = None

    # -- topology ----------------------------------------------------------

    @property
    def pms(self) -> Dict[str, PhysicalMachine]:
        """Hosted machines keyed by name (do not mutate)."""
        return self._pms

    def create_pm(self, name: str) -> PhysicalMachine:
        """Add a PM built from the cluster's shared spec/calibration."""
        if name in self._pms:
            raise ValueError(f"duplicate PM name {name!r}")
        pm = PhysicalMachine(
            self.sim,
            name=name,
            spec=self._spec,
            calibration=self._calibration,
            quantum=self.quantum,
        )
        self._pms[name] = pm
        return pm

    def pm_of(self, vm_name: str) -> PhysicalMachine:
        """The machine hosting ``vm_name``.

        Raises
        ------
        KeyError
            If no PM hosts a VM by that name.
        """
        for pm in self._pms.values():
            if vm_name in pm.vms:
                return pm
        raise KeyError(f"no PM hosts a VM named {vm_name!r}")

    def find_vm(self, vm_name: str) -> GuestVM:
        """Look a guest up by name across all PMs."""
        return self.pm_of(vm_name).vms[vm_name]

    def all_vms(self) -> Iterator[GuestVM]:
        """Every guest in the cluster."""
        for pm in self._pms.values():
            yield from pm.vms.values()

    def place_vm(self, spec: VMSpec, pm_name: str) -> GuestVM:
        """Create a guest on the named PM."""
        try:
            pm = self._pms[pm_name]
        except KeyError:
            raise KeyError(f"no PM named {pm_name!r}") from None
        return pm.create_vm(spec)

    def migrate_vm(self, vm_name: str, dst_pm: str) -> GuestVM:
        """Move a guest (state and flows included) to another PM."""
        src = self.pm_of(vm_name)
        if dst_pm not in self._pms:
            raise KeyError(f"no PM named {dst_pm!r}")
        if src.name == dst_pm:
            return src.vms[vm_name]
        vm = src.remove_vm(vm_name)
        try:
            return self._pms[dst_pm].add_vm(vm)
        except MemoryError:
            src.add_vm(vm)  # roll back
            raise

    # -- simulation ------------------------------------------------------

    def start(self) -> None:
        """Start every PM plus the inter-PM traffic router."""
        if self._router is not None and not self._router.stopped:
            raise RuntimeError("cluster already started")
        for pm in self._pms.values():
            pm.start()
        self._router = PeriodicProcess(
            self.sim, self.quantum, self._route, priority=ROUTING_PRIORITY
        )

    def stop(self) -> None:
        """Freeze the whole cluster."""
        for pm in self._pms.values():
            pm.stop()
        if self._router is not None:
            self._router.stop()
            self._router = None

    def run(self, seconds: float) -> None:
        """Advance the shared clock."""
        self.sim.run_until(self.sim.now + seconds)

    def _route(self, _now: float) -> None:
        """Refresh every PM's external-inbound table from live flows."""
        inbound: Dict[str, Dict[str, float]] = {
            name: {} for name in self._pms
        }
        for src_pm in self._pms.values():
            for vm in src_pm.vms.values():
                for flow in vm.flows:
                    if flow.external or flow.dst in src_pm.vms:
                        continue  # external or intra-PM: no routing needed
                    for dst_name, dst_pm in self._pms.items():
                        if flow.dst in dst_pm.vms and dst_name != src_pm.name:
                            table = inbound[dst_name]
                            table[flow.dst] = table.get(flow.dst, 0.0) + flow.kbps
                            break
        for name, pm in self._pms.items():
            # Replace only the router-owned ("cluster:" tagged) entries;
            # application-owned entries (e.g. client traffic from outside
            # the cluster) are left untouched.
            for key in list(pm.external_inbound_kbps):
                if key.startswith("cluster:"):
                    del pm.external_inbound_kbps[key]
            for dst, kbps in inbound[name].items():
                pm.external_inbound_kbps[f"cluster:{dst}"] = kbps


__all__ = ["Cluster", "ROUTING_PRIORITY"]
