"""Time-series plumbing: trace containers and file round-tripping."""

from repro.traces.io import load_csv, load_json, save_csv, save_json
from repro.traces import synth
from repro.traces.trace import Trace, TraceSet

__all__ = [
    "Trace",
    "synth",
    "TraceSet",
    "load_csv",
    "load_json",
    "save_csv",
    "save_json",
]
