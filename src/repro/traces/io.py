"""CSV / JSON round-tripping for traces.

The experiment harness archives every measurement run so figures can be
re-rendered without re-simulating; the formats are deliberately plain
(one CSV per trace set, wide layout; JSON with explicit schema) so the
data can be inspected with standard tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.trace import Trace, TraceSet

PathLike = Union[str, Path]

#: Schema tag written into JSON exports.
JSON_SCHEMA = "repro.traceset.v1"


def save_csv(traces: TraceSet, path: PathLike) -> None:
    """Write a trace set as a wide CSV: ``time`` plus one column each.

    All traces must share timestamps (true for monitor output).
    """
    names = traces.names
    if not names:
        raise ValueError("cannot save an empty trace set")
    mat = traces.matrix(names)
    times = traces[names[0]].times
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time"] + names)
        for i, t in enumerate(times):
            writer.writerow([f"{t:.6f}"] + [f"{v:.9g}" for v in mat[i]])


def load_csv(path: PathLike, units: dict[str, str] | None = None) -> TraceSet:
    """Read a wide CSV written by :func:`save_csv`."""
    units = units or {}
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if not header or header[0] != "time":
            raise ValueError(f"{path}: not a trace CSV (missing time column)")
        names = header[1:]
        rows = [[float(x) for x in row] for row in reader if row]
    if not rows:
        raise ValueError(f"{path}: no samples")
    data = np.asarray(rows)
    out = TraceSet()
    for j, name in enumerate(names):
        out.add(Trace(name, data[:, 0], data[:, j + 1], units.get(name, "")))
    return out


def save_json(traces: TraceSet, path: PathLike) -> None:
    """Write a trace set as schema-tagged JSON (self-describing)."""
    doc = {
        "schema": JSON_SCHEMA,
        "traces": [
            {
                "name": tr.name,
                "units": tr.units,
                "times": tr.times.tolist(),
                "values": tr.values.tolist(),
            }
            for tr in traces
        ],
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)


def load_json(path: PathLike) -> TraceSet:
    """Read a trace set written by :func:`save_json`."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != JSON_SCHEMA:
        raise ValueError(f"{path}: not a {JSON_SCHEMA} document")
    out = TraceSet()
    for rec in doc["traces"]:
        out.add(Trace(rec["name"], rec["times"], rec["values"], rec["units"]))
    return out
