"""Time-series containers used by the monitoring and modeling layers.

A :class:`Trace` is one named metric sampled at known times; a
:class:`TraceSet` is a bundle of traces on a shared clock (one
measurement run).  Both are thin, vectorized wrappers over numpy arrays
-- the regression pipeline consumes them directly as matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np


@dataclass
class Trace:
    """One metric's time series.

    Attributes
    ----------
    name:
        Metric identifier, conventionally ``"<entity>.<resource>"``
        (e.g. ``"vm1.cpu"``, ``"pm.bw"``).
    times:
        Sample timestamps in seconds, strictly increasing.
    values:
        Sample values, same length as ``times``.
    units:
        Unit label for reports (``"%"``, ``"blocks/s"``, ``"Kb/s"``,
        ``"MB"``).
    """

    name: str
    times: np.ndarray
    values: np.ndarray
    units: str = ""

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.ndim != 1 or self.values.ndim != 1:
            raise ValueError("times and values must be 1-D")
        if len(self.times) != len(self.values):
            raise ValueError(
                f"times ({len(self.times)}) and values ({len(self.values)}) "
                "must have equal length"
            )
        if len(self.times) > 1 and not np.all(np.diff(self.times) > 0):
            raise ValueError("times must be strictly increasing")

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times.tolist(), self.values.tolist()))

    # -- statistics ------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of the values (the paper's reported statistic)."""
        if len(self) == 0:
            raise ValueError(f"trace {self.name!r} is empty")
        return float(np.mean(self.values))

    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for singleton traces)."""
        if len(self) == 0:
            raise ValueError(f"trace {self.name!r} is empty")
        if len(self) == 1:
            return 0.0
        return float(np.std(self.values, ddof=1))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the values (0-100)."""
        if len(self) == 0:
            raise ValueError(f"trace {self.name!r} is empty")
        return float(np.percentile(self.values, q))

    # -- transformations ---------------------------------------------------

    def window(self, t0: float, t1: float) -> "Trace":
        """Samples with ``t0 <= time <= t1`` as a new trace."""
        if t1 < t0:
            raise ValueError("window end before start")
        mask = (self.times >= t0) & (self.times <= t1)
        return Trace(self.name, self.times[mask], self.values[mask], self.units)

    def resample(self, period: float) -> "Trace":
        """Bucket-average onto a regular grid of width ``period``.

        Bucket ``k`` spans ``[k*period, (k+1)*period)`` and is stamped at
        its right edge; empty buckets are dropped.  The total integral
        (mean x duration) is conserved up to edge effects, which the
        property tests verify.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        if len(self) == 0:
            return Trace(self.name, [], [], self.units)
        idx = np.floor(self.times / period).astype(int)
        buckets = np.unique(idx)
        out_t = np.empty(len(buckets))
        out_v = np.empty(len(buckets))
        for i, b in enumerate(buckets):
            sel = idx == b
            out_t[i] = (b + 1) * period
            out_v[i] = float(np.mean(self.values[sel]))
        return Trace(self.name, out_t, out_v, self.units)

    def map(self, fn) -> "Trace":
        """Apply ``fn`` elementwise to the values."""
        return Trace(self.name, self.times.copy(), fn(self.values), self.units)


class TraceSet:
    """A bundle of traces from one measurement run."""

    def __init__(self, traces: Optional[Iterable[Trace]] = None) -> None:
        self._traces: Dict[str, Trace] = {}
        for tr in traces or ():
            self.add(tr)

    def add(self, trace: Trace) -> None:
        """Insert a trace; duplicate names are rejected."""
        if trace.name in self._traces:
            raise ValueError(f"duplicate trace {trace.name!r}")
        self._traces[trace.name] = trace

    def __getitem__(self, name: str) -> Trace:
        try:
            return self._traces[name]
        except KeyError:
            raise KeyError(
                f"no trace {name!r}; have {sorted(self._traces)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces.values())

    @property
    def names(self) -> list[str]:
        """Sorted trace names."""
        return sorted(self._traces)

    def means(self) -> Dict[str, float]:
        """Mean of every trace (the paper's per-run summary)."""
        return {name: tr.mean() for name, tr in sorted(self._traces.items())}

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """Column-stack the selected traces into an (n_samples, k) array.

        All selected traces must share identical timestamps.
        """
        if not names:
            raise ValueError("names must be non-empty")
        cols = [self[n] for n in names]
        base = cols[0].times
        for tr in cols[1:]:
            if len(tr.times) != len(base) or not np.allclose(tr.times, base):
                raise ValueError(
                    f"trace {tr.name!r} is not aligned with {cols[0].name!r}"
                )
        return np.column_stack([tr.values for tr in cols])
