"""Synthetic demand-trace generators.

Used to stress the CloudScale predictor and the regression models with
workload patterns the measurement study cannot produce on demand:
strict periodicity, on/off bursts, random walks, and ramps.  All
generators are deterministic given their generator argument.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.traces.trace import Trace


def _times(n: int, period: float) -> np.ndarray:
    if n <= 0:
        raise ValueError("n must be positive")
    if period <= 0:
        raise ValueError("period must be positive")
    return period * np.arange(1, n + 1)


def constant(n: int, level: float, *, period: float = 1.0, name: str = "constant") -> Trace:
    """A flat trace at ``level``."""
    if level < 0:
        raise ValueError("level must be >= 0")
    t = _times(n, period)
    return Trace(name, t, np.full(n, float(level)))


def periodic(
    n: int,
    *,
    mean: float,
    amplitude: float,
    wave_period: float,
    period: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    noise: float = 0.0,
    name: str = "periodic",
) -> Trace:
    """A sinusoidal demand signature (CloudScale's favourite case)."""
    if amplitude < 0 or mean < 0:
        raise ValueError("mean and amplitude must be >= 0")
    if wave_period <= 0:
        raise ValueError("wave_period must be positive")
    t = _times(n, period)
    values = mean + amplitude * np.sin(2.0 * math.pi * t / wave_period)
    if rng is not None and noise > 0:
        values = values * np.exp(rng.normal(0.0, noise, n))
    return Trace(name, t, np.maximum(0.0, values))


def onoff(
    n: int,
    *,
    low: float,
    high: float,
    on_len: int,
    off_len: int,
    period: float = 1.0,
    name: str = "onoff",
) -> Trace:
    """A square-wave burst pattern: ``on_len`` highs, ``off_len`` lows."""
    if on_len <= 0 or off_len <= 0:
        raise ValueError("on_len and off_len must be positive")
    if low < 0 or high < low:
        raise ValueError("need 0 <= low <= high")
    t = _times(n, period)
    cycle = on_len + off_len
    phase = np.arange(n) % cycle
    values = np.where(phase < on_len, float(high), float(low))
    return Trace(name, t, values)


def random_walk(
    n: int,
    *,
    start: float,
    step_sigma: float,
    rng: np.random.Generator,
    lo: float = 0.0,
    hi: float = float("inf"),
    period: float = 1.0,
    name: str = "walk",
) -> Trace:
    """A reflected Gaussian random walk in ``[lo, hi]``."""
    if step_sigma < 0:
        raise ValueError("step_sigma must be >= 0")
    if not lo <= start <= hi:
        raise ValueError("start must lie in [lo, hi]")
    t = _times(n, period)
    steps = rng.normal(0.0, step_sigma, n)
    values = np.empty(n)
    cur = float(start)
    for i in range(n):
        cur = min(hi, max(lo, cur + steps[i]))
        values[i] = cur
    return Trace(name, t, values)


def ramp(
    n: int,
    *,
    start: float,
    end: float,
    period: float = 1.0,
    name: str = "ramp",
) -> Trace:
    """A linear ramp from ``start`` to ``end`` (either direction)."""
    if start < 0 or end < 0:
        raise ValueError("levels must be >= 0")
    t = _times(n, period)
    return Trace(name, t, np.linspace(start, end, n))
