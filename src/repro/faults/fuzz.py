"""Deterministic fault-schedule fuzzing across every fault surface.

``repro chaos fuzz`` samples randomized-but-reproducible
:class:`~repro.faults.plan.FaultPlan` scenarios -- machine faults into
the resilient placement loop, delivery faults into the serve ingest
path, SIGKILL/stall faults into the supervised executor -- executes
each one, and judges the outcome against the invariant oracles of
:mod:`repro.faults.oracles`.  Violations are minimized by
:mod:`repro.faults.shrink` into replayable repro plans, and the whole
campaign is summarized in a canonical ``resilience.json`` scorecard.

Everything derives from the campaign seed through named RNG streams
(run ``i`` owns registry seed ``seed * 1_000_003 + i``, decisions come
from its ``fuzz.plan`` stream), no wall clock is read and scenario
work directories are deleted after judging, so the same seed always
produces byte-identical plans, repros and scorecard.
"""

from __future__ import annotations

import hashlib
import math
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector
from repro.faults.oracles import (
    ORACLE_NAMES,
    OracleVerdict,
    PlacementOutcome,
    RunContext,
    ServeOutcome,
    WorkersOutcome,
    check_all,
    failures,
)
from repro.faults.plan import (
    DRIVER_FUZZ,
    PLANTED_VM_LEAK,
    FaultPlan,
    PlacementPlan,
    ServePlan,
    WorkerPlan,
    canonical_json,
    dump_plan,
)
from repro.faults.schedule import build_schedule
from repro.faults.service import ServiceFaultConfig
from repro.faults.workers import (
    WORKER_KILL,
    WORKER_STALL,
    FaultableCell,
    plan_worker_faults,
)
from repro.obs import runtime as _obs
from repro.perf import pool as warmpool
from repro.perf import supervisor as _supervisor
from repro.perf.cells import MicrobenchCell
from repro.perf.executor import run_cells
from repro.perf.supervisor import SupervisorConfig
from repro.placement.migration import HotspotDetector, MigrationPlanner
from repro.placement.resilient import (
    MigrationExecutor,
    PmCircuitBreaker,
    ResilientControlLoop,
    RetryPolicy,
)
from repro.serve.service import PredictionService
from repro.serve.swarm import SwarmConfig, run_swarm
from repro.serve.wal import RECORD_SAMPLE, SampleWAL
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.workloads.suite import make_benchmark
from repro.xen.specs import VMSpec

#: Scorecard schema tag.
SCORECARD_SCHEMA = "repro-resilience/1"
SCORECARD_NAME = "resilience.json"

#: Loop constants shared with the chaosb experiment (one operating
#: point for both hand-run and fuzzed placement scenarios).
LOOP_INTERVAL_S = 2.0
RETRY_MAX_ATTEMPTS = 4
RETRY_BACKOFF_S = 2.0
BREAKER_THRESHOLD = 3
BREAKER_COOLDOWN_S = 20.0
DETECTOR_K = 2
DETECTOR_N = 4
DETECTOR_FRAC = 0.6
PLANNER_FRAC = 0.6


@dataclass(frozen=True)
class FuzzConfig:
    """Shape of one fuzz campaign."""

    seed: int = 2015
    runs: int = 4
    #: Per-run probability that a surface is driven at all.
    placement_prob: float = 0.85
    serve_prob: float = 0.6
    worker_prob: float = 0.25
    #: Execute each placement surface twice and compare (the
    #: replay-determinism oracle); the shrinker turns this off.
    check_determinism: bool = True
    #: Training-sweep length behind the shared placement model.
    train_duration: float = 20.0

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        for name in ("placement_prob", "serve_prob", "worker_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if self.train_duration <= 0:
            raise ValueError("train_duration must be positive")


def _run_seed(campaign_seed: int, index: int) -> int:
    """Registry seed of campaign run ``index`` (mirrors RngRegistry.spawn)."""
    return campaign_seed * 1_000_003 + index


def placement_names(pp: PlacementPlan) -> Tuple[List[str], List[str]]:
    """The PM / VM name sets a placement plan's cluster uses."""
    pms = [f"pm{i + 1}" for i in range(pp.pm_count)]
    vms = [f"hot{i}" for i in range(pp.hot_vms)]
    vms += [f"bg{i}" for i in range(pp.bg_vms)]
    return pms, vms


# --------------------------------------------------------------------------
# Plan sampling.
# --------------------------------------------------------------------------


def _zero_inflated(stream, zero_prob: float, low: float, high: float) -> float:
    """0 with probability ``zero_prob``, else uniform in [low, high]."""
    if float(stream.random()) < zero_prob:
        return 0.0
    return float(stream.uniform(low, high))


def _null_placement(seed: int, train_duration: float) -> PlacementPlan:
    return PlacementPlan(
        seed=seed,
        duration_s=40.0,
        train_duration=train_duration,
        migration_failure_prob=0.0,
        pm_count=3,
        hot_vms=4,
        bg_vms=2,
        config=FaultConfig(),
        events=(),
    )


def _sample_placement(
    stream, reg: RngRegistry, train_duration: float
) -> PlacementPlan:
    seed = int(stream.integers(1, 2**31))
    duration = float(stream.choice((30.0, 40.0, 50.0)))
    pm_count = int(stream.integers(2, 5))
    hot_vms = 4
    bg_vms = max(pm_count - 1, 1)
    config = FaultConfig(
        pm_crash_rate=_zero_inflated(stream, 0.35, 1.0 / 120.0, 1.0 / 40.0),
        pm_reboot_s=float(stream.uniform(5.0, 15.0)),
        vm_stall_rate=_zero_inflated(stream, 0.35, 1.0 / 150.0, 1.0 / 50.0),
        vm_stall_s=float(stream.uniform(2.0, 6.0)),
        vm_crash_rate=_zero_inflated(stream, 0.6, 1.0 / 200.0, 1.0 / 80.0),
        vm_restart_s=float(stream.uniform(4.0, 10.0)),
        nic_degrade_rate=_zero_inflated(stream, 0.35, 1.0 / 100.0, 1.0 / 30.0),
        nic_degrade_s=float(stream.uniform(4.0, 12.0)),
    )
    plan = PlacementPlan(
        seed=seed,
        duration_s=duration,
        train_duration=train_duration,
        migration_failure_prob=float(stream.choice((0.0, 0.15, 0.3))),
        pm_count=pm_count,
        hot_vms=hot_vms,
        bg_vms=bg_vms,
        config=config,
        events=(),
    )
    pm_names, vm_names = placement_names(plan)
    events = tuple(
        build_schedule(
            config, reg, horizon=duration,
            pm_names=pm_names, vm_names=vm_names,
        )
    )
    return PlacementPlan(
        seed=plan.seed,
        duration_s=plan.duration_s,
        train_duration=plan.train_duration,
        migration_failure_prob=plan.migration_failure_prob,
        pm_count=plan.pm_count,
        hot_vms=plan.hot_vms,
        bg_vms=plan.bg_vms,
        config=plan.config,
        events=events,
    )


def _sample_serve(stream) -> ServePlan:
    ticks = int(stream.choice((120, 160, 200)))
    drift_at = ticks // 2 if float(stream.random()) < 0.5 else 0
    crash_at = (
        max(1, ticks // 3) if float(stream.random()) < 0.4 else None
    )
    faults = ServiceFaultConfig(
        loss_prob=_zero_inflated(stream, 0.4, 0.01, 0.08),
        dup_prob=_zero_inflated(stream, 0.4, 0.01, 0.08),
        reorder_prob=_zero_inflated(stream, 0.4, 0.01, 0.08),
        stuck_prob=_zero_inflated(stream, 0.6, 0.002, 0.01),
        corrupt_prob=_zero_inflated(stream, 0.4, 0.01, 0.06),
    )
    return ServePlan(
        seed=int(stream.integers(1, 2**31)),
        pms=int(stream.integers(2, 4)),
        ticks=ticks,
        queries_per_tick=2,
        drift_at=drift_at,
        drift_scale=1.6,
        crash_at_tick=crash_at,
        faults=faults,
    )


def _sample_workers(stream) -> WorkerPlan:
    return WorkerPlan(
        seed=int(stream.integers(1, 2**31)),
        n_cells=int(stream.integers(4, 7)),
        kill_rate=float(stream.choice((0.0, 0.2, 0.4))),
        stall_rate=float(stream.choice((0.0, 0.25))),
        stall_s=0.2,
        jobs=2,
        chunk=int(stream.choice((2, 3))),
    )


def sample_plan(cfg: FuzzConfig, index: int) -> FaultPlan:
    """Draw campaign run ``index``'s plan -- a pure function of (seed, i).

    Run 0 is pinned to the null placement-only plan so every campaign,
    however small, exercises the zero-fault byte-identity oracle.
    """
    if index < 0:
        raise ValueError("index must be >= 0")
    seed = _run_seed(cfg.seed, index)
    if index == 0:
        return FaultPlan(
            seed=seed,
            driver=DRIVER_FUZZ,
            placement=_null_placement(seed, cfg.train_duration),
        )
    reg = RngRegistry(seed)
    stream = reg("fuzz.plan")
    placement_on = float(stream.random()) < cfg.placement_prob
    serve_on = float(stream.random()) < cfg.serve_prob
    workers_on = float(stream.random()) < cfg.worker_prob
    if not (placement_on or serve_on or workers_on):
        placement_on = True
    return FaultPlan(
        seed=seed,
        driver=DRIVER_FUZZ,
        placement=(
            _sample_placement(stream, reg, cfg.train_duration)
            if placement_on else None
        ),
        serve=_sample_serve(stream) if serve_on else None,
        workers=_sample_workers(stream) if workers_on else None,
    )


# --------------------------------------------------------------------------
# Scenario execution.
# --------------------------------------------------------------------------


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _dir_digest(root: Path) -> str:
    """Content digest of a state directory (relative paths + bytes)."""
    h = hashlib.sha256()
    if root.is_dir():
        for path in sorted(root.rglob("*")):
            if path.is_file():
                h.update(path.relative_to(root).as_posix().encode("utf-8"))
                h.update(b"\0")
                h.update(path.read_bytes())
                h.update(b"\0")
    return h.hexdigest()


def default_model(train_duration: float):
    """The multi-VM model behind every fuzzed placement loop (memoized)."""
    from repro.experiments.prediction import trained_models

    _single, multi = trained_models(duration=train_duration)
    return multi


def _run_placement(
    pp: PlacementPlan,
    model,
    planted: Optional[str],
    *,
    with_injector: bool = True,
) -> PlacementOutcome:
    """Drive one resilient-placement scenario and record its outcome."""
    sim = Simulator(seed=pp.seed, sanitize=True)
    cluster = Cluster(sim)
    pm_names, _vm_names = placement_names(pp)
    for name in pm_names:
        cluster.create_pm(name)
    for i in range(pp.hot_vms):
        vm = cluster.place_vm(
            VMSpec(name=f"hot{i}", mem_mb=256), pm_names[0]
        )
        make_benchmark("cpu", 95.0).attach(vm)
    spread = pm_names[1:] or pm_names
    for i in range(pp.bg_vms):
        vm = cluster.place_vm(
            VMSpec(name=f"bg{i}", mem_mb=256), spread[i % len(spread)]
        )
        make_benchmark("cpu", 10.0).attach(vm)
    guests_before = sum(len(pm.vms) for pm in cluster.pms.values())
    cluster.start()

    injector = None
    if with_injector:
        injector = FaultInjector(
            cluster, pp.config,
            horizon=pp.duration_s, schedule=list(pp.events),
        )
        injector.arm()
    breaker = PmCircuitBreaker(
        failure_threshold=BREAKER_THRESHOLD, cooldown_s=BREAKER_COOLDOWN_S
    )
    executor = MigrationExecutor(
        cluster,
        policy=RetryPolicy(
            max_attempts=RETRY_MAX_ATTEMPTS, backoff_s=RETRY_BACKOFF_S
        ),
        breaker=breaker,
        failure_prob=pp.migration_failure_prob,
    )
    loop = ResilientControlLoop(
        cluster,
        model,
        interval=LOOP_INTERVAL_S,
        detector=HotspotDetector(
            model, k=DETECTOR_K, n=DETECTOR_N, threshold_frac=DETECTOR_FRAC
        ),
        planner=MigrationPlanner(model, target_frac=PLANNER_FRAC),
        executor=executor,
    )
    loop.start()

    if planted == PLANTED_VM_LEAK:
        def _leak(_event) -> None:
            victims = sorted(vm.name for vm in cluster.all_vms())
            if not victims:
                return
            try:
                pm = cluster.pm_of(victims[0])
            except KeyError:
                return
            # The planted bug: a guest vanishes without a migration --
            # exactly what vm-conservation must catch.
            pm.remove_vm(victims[0])

        sim.at(pp.duration_s / 2.0, _leak)

    sim.run_until(pp.duration_s)

    stats = {
        "submitted": executor.stats.submitted,
        "succeeded": executor.stats.succeeded,
        "rollbacks": executor.stats.rollbacks,
        "retries": executor.stats.retries,
        "abandoned": executor.stats.abandoned,
        "vetoed": executor.stats.vetoed,
    }
    final_placement = {
        name: sorted(cluster.pms[name].vms)
        for name in sorted(cluster.pms)
    }
    attempts = [
        [a.time, a.vm, a.src, a.dst, a.attempt, a.ok, a.reason]
        for a in executor.log
    ]
    transitions = tuple(breaker.transitions)
    draw_counts: Dict[str, int] = (
        sim.sanitizer.snapshot() if sim.sanitizer is not None else {}
    )
    digest = _sha256(canonical_json({
        "guests_before": guests_before,
        "final_placement": final_placement,
        "stats": stats,
        "pending": executor.pending,
        "attempts": attempts,
        "transitions": [list(t) for t in transitions],
        "rounds": loop.rounds,
        "hot_rounds": loop.hot_rounds,
        "missing_observations": loop.missing_observations,
        "applied": (
            [
                [ev.time, ev.kind, ev.target, ev.duration]
                for ev in injector.applied
            ]
            if injector is not None else []
        ),
    }))
    return PlacementOutcome(
        horizon=pp.duration_s,
        guests_before=guests_before,
        guests_after=sum(len(pm.vms) for pm in cluster.pms.values()),
        stats=stats,
        pending=executor.pending,
        applied_events=len(injector.applied) if injector is not None else 0,
        skipped_events=len(injector.skipped) if injector is not None else 0,
        breaker_transitions=transitions,
        breaker_opened=breaker.opened,
        breaker_cooldown_s=breaker.cooldown_s,
        rounds=loop.rounds,
        missing_observations=loop.missing_observations,
        events=pp.events,
        digest=digest,
        draw_counts=draw_counts,
    )


def _run_serve(sp: ServePlan, workdir: Path) -> ServeOutcome:
    """Drive one serve-ingest scenario and audit its durable state."""
    swarm_cfg = SwarmConfig(
        pms=sp.pms,
        ticks=sp.ticks,
        samples_per_tick=1,
        queries_per_tick=sp.queries_per_tick,
        seed=sp.seed,
        drift_at=sp.drift_at,
        drift_scale=sp.drift_scale,
        faults=sp.faults if sp.faults.faulty() else None,
    )
    clean = workdir / "clean"
    answers: List[Tuple[str, str, bool, Optional[int], bool]] = []

    def _collect(answer) -> None:
        answers.append((
            answer.pm,
            answer.status,
            answer.degraded,
            answer.version,
            answer.predictions is not None,
        ))

    report = run_swarm(clean, swarm_cfg, on_answer=_collect)
    clean_digest = _dir_digest(clean)

    # WAL replay idempotency: reopening the state dir twice must leave
    # its bytes and its rendered status untouched.
    reopen_digests: List[str] = []
    reopen_status: List[str] = []
    promoted: Dict[str, Tuple[int, ...]] = {}
    outlier_limit = 0.0
    for _attempt in range(2):
        service = PredictionService(clean)
        reopen_status.append(service.status_report())
        outlier_limit = service.config.outlier_limit
        promoted = {
            pm: tuple(mv.version for mv in service.registry.history(pm))
            for pm in swarm_cfg.pm_names()
        }
        service.wal.close()
        reopen_digests.append(_dir_digest(clean))

    # No silently-valid samples: everything the WAL accepted must have
    # passed the validity bound (corrupted deliveries become strikes).
    wal_bad: List[str] = []
    wal_samples = 0
    for record in SampleWAL(clean).iter_records():
        if record.kind != RECORD_SAMPLE:
            continue
        wal_samples += 1
        values = list(record.x) + [v for _k, v in record.y]
        for value in values:
            if not math.isfinite(value) or abs(value) > outlier_limit:
                wal_bad.append(
                    f"{record.pm} seq={record.seq}: accepted value {value!r}"
                )
                break

    resumed_digest: Optional[str] = None
    if sp.crash_at_tick is not None:
        resumed = workdir / "resumed"
        run_swarm(resumed, swarm_cfg, stop_after_tick=sp.crash_at_tick)
        run_swarm(resumed, swarm_cfg)
        resumed_digest = _dir_digest(resumed)

    return ServeOutcome(
        report=report.as_dict(),
        answers=tuple(answers),
        promoted=promoted,
        clean_digest=clean_digest,
        reopen_digests=(reopen_digests[0], reopen_digests[1]),
        reopen_status=(reopen_status[0], reopen_status[1]),
        wal_bad_samples=tuple(wal_bad),
        wal_samples=wal_samples,
        resumed_digest=resumed_digest,
        outlier_limit=outlier_limit,
    )


def _run_workers(wp: WorkerPlan, workdir: Path) -> WorkersOutcome:
    """Drive one supervised-executor scenario against a clean reference."""
    planned = plan_worker_faults(
        wp.n_cells,
        seed=wp.seed,
        kill_rate=wp.kill_rate,
        stall_rate=wp.stall_rate,
        stall_s=wp.stall_s,
    )
    by_index = {fault.index: fault for fault in planned}
    inners = [
        MicrobenchCell(
            kind="cpu", n_vms=1, level=25.0, index=i, duration=2.0,
            seed=wp.seed % 1_000_000 + i,
        )
        for i in range(wp.n_cells)
    ]
    expected = tuple(cell.run()[0] for cell in inners)
    marker_dir = workdir / "markers"
    cells = [
        FaultableCell(
            inner=inner,
            marker_dir=str(marker_dir),
            fault=(
                by_index[i].kind if i in by_index else None
            ),
            stall_s=wp.stall_s,
            tag=f"fuzz{i}",
        )
        for i, inner in enumerate(inners)
    ]
    _supervisor.reset_stats()
    try:
        got = run_cells(
            cells,
            jobs=wp.jobs,
            chunk=wp.chunk,
            supervisor=SupervisorConfig(deadline_s=60.0, max_attempts=3),
        )
    finally:
        stats = _supervisor.stats()
        warmpool.shutdown_pool()
    markers = (
        len(sorted(marker_dir.glob("*.tripped")))
        if marker_dir.is_dir() else 0
    )
    kinds = sorted(fault.kind for fault in planned)
    return WorkersOutcome(
        expected=expected,
        got=tuple(got),
        planned=tuple((fault.index, fault.kind) for fault in planned),
        markers=markers,
        retries=stats.retries,
        kills=kinds.count(WORKER_KILL),
        stalls=kinds.count(WORKER_STALL),
    )


def execute_plan(
    plan: FaultPlan,
    *,
    workdir: Path,
    model=None,
    check_determinism: bool = True,
) -> Tuple[RunContext, List[OracleVerdict]]:
    """Execute one plan across its surfaces and judge every oracle."""
    workdir = Path(workdir)
    ctx = RunContext(plan=plan)
    if plan.placement is not None:
        if model is None:
            model = default_model(plan.placement.train_duration)
        ctx.placement = _run_placement(plan.placement, model, plan.planted)
        if check_determinism:
            ctx.placement_repeat = _run_placement(
                plan.placement, model, plan.planted
            )
        if plan.is_null():
            ctx.placement_bare_digest = _run_placement(
                plan.placement, model, plan.planted, with_injector=False
            ).digest
    if plan.serve is not None:
        ctx.serve = _run_serve(plan.serve, workdir / "serve")
    if plan.workers is not None:
        ctx.workers = _run_workers(plan.workers, workdir / "workers")
    return ctx, check_all(ctx)


# --------------------------------------------------------------------------
# Campaign.
# --------------------------------------------------------------------------


def plan_coverage(plan: FaultPlan) -> List[str]:
    """The fault classes one plan actually drives (scorecard buckets)."""
    classes: Set[str] = set()
    pp = plan.placement
    if pp is not None:
        for ev in pp.events:
            classes.add(f"machine:{ev.kind}")
        if pp.migration_failure_prob > 0.0:
            classes.add("migration:mid-flight")
    sp = plan.serve
    if sp is not None:
        for attr in ("loss", "dup", "reorder", "stuck", "corrupt"):
            if getattr(sp.faults, f"{attr}_prob") > 0.0:
                classes.add(f"delivery:{attr}")
        if sp.crash_at_tick is not None:
            classes.add("serve:crash-resume")
        if sp.drift_at > 0:
            classes.add("serve:drift")
    wp = plan.workers
    if wp is not None:
        if wp.kill_rate > 0.0:
            classes.add(f"worker:{WORKER_KILL}")
        if wp.stall_rate > 0.0:
            classes.add(f"worker:{WORKER_STALL}")
    if plan.planted is not None:
        classes.add(f"planted:{plan.planted}")
    if plan.is_null():
        classes.add("null")
    return sorted(classes)


def run_campaign(cfg: FuzzConfig, out_dir: Path) -> Dict[str, object]:
    """Run one fuzz campaign; write plans, repros and the scorecard.

    Returns the scorecard dict (also written canonically to
    ``<out_dir>/resilience.json``).  Work directories are scenario-
    scoped and deleted after judging, so ``out_dir`` ends up holding
    only byte-reproducible artifacts.
    """
    from repro.faults.shrink import shrink_plan

    out_dir = Path(out_dir)
    plans_dir = out_dir / "plans"
    repros_dir = out_dir / "repros"
    work_dir = out_dir / "work"
    plans_dir.mkdir(parents=True, exist_ok=True)
    model = default_model(cfg.train_duration)

    tallies = {
        name: {"checked": 0, "passed": 0, "failed": 0}
        for name in ORACLE_NAMES
    }
    coverage: Dict[str, int] = {}
    violations: List[Dict[str, object]] = []

    for index in range(cfg.runs):
        plan = sample_plan(cfg, index)
        plan_name = f"run-{index:04d}.json"
        dump_plan(plan, plans_dir / plan_name)
        for klass in plan_coverage(plan):
            coverage[klass] = coverage.get(klass, 0) + 1
        run_work = work_dir / f"run-{index:04d}"
        _obs.inc("chaos_fuzz_runs_total")
        with _obs.span("chaos.fuzz.run", "chaos", run=index):
            _ctx, verdicts = execute_plan(
                plan,
                workdir=run_work,
                model=model,
                check_determinism=cfg.check_determinism,
            )
        shutil.rmtree(run_work, ignore_errors=True)
        for verdict in verdicts:
            tally = tallies[verdict.name]
            tally["checked"] += 1
            tally["passed" if verdict.passed else "failed"] += 1
        failed = failures(verdicts)
        if failed:
            for verdict in failed:
                _obs.inc(
                    "chaos_fuzz_violations_total", oracle=verdict.name
                )
            shrink_work = work_dir / f"shrink-{index:04d}"
            result = shrink_plan(
                plan,
                [v.name for v in failed],
                _make_judge(model, shrink_work),
            )
            shutil.rmtree(shrink_work, ignore_errors=True)
            repro_name = f"run-{index:04d}.min.json"
            repros_dir.mkdir(parents=True, exist_ok=True)
            dump_plan(result.min_plan, repros_dir / repro_name)
            violations.append({
                "run": index,
                "plan": f"plans/{plan_name}",
                "failed": [
                    {"oracle": v.name, "detail": v.detail} for v in failed
                ],
                "min_plan": f"repros/{repro_name}",
                "shrink_executions": result.executions,
                "shrink_steps": result.steps,
            })

    shutil.rmtree(work_dir, ignore_errors=True)
    scorecard: Dict[str, object] = {
        "schema": SCORECARD_SCHEMA,
        "seed": cfg.seed,
        "runs": cfg.runs,
        "oracles": {name: tallies[name] for name in sorted(tallies)},
        "coverage": {k: coverage[k] for k in sorted(coverage)},
        "violations": violations,
        "all_passed": not violations,
    }
    (out_dir / SCORECARD_NAME).write_text(
        canonical_json(scorecard), encoding="utf-8"
    )
    _obs.set_gauge("chaos_fuzz_violations", len(violations))
    return scorecard


def _make_judge(model, work_root: Path):
    """A shrinker judge: execute a candidate, return failing oracle names.

    Determinism re-checking is off during shrinking (the shrinker
    preserves whichever originally-failing oracle it is chasing, and
    double-executing every candidate would double the budget).
    """
    counter = [0]

    def _judge(candidate: FaultPlan) -> List[str]:
        counter[0] += 1
        workdir = work_root / f"cand-{counter[0]:05d}"
        try:
            _ctx, verdicts = execute_plan(
                candidate,
                workdir=workdir,
                model=model,
                check_determinism=False,
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        return [v.name for v in failures(verdicts)]

    return _judge
