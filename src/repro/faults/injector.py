"""Applies a fault schedule to a live cluster through simulator events.

The :class:`FaultInjector` is the bridge between the declarative
schedule (:mod:`repro.faults.schedule`) and the machine-level hooks
(:meth:`~repro.xen.machine.PhysicalMachine.fail`,
:attr:`~repro.xen.vm.GuestVM.stalled`,
:meth:`~repro.xen.devices.PhysicalNic.degrade`).  Apply and revert are
scheduled as simulator events ahead of workloads and quanta, so a fault
landing at second *t* is visible to everything that runs at *t*.

Targets are resolved *at fire time*: a VM that migrated keeps stalling
wherever it lives now, and a fault aimed at a target that vanished is
dropped (and counted) rather than crashing the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.faults.config import (
    KIND_NIC_DEGRADE,
    KIND_PM_CRASH,
    KIND_VM_CRASH,
    KIND_VM_STALL,
    FaultConfig,
)
from repro.faults.schedule import FaultEvent, build_schedule

#: Faults land before workload updates (-10) and machine quanta (0).
FAULT_PRIORITY = -20


class FaultInjector:
    """Arms a deterministic fault schedule against one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        config: FaultConfig,
        *,
        horizon: float,
        schedule: Optional[Sequence[FaultEvent]] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.horizon = horizon
        if schedule is None:
            schedule = build_schedule(
                config,
                cluster.sim.rng,
                horizon=horizon,
                pm_names=list(cluster.pms),
                vm_names=[vm.name for vm in cluster.all_vms()],
            )
        self.schedule: List[FaultEvent] = list(schedule)
        #: Faults actually applied (redundant/unresolvable ones excluded).
        self.applied: List[FaultEvent] = []
        #: Scheduled faults whose target could not be resolved when due.
        self.skipped: List[FaultEvent] = []
        self._armed = False

    # -- lifecycle ---------------------------------------------------------

    def arm(self) -> int:
        """Schedule every fault of the schedule; returns the count."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        now = self.cluster.sim.now
        for ev in self.schedule:
            self.cluster.sim.at(
                now + ev.time,
                lambda _e, ev=ev: self._apply(ev),
                priority=FAULT_PRIORITY,
            )
        self._armed = True
        return len(self.schedule)

    # -- statistics --------------------------------------------------------

    def applied_by_kind(self) -> Dict[str, int]:
        """Count of applied faults per kind."""
        out: Dict[str, int] = {}
        for ev in self.applied:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    # -- application -------------------------------------------------------

    def _apply(self, ev: FaultEvent) -> None:
        handler = {
            KIND_PM_CRASH: self._pm_crash,
            KIND_VM_STALL: self._vm_stall,
            KIND_VM_CRASH: self._vm_stall,
            KIND_NIC_DEGRADE: self._nic_degrade,
        }[ev.kind]
        if handler(ev):
            self.applied.append(ev)
        else:
            self.skipped.append(ev)

    def _pm_crash(self, ev: FaultEvent) -> bool:
        pm = self.cluster.pms.get(ev.target)
        if pm is None or pm.failed:
            return False
        pm.fail()
        self.cluster.sim.after(
            ev.duration, lambda _e: pm.restore(), priority=FAULT_PRIORITY
        )
        return True

    def _vm_stall(self, ev: FaultEvent) -> bool:
        try:
            vm = self.cluster.find_vm(ev.target)
        except KeyError:
            return False
        if vm.stalled:
            return False
        vm.stalled = True
        if ev.kind == KIND_VM_CRASH:
            # A crash-restart loses in-flight demand; a plain stall
            # resumes where it hung.
            vm.demand.reset()
        self.cluster.sim.after(
            ev.duration, lambda _e: self._vm_unstall(ev.target),
            priority=FAULT_PRIORITY,
        )
        return True

    def _vm_unstall(self, name: str) -> None:
        try:
            self.cluster.find_vm(name).stalled = False
        except KeyError:
            pass  # the VM disappeared during the outage

    def _nic_degrade(self, ev: FaultEvent) -> bool:
        pm = self.cluster.pms.get(ev.target)
        if pm is None or pm.nic.degraded:
            return False
        pm.nic.degrade(
            bw_factor=self.config.nic_bw_factor,
            loss_frac=self.config.nic_loss_frac,
        )
        self.cluster.sim.after(
            ev.duration, lambda _e: pm.nic.restore(), priority=FAULT_PRIORITY
        )
        return True
