"""Delivery faults between the monitor and the prediction service.

The serve ingest path (:mod:`repro.serve`) assumes nothing about its
transport; this module makes the transport's failure modes injectable.
One :class:`ServiceFaults` instance sits per PM stream between the
trace generator and :meth:`PredictionService.deliver`, drawing from its
own named stream (``faults.service.<pm>``) so enabling it never shifts
the trace itself.  Faults modeled, in adjudication order:

* **stuck counter** -- the monitor keeps emitting fresh sequence
  numbers whose values are frozen at the last healthy reading (a wedged
  ``/proc`` reader); bursts with geometric length.
* **corruption** -- values replaced by NaN/absurd magnitudes (the
  quarantine trigger in the service); bursts with geometric length.
* **loss** -- the sample never arrives; bursts with geometric length
  (the serve-side analogue of :class:`repro.faults.sampling.SampleFaults`
  dropout).
* **duplication** -- the sample is delivered twice in the same tick.
* **reordering** -- delivery is delayed a geometric number of ticks,
  so it arrives after its successors.

Every class draws only when its probability is nonzero, preserving
stream alignment across configs, and a null config draws nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

#: Stream-name prefix; the full stream is ``faults.service.<pm>``.
STREAM_PREFIX = "faults.service"


def stream_name(pm: str) -> str:
    """The named RNG stream for one PM's delivery-fault process."""
    return f"{STREAM_PREFIX}.{pm}"


@dataclass(frozen=True)
class ServiceFaultConfig:
    """Delivery-fault probabilities (all zero = null = draw nothing)."""

    #: Per-sample probability a loss burst starts / its mean length.
    loss_prob: float = 0.0
    loss_burst_mean: float = 3.0
    #: Per-sample probability of same-tick duplicated delivery.
    dup_prob: float = 0.0
    #: Per-sample probability of delayed (reordered) delivery / mean
    #: extra ticks of delay.
    reorder_prob: float = 0.0
    reorder_delay_mean: float = 2.0
    #: Per-sample probability a stuck-counter burst starts / mean length.
    stuck_prob: float = 0.0
    stuck_burst_mean: float = 5.0
    #: Per-sample probability a corruption burst starts / mean length.
    corrupt_prob: float = 0.0
    corrupt_burst_mean: float = 3.0

    def __post_init__(self) -> None:
        for attr in ("loss_prob", "dup_prob", "reorder_prob",
                     "stuck_prob", "corrupt_prob"):
            p = getattr(self, attr)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {p}")
        for attr in ("loss_burst_mean", "reorder_delay_mean",
                     "stuck_burst_mean", "corrupt_burst_mean"):
            if getattr(self, attr) < 1.0:
                raise ValueError(f"{attr} must be >= 1")

    def faulty(self) -> bool:
        """Whether any delivery fault can ever fire."""
        return any(
            getattr(self, attr) > 0.0
            for attr in ("loss_prob", "dup_prob", "reorder_prob",
                         "stuck_prob", "corrupt_prob")
        )


@dataclass(frozen=True)
class Delivery:
    """One (possibly faulted) delivery attempt bound for the service."""

    tick: int
    seq: int
    x: Tuple[float, ...]
    y: Dict[str, float]


class ServiceFaults:
    """Per-PM delivery-fault process (deterministic given its stream)."""

    def __init__(
        self, config: ServiceFaultConfig, rng: np.random.Generator
    ) -> None:
        self.config = config
        self._rng = rng
        self._loss_left = 0
        self._stuck_left = 0
        self._corrupt_left = 0
        self._frozen: Tuple[Tuple[float, ...], Dict[str, float]] | None = None
        #: Deliveries delayed by reordering, keyed by due tick.
        self._pending: Dict[int, List[Delivery]] = {}
        #: Observable tallies.
        self.lost = 0
        self.duplicated = 0
        self.reordered = 0
        self.stuck = 0
        self.corrupted = 0

    def _burst(self, mean: float) -> int:
        return int(self._rng.geometric(1.0 / mean))

    def offer(
        self, seq: int, tick: int, x: Tuple[float, ...], y: Dict[str, float]
    ) -> List[Delivery]:
        """Pass one trace sample through the fault process.

        Returns the deliveries due *this* tick (zero, one or two);
        reordered deliveries surface later via :meth:`due`.
        """
        cfg = self.config
        # Stuck counter: fresh seq, frozen values.
        if self._stuck_left > 0:
            self._stuck_left -= 1
            if self._frozen is not None:
                x, y = self._frozen[0], dict(self._frozen[1])
                self.stuck += 1
        elif cfg.stuck_prob > 0.0 and self._rng.random() < cfg.stuck_prob:
            self._stuck_left = self._burst(cfg.stuck_burst_mean) - 1
            if self._frozen is not None:
                x, y = self._frozen[0], dict(self._frozen[1])
                self.stuck += 1
        else:
            self._frozen = (tuple(x), dict(y))
        # Corruption: NaN feature plus an absurd target magnitude.
        corrupt_now = False
        if self._corrupt_left > 0:
            self._corrupt_left -= 1
            corrupt_now = True
        elif cfg.corrupt_prob > 0.0 and self._rng.random() < cfg.corrupt_prob:
            self._corrupt_left = self._burst(cfg.corrupt_burst_mean) - 1
            corrupt_now = True
        if corrupt_now:
            x = (math.nan,) + tuple(x)[1:]
            y = {k: (1.0e12 if i == 0 else v)
                 for i, (k, v) in enumerate(sorted(y.items()))}
            self.corrupted += 1
        # Loss bursts.
        if self._loss_left > 0:
            self._loss_left -= 1
            self.lost += 1
            return []
        if cfg.loss_prob > 0.0 and self._rng.random() < cfg.loss_prob:
            self._loss_left = self._burst(cfg.loss_burst_mean) - 1
            self.lost += 1
            return []
        # Reordering: the sample leaves now but arrives later.
        if cfg.reorder_prob > 0.0 and self._rng.random() < cfg.reorder_prob:
            delay = self._burst(cfg.reorder_delay_mean)
            due = int(tick) + delay
            self._pending.setdefault(due, []).append(
                Delivery(tick=due, seq=seq, x=tuple(x), y=dict(y))
            )
            self.reordered += 1
            return []
        out = [Delivery(tick=int(tick), seq=seq, x=tuple(x), y=dict(y))]
        if cfg.dup_prob > 0.0 and self._rng.random() < cfg.dup_prob:
            out.append(out[0])
            self.duplicated += 1
        return out

    def due(self, tick: int) -> List[Delivery]:
        """Pop reordered deliveries whose delay expires at ``tick``."""
        out: List[Delivery] = []
        for t in sorted(k for k in self._pending if k <= tick):
            out.extend(self._pending.pop(t))
        return out

    def pending(self) -> int:
        """Reordered deliveries still in flight."""
        return sum(len(v) for v in self._pending.values())
