"""Monitor-sample fault model: dropout bursts and outlier corruption.

The measurement script consults one :class:`SampleFaults` instance per
PM, once per sampling tick.  Two observable regimes:

* **Dropout** -- the whole tick is lost (tool wedged past its slot, SSH
  hiccup).  Dropouts arrive in bursts: a start probability per tick and
  a geometric burst length.  The script records the tick as an explicit
  *gap* with its validity flag cleared -- the failure is observable.
* **Outlier corruption** -- the tick is recorded but its values are
  garbage (clock skew, a stale counter, a tool racing the snapshot).
  The script cannot tell, so the validity flag stays set -- this is the
  failure mode the robust (LMS) regression path exists for.

The model draws from its own named stream, so enabling it never shifts
measurement noise, and a null config draws nothing per tick.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.config import FaultConfig

#: Tick verdicts.
SAMPLE_DROP = "drop"
SAMPLE_OUTLIER = "outlier"


class SampleFaults:
    """Per-PM sampling-fault process (deterministic given its stream)."""

    def __init__(self, config: FaultConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self._burst_left = 0
        #: Ticks lost to dropout so far.
        self.dropped = 0
        #: Ticks silently corrupted so far.
        self.corrupted = 0

    @property
    def active(self) -> bool:
        """Whether any sampling fault can ever fire."""
        return self.config.samples_faulty()

    def next_sample(self) -> Optional[str]:
        """Classify the next tick: drop, outlier, or ``None`` (clean).

        Consumes randomness only for fault classes with nonzero
        probability, preserving stream alignment across configs.
        """
        cfg = self.config
        if self._burst_left > 0:
            self._burst_left -= 1
            self.dropped += 1
            return SAMPLE_DROP
        if cfg.sample_dropout_prob > 0.0 and (
            self._rng.random() < cfg.sample_dropout_prob
        ):
            # Geometric burst: this tick plus (mean - 1) expected more.
            self._burst_left = (
                int(self._rng.geometric(1.0 / cfg.dropout_burst_mean)) - 1
            )
            self.dropped += 1
            return SAMPLE_DROP
        if cfg.outlier_prob > 0.0 and self._rng.random() < cfg.outlier_prob:
            self.corrupted += 1
            return SAMPLE_OUTLIER
        return None

    def corrupt(self, value: float) -> float:
        """Perturb one reading of a corrupted tick.

        Over- or under-reads by the configured scale with equal
        probability -- a skewed clock makes rate counters read both
        ways.  Exact zeros stay zero (dead counters read dead).
        """
        if value == 0.0:  # repro: noqa[REP004] exact zero is the dead-counter sentinel
            return 0.0
        scale = self.config.outlier_scale
        if self._rng.random() < 0.5:
            return value * scale
        return value / scale
