"""Delta-debugging minimizer for failing fault plans.

Given a :class:`~repro.faults.plan.FaultPlan` that violates at least
one invariant oracle, :func:`shrink_plan` greedily applies a fixed,
deterministic sequence of plan transforms -- drop whole surfaces, drop
fault classes, bisect the event schedule, zero rates, halve horizons --
keeping a candidate only when a *judge* confirms it still fails one of
the originally-failing oracles.  Because plans carry their concrete
schedules and every scenario runs under the named-stream RNG
discipline, every candidate (and therefore the final minimal repro) is
bit-reproducible from its JSON form alone.

The judge is injected (``candidate -> failing oracle names``) so this
module stays free of execution machinery; :mod:`repro.faults.fuzz`
provides the real one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.faults.plan import (
    FaultPlan,
    PlacementPlan,
    PlanError,
    ServePlan,
    WorkerPlan,
)

#: Ceiling on judge executions per shrink (a failing campaign run must
#: not turn into an unbounded search).
DEFAULT_BUDGET = 64

#: Horizon floors the shrinker never cuts below.
MIN_DURATION_S = 10.0
MIN_TICKS = 40


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one minimization."""

    min_plan: FaultPlan
    #: Judge executions spent.
    executions: int
    #: Names of the transforms that survived, in application order.
    steps: Tuple[str, ...]


def _replace_placement(plan: FaultPlan, **kwargs) -> Optional[FaultPlan]:
    if plan.placement is None:
        return None
    try:
        return dataclasses.replace(
            plan, placement=dataclasses.replace(plan.placement, **kwargs)
        )
    except PlanError:
        return None


def _replace_serve(plan: FaultPlan, **kwargs) -> Optional[FaultPlan]:
    if plan.serve is None:
        return None
    try:
        return dataclasses.replace(
            plan, serve=dataclasses.replace(plan.serve, **kwargs)
        )
    except PlanError:
        return None


def _replace_workers(plan: FaultPlan, **kwargs) -> Optional[FaultPlan]:
    if plan.workers is None:
        return None
    try:
        return dataclasses.replace(
            plan, workers=dataclasses.replace(plan.workers, **kwargs)
        )
    except PlanError:
        return None


def _drop_surface(plan: FaultPlan, surface: str) -> Optional[FaultPlan]:
    if getattr(plan, surface) is None:
        return None
    try:
        return dataclasses.replace(plan, **{surface: None})
    except PlanError:
        # The last surface, or a planted violation pinned to it.
        return None


def _zero_rate_kwargs(kind: str) -> dict:
    return {
        "pm_crash": {"pm_crash_rate": 0.0},
        "vm_stall": {"vm_stall_rate": 0.0},
        "vm_crash": {"vm_crash_rate": 0.0},
        "nic_degrade": {"nic_degrade_rate": 0.0},
    }[kind]


def _placement_candidates(
    plan: FaultPlan,
) -> Iterator[Tuple[str, Optional[FaultPlan]]]:
    pp = plan.placement
    if pp is None:
        return
    events = pp.events
    if events:
        yield "placement-drop-all-events", _replace_placement(
            plan, events=()
        )
        for kind in sorted({ev.kind for ev in events}):
            kept = tuple(ev for ev in events if ev.kind != kind)
            candidate = _replace_placement(plan, events=kept)
            if candidate is not None:
                candidate = dataclasses.replace(
                    candidate,
                    placement=dataclasses.replace(
                        candidate.placement,
                        config=dataclasses.replace(
                            pp.config, **_zero_rate_kwargs(kind)
                        ),
                    ),
                )
            yield f"placement-drop-kind-{kind}", candidate
        if len(events) >= 2:
            half = len(events) // 2
            yield "placement-first-half", _replace_placement(
                plan, events=events[:half]
            )
            yield "placement-second-half", _replace_placement(
                plan, events=events[half:]
            )
        if len(events) <= 8:
            for i in range(len(events)):
                kept = events[:i] + events[i + 1:]
                yield f"placement-drop-event-{i}", _replace_placement(
                    plan, events=kept
                )
    if pp.migration_failure_prob > 0.0:
        yield "placement-clean-migrations", _replace_placement(
            plan, migration_failure_prob=0.0
        )
    if pp.duration_s > 2.0 * MIN_DURATION_S:
        new_horizon = max(MIN_DURATION_S, pp.duration_s / 2.0)
        kept = tuple(ev for ev in events if ev.time <= new_horizon)
        yield "placement-halve-horizon", _replace_placement(
            plan, duration_s=new_horizon, events=kept
        )
    if not events and (pp.pm_count > 2 or pp.bg_vms > 1):
        yield "placement-shrink-cluster", _replace_placement(
            plan, pm_count=2, bg_vms=1
        )


def _serve_candidates(
    plan: FaultPlan,
) -> Iterator[Tuple[str, Optional[FaultPlan]]]:
    sp = plan.serve
    if sp is None:
        return
    for attr in ("loss", "dup", "reorder", "stuck", "corrupt"):
        if getattr(sp.faults, f"{attr}_prob") > 0.0:
            faults = dataclasses.replace(sp.faults, **{f"{attr}_prob": 0.0})
            yield f"serve-drop-{attr}", _replace_serve(plan, faults=faults)
    if sp.crash_at_tick is not None:
        yield "serve-no-crash", _replace_serve(plan, crash_at_tick=None)
    if sp.drift_at > 0:
        yield "serve-no-drift", _replace_serve(plan, drift_at=0)
    if sp.ticks > 2 * MIN_TICKS:
        new_ticks = max(MIN_TICKS, sp.ticks // 2)
        crash = sp.crash_at_tick
        if crash is not None:
            crash = crash // 2
            if not 0 < crash < new_ticks - 1:
                crash = None
        yield "serve-halve-ticks", _replace_serve(
            plan,
            ticks=new_ticks,
            crash_at_tick=crash,
            drift_at=sp.drift_at // 2,
        )


def _worker_candidates(
    plan: FaultPlan,
) -> Iterator[Tuple[str, Optional[FaultPlan]]]:
    wp = plan.workers
    if wp is None:
        return
    if wp.kill_rate > 0.0:
        yield "workers-no-kills", _replace_workers(plan, kill_rate=0.0)
    if wp.stall_rate > 0.0:
        yield "workers-no-stalls", _replace_workers(plan, stall_rate=0.0)
    if wp.n_cells > 2:
        yield "workers-halve-cells", _replace_workers(
            plan, n_cells=max(2, wp.n_cells // 2)
        )


def candidates(plan: FaultPlan) -> Iterator[Tuple[str, FaultPlan]]:
    """Every next-step reduction of ``plan``, biggest cuts first."""
    raw: List[Tuple[str, Optional[FaultPlan]]] = [
        ("drop-workers", _drop_surface(plan, "workers")),
        ("drop-serve", _drop_surface(plan, "serve")),
        ("drop-placement", _drop_surface(plan, "placement")),
    ]
    raw.extend(_placement_candidates(plan))
    raw.extend(_serve_candidates(plan))
    raw.extend(_worker_candidates(plan))
    for name, candidate in raw:
        if candidate is not None and candidate != plan:
            yield name, candidate


def shrink_plan(
    plan: FaultPlan,
    failing: Sequence[str],
    judge: Callable[[FaultPlan], Sequence[str]],
    *,
    budget: int = DEFAULT_BUDGET,
) -> ShrinkResult:
    """Greedily minimize ``plan`` while it keeps failing.

    ``failing`` names the oracles the original plan violated; a
    candidate is accepted when the judge reports at least one of them
    still failing (a shrink must chase the *same* bug, not trade it
    for a new one).  The transform scan restarts from the top after
    every accepted reduction, so the result is a fixpoint: no single
    remaining transform keeps the failure alive.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    target: Set[str] = set(failing)
    if not target:
        raise ValueError("shrink_plan needs at least one failing oracle")
    best = plan
    executions = 0
    steps: List[str] = []
    progress = True
    while progress and executions < budget:
        progress = False
        for name, candidate in candidates(best):
            if executions >= budget:
                break
            executions += 1
            if target & set(judge(candidate)):
                best = candidate
                steps.append(name)
                progress = True
                break
    return ShrinkResult(
        min_plan=best, executions=executions, steps=tuple(steps)
    )
