"""Deterministic worker-process faults for the supervised executor.

The machine-level schedules in :mod:`repro.faults.schedule` perturb the
*simulated* cluster; this module perturbs the *real* processes that run
experiment cells, so the supervision layer
(:mod:`repro.perf.supervisor`) can be regression-tested against the
failures it exists for: a pool worker SIGKILLed mid-cell (OOM killer,
preemption) and a pool worker that wedges past its deadline.

Victim selection reuses the named-stream discipline of the rest of the
fault subsystem: each fault kind draws from its own
``faults.worker.<kind>`` stream of an :class:`~repro.sim.rng.RngRegistry`
seeded by the caller, so a plan is a pure function of (seed, rates,
cell count) and adding one kind never shifts another's victims.

Because a killed worker cannot remember it was killed, once-only
semantics live on disk: :class:`FaultableCell` arms its fault through a
marker file created with ``O_EXCL`` -- the first attempt trips the
fault and leaves the marker, every retry (in any process) finds the
marker and runs clean.  That makes the fault deterministic *per cell*,
not per wall-clock, which is exactly what byte-identical
interrupted-vs-clean comparisons need.

.. warning::
   A ``kill`` fault terminates the process that runs the cell.  Only
   execute kill-armed cells through a pool (``jobs >= 2``); inline
   execution would kill the supervising process itself.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.perf.cells import Cell
from repro.sim.rng import RngRegistry

#: Worker is SIGKILLed mid-cell (crashed-worker path).
WORKER_KILL = "kill"
#: Worker sleeps past the supervisor deadline (hung-worker path).
WORKER_STALL = "stall"

WORKER_FAULT_KINDS = (WORKER_KILL, WORKER_STALL)


@dataclass(frozen=True)
class WorkerFault:
    """One planned worker fault: which cell index, what happens."""

    index: int
    kind: str
    stall_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(f"unknown worker fault kind {self.kind!r}")
        if self.index < 0:
            raise ValueError("cell index must be >= 0")


def plan_worker_faults(
    n_cells: int,
    *,
    seed: int,
    kill_rate: float = 0.0,
    stall_rate: float = 0.0,
    stall_s: float = 2.0,
) -> List[WorkerFault]:
    """Draw a deterministic per-cell fault plan.

    Each cell index is independently a kill victim with probability
    ``kill_rate`` (stream ``faults.worker.kill``) and a stall victim
    with probability ``stall_rate`` (stream ``faults.worker.stall``);
    a cell drawn for both kills -- the stronger fault wins.  A zero
    rate draws nothing from its stream.
    """
    if n_cells < 0:
        raise ValueError("n_cells must be >= 0")
    for name, rate in (("kill_rate", kill_rate), ("stall_rate", stall_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be a probability, got {rate}")
    rng = RngRegistry(seed)
    victims: Dict[int, str] = {}
    for kind, rate in (
        (WORKER_STALL, stall_rate), (WORKER_KILL, kill_rate),
    ):
        if rate <= 0.0:
            continue
        stream = rng(f"faults.worker.{kind}")
        for index in range(n_cells):
            if float(stream.random()) < rate:
                victims[index] = kind  # kill drawn last overrides stall
    return [
        WorkerFault(
            index=index,
            kind=kind,
            stall_s=stall_s if kind == WORKER_STALL else 0.0,
        )
        for index, kind in sorted(victims.items())
    ]


def _arm(marker: Path) -> bool:
    """Atomically create ``marker``; True exactly once across processes."""
    marker.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


@dataclass(frozen=True, eq=False)
class FaultableCell(Cell):
    """A cell that injects one worker fault on its first attempt.

    Wraps any :class:`~repro.perf.cells.Cell`; ``fault`` is ``None``
    (clean pass-through), :data:`WORKER_KILL` or :data:`WORKER_STALL`.
    ``marker_dir`` holds the once-only markers -- point every cell of
    one run at the same scratch directory.
    """

    inner: Cell
    marker_dir: str
    fault: Optional[str] = None
    stall_s: float = 2.0
    #: Distinguishes markers when the same inner cell appears twice.
    tag: str = ""

    group = "faulted"

    def config(self) -> Dict[str, Any]:
        return {
            "cell": "faultable",
            "inner": self.inner.config(),
            "fault": self.fault,
            "stall_s": self.stall_s,
            "tag": self.tag,
        }

    def _marker(self) -> Path:
        from repro.perf.cache import cell_key

        return Path(self.marker_dir) / f"{cell_key(self, 'faults')}.tripped"

    def run(self) -> Tuple[Any, int]:
        if self.fault is not None and _arm(self._marker()):
            if self.fault == WORKER_KILL:
                os.kill(os.getpid(), signal.SIGKILL)
            elif self.fault == WORKER_STALL:
                time.sleep(self.stall_s)
            else:
                raise ValueError(f"unknown worker fault {self.fault!r}")
        return self.inner.run()

    def label(self) -> str:
        suffix = f"+{self.fault}" if self.fault else ""
        return f"{self.inner.label()}{suffix}"
