"""Deterministic fault schedules from the simulator's RNG registry.

Machine-level faults (PM crash, VM stall/crash, NIC degradation) are
drawn *up front* as a schedule: per (kind, target) an exponential
inter-arrival process from its own named stream
(``faults.<kind>.<target>``).  Because every stream is independent,
adding a fault class -- or raising one rate -- never shifts the random
numbers any other component sees, and a zero rate draws nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.faults.config import (
    FAULT_KINDS,
    KIND_NIC_DEGRADE,
    KIND_PM_CRASH,
    KIND_VM_CRASH,
    KIND_VM_STALL,
    FaultConfig,
)
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what happens to whom, when, for how long."""

    time: float
    kind: str
    target: str
    duration: float

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")

    @property
    def end(self) -> float:
        """When the fault's effect is reverted."""
        return self.time + self.duration

    def active_at(self, t: float) -> bool:
        """Whether the fault is in effect at time ``t``.

        Windows are half-open ``[time, end)``: the fault applies at its
        onset instant and is already reverted at its end instant, so
        back-to-back episodes (``a.end == b.time``) never double-count.
        """
        return self.time <= t < self.end

    def clamped_end(self, horizon: float) -> float:
        """The effective end inside a run of length ``horizon``.

        An episode that starts before the horizon but outlasts it is
        cut short at the horizon; one starting at or beyond the horizon
        contributes nothing (its clamped window is empty).
        """
        return min(max(self.time, min(self.end, horizon)), horizon)

    def clamped_duration(self, horizon: float) -> float:
        """Seconds of effect actually inside ``[0, horizon)``."""
        return self.clamped_end(horizon) - min(self.time, horizon)


def faulty_time(
    events: Iterable[FaultEvent], horizon: float, target: str = ""
) -> float:
    """Total seconds inside ``[0, horizon)`` with >= 1 fault in effect.

    Overlapping and back-to-back windows are merged first so a target
    hit by two simultaneous faults is not counted twice.  With
    ``target`` given, only that target's events count.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    windows = sorted(
        (min(ev.time, horizon), ev.clamped_end(horizon))
        for ev in events
        if (not target or ev.target == target) and ev.time < horizon
    )
    total = 0.0
    cur_start = cur_end = None
    for start, end in windows:
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                total += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    if cur_end is not None:
        total += cur_end - cur_start
    return total


def _arrivals(
    rng: RngRegistry, kind: str, target: str, rate: float, horizon: float
) -> Iterable[float]:
    """Exponential arrival times in ``(0, horizon]`` for one process."""
    if rate <= 0.0:
        return
    stream = rng(f"faults.{kind}.{target}")
    t = 0.0
    while True:
        t += float(stream.exponential(1.0 / rate))
        if t > horizon:
            return
        yield t


def build_schedule(
    config: FaultConfig,
    rng: RngRegistry,
    *,
    horizon: float,
    pm_names: Sequence[str],
    vm_names: Sequence[str] = (),
) -> List[FaultEvent]:
    """Draw the full machine-level fault schedule for one run.

    Targets are iterated in sorted order and each (kind, target) pair
    owns its stream, so the schedule is a pure function of the master
    seed, the config and the name sets.  Overlapping episodes on the
    same target are allowed here; the injector ignores redundant
    applications.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    events: List[FaultEvent] = []
    per_pm = (KIND_PM_CRASH, KIND_NIC_DEGRADE)
    per_vm = (KIND_VM_STALL, KIND_VM_CRASH)
    for kind in per_pm:
        for name in sorted(pm_names):
            for t in _arrivals(rng, kind, name, config.rate_for(kind), horizon):
                events.append(
                    FaultEvent(t, kind, name, config.duration_for(kind))
                )
    for kind in per_vm:
        for name in sorted(vm_names):
            for t in _arrivals(rng, kind, name, config.rate_for(kind), horizon):
                events.append(
                    FaultEvent(t, kind, name, config.duration_for(kind))
                )
    events.sort(key=lambda ev: (ev.time, ev.kind, ev.target))
    return events
