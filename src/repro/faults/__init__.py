"""Fault injection: deterministic failure schedules for the whole stack.

The paper's pipeline assumes every sample arrives and every migration
succeeds; this package makes the opposite assumption injectable so the
monitoring, modeling and placement layers can be exercised -- and
regression-tested -- under PM crashes, guest stalls, NIC degradation
and monitor-sample faults.  Every fault stream is named and independent
(:mod:`repro.sim.rng`), and a null :class:`FaultConfig` draws nothing:
zero-fault runs are byte-identical to the pre-fault-subsystem code.
"""

from repro.faults.config import (
    FAULT_KINDS,
    KIND_NIC_DEGRADE,
    KIND_PM_CRASH,
    KIND_VM_CRASH,
    KIND_VM_STALL,
    FaultConfig,
)
from repro.faults.injector import FAULT_PRIORITY, FaultInjector
from repro.faults.sampling import SAMPLE_DROP, SAMPLE_OUTLIER, SampleFaults
from repro.faults.schedule import FaultEvent, build_schedule
from repro.faults.service import (
    Delivery,
    ServiceFaultConfig,
    ServiceFaults,
    stream_name,
)
from repro.faults.workers import (
    WORKER_FAULT_KINDS,
    WORKER_KILL,
    WORKER_STALL,
    FaultableCell,
    WorkerFault,
    plan_worker_faults,
)

__all__ = [
    "Delivery",
    "FAULT_KINDS",
    "FAULT_PRIORITY",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultableCell",
    "ServiceFaultConfig",
    "ServiceFaults",
    "KIND_NIC_DEGRADE",
    "KIND_PM_CRASH",
    "KIND_VM_CRASH",
    "KIND_VM_STALL",
    "SAMPLE_DROP",
    "SAMPLE_OUTLIER",
    "SampleFaults",
    "WORKER_FAULT_KINDS",
    "WORKER_KILL",
    "WORKER_STALL",
    "WorkerFault",
    "build_schedule",
    "plan_worker_faults",
    "stream_name",
]
