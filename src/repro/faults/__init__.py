"""Fault injection: deterministic failure schedules for the whole stack.

The paper's pipeline assumes every sample arrives and every migration
succeeds; this package makes the opposite assumption injectable so the
monitoring, modeling and placement layers can be exercised -- and
regression-tested -- under PM crashes, guest stalls, NIC degradation
and monitor-sample faults.  Every fault stream is named and independent
(:mod:`repro.sim.rng`), and a null :class:`FaultConfig` draws nothing:
zero-fault runs are byte-identical to the pre-fault-subsystem code.
"""

from repro.faults.config import (
    FAULT_KINDS,
    KIND_NIC_DEGRADE,
    KIND_PM_CRASH,
    KIND_VM_CRASH,
    KIND_VM_STALL,
    FaultConfig,
)
from repro.faults.injector import FAULT_PRIORITY, FaultInjector
from repro.faults.oracles import ORACLE_NAMES, OracleVerdict, check_all
from repro.faults.plan import (
    DRIVER_CHAOSB,
    DRIVER_FUZZ,
    PLANTED_VM_LEAK,
    FaultPlan,
    PlacementPlan,
    PlanError,
    ServePlan,
    WorkerPlan,
    dump_plan,
    load_plan,
)
from repro.faults.sampling import SAMPLE_DROP, SAMPLE_OUTLIER, SampleFaults
from repro.faults.schedule import FaultEvent, build_schedule, faulty_time
from repro.faults.service import (
    Delivery,
    ServiceFaultConfig,
    ServiceFaults,
    stream_name,
)
from repro.faults.workers import (
    WORKER_FAULT_KINDS,
    WORKER_KILL,
    WORKER_STALL,
    FaultableCell,
    WorkerFault,
    plan_worker_faults,
)

__all__ = [
    "Delivery",
    "DRIVER_CHAOSB",
    "DRIVER_FUZZ",
    "FAULT_KINDS",
    "FAULT_PRIORITY",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultableCell",
    "ORACLE_NAMES",
    "OracleVerdict",
    "PLANTED_VM_LEAK",
    "PlacementPlan",
    "PlanError",
    "ServePlan",
    "ServiceFaultConfig",
    "ServiceFaults",
    "WorkerPlan",
    "KIND_NIC_DEGRADE",
    "KIND_PM_CRASH",
    "KIND_VM_CRASH",
    "KIND_VM_STALL",
    "SAMPLE_DROP",
    "SAMPLE_OUTLIER",
    "SampleFaults",
    "WORKER_FAULT_KINDS",
    "WORKER_KILL",
    "WORKER_STALL",
    "WorkerFault",
    "build_schedule",
    "check_all",
    "dump_plan",
    "faulty_time",
    "load_plan",
    "plan_worker_faults",
    "stream_name",
]
