"""Fault-model configuration: every failure class the stack can inject.

The paper's pipeline assumes every 1 Hz sample arrives and every
migration succeeds; production multi-tenant measurement is noisy, gappy
and failure-prone (uPredict, arXiv:1908.04491).  :class:`FaultConfig`
is the single knob bundle for the whole fault-injection subsystem:

* **PM crash / reboot** -- the host drops off the fabric for a while;
  its guests freeze and its monitor samples become gaps.
* **VM stall / crash-restart** -- one guest stops consuming resources
  (hung kernel or restart loop) while staying resident in memory.
* **NIC degradation** -- the physical link trains down (bandwidth
  clamp) and drops frames (loss fraction).
* **Monitor sample faults** -- dropout bursts (the measurement script
  misses whole ticks) and silent outlier corruption (clock skew or a
  wedged tool reporting garbage values).

Every rate is a per-second hazard; every probability is per sampling
tick.  A default-constructed config is *null*: no fault path draws a
single random number, so zero-fault runs stay byte-identical to a build
without the subsystem (strictly pay-for-use).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fault kinds produced by the schedule builder, in canonical order.
KIND_PM_CRASH = "pm_crash"
KIND_VM_STALL = "vm_stall"
KIND_VM_CRASH = "vm_crash"
KIND_NIC_DEGRADE = "nic_degrade"

FAULT_KINDS: tuple[str, ...] = (
    KIND_PM_CRASH,
    KIND_VM_STALL,
    KIND_VM_CRASH,
    KIND_NIC_DEGRADE,
)


@dataclass(frozen=True)
class FaultConfig:
    """Rates and shapes of every injectable fault class.

    Rates are events per target per second (exponential inter-arrival);
    probabilities are per monitor tick.  All defaults are zero, so a
    bare ``FaultConfig()`` injects nothing.
    """

    # -- PM crash / reboot ------------------------------------------------
    #: Crash hazard per PM per second.
    pm_crash_rate: float = 0.0
    #: Outage length before the PM comes back.
    pm_reboot_s: float = 30.0

    # -- VM stall / crash-restart ----------------------------------------
    #: Stall hazard per VM per second (guest hangs, then recovers).
    vm_stall_rate: float = 0.0
    #: Stall duration.
    vm_stall_s: float = 5.0
    #: Crash-restart hazard per VM per second (longer outage).
    vm_crash_rate: float = 0.0
    #: Restart duration.
    vm_restart_s: float = 20.0

    # -- NIC degradation --------------------------------------------------
    #: Degradation hazard per PM per second (link trains down).
    nic_degrade_rate: float = 0.0
    #: Degradation episode length.
    nic_degrade_s: float = 10.0
    #: Line-rate multiplier while degraded (0.5 = link at half speed).
    nic_bw_factor: float = 0.5
    #: Fraction of granted traffic lost while degraded.
    nic_loss_frac: float = 0.1

    # -- monitor sample faults -------------------------------------------
    #: Probability a sampling tick starts a dropout burst.
    sample_dropout_prob: float = 0.0
    #: Mean dropout burst length in ticks (geometric; >= 1).
    dropout_burst_mean: float = 3.0
    #: Probability a sampling tick is silently corrupted.
    outlier_prob: float = 0.0
    #: Multiplicative corruption magnitude (value x scale or / scale).
    outlier_scale: float = 5.0

    def __post_init__(self) -> None:
        for attr in (
            "pm_crash_rate",
            "vm_stall_rate",
            "vm_crash_rate",
            "nic_degrade_rate",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        for attr in ("pm_reboot_s", "vm_stall_s", "vm_restart_s",
                     "nic_degrade_s"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        for attr in ("sample_dropout_prob", "outlier_prob"):
            if not 0.0 <= getattr(self, attr) < 1.0:
                raise ValueError(f"{attr} must be in [0, 1)")
        if self.dropout_burst_mean < 1.0:
            raise ValueError("dropout_burst_mean must be >= 1")
        if not 0.0 < self.nic_bw_factor <= 1.0:
            raise ValueError("nic_bw_factor must be in (0, 1]")
        if not 0.0 <= self.nic_loss_frac < 1.0:
            raise ValueError("nic_loss_frac must be in [0, 1)")
        if self.outlier_scale <= 1.0:
            raise ValueError("outlier_scale must be > 1")

    # -- queries ----------------------------------------------------------

    def is_null(self) -> bool:
        """True when no fault class can ever fire."""
        rates = (
            self.pm_crash_rate,
            self.vm_stall_rate,
            self.vm_crash_rate,
            self.nic_degrade_rate,
        )
        return not any(rates) and not self.samples_faulty()

    def samples_faulty(self) -> bool:
        """True when monitor samples can drop or corrupt."""
        return self.sample_dropout_prob > 0.0 or self.outlier_prob > 0.0

    def rate_for(self, kind: str) -> float:
        """The hazard of one machine-level fault kind."""
        return {
            KIND_PM_CRASH: self.pm_crash_rate,
            KIND_VM_STALL: self.vm_stall_rate,
            KIND_VM_CRASH: self.vm_crash_rate,
            KIND_NIC_DEGRADE: self.nic_degrade_rate,
        }[kind]

    def duration_for(self, kind: str) -> float:
        """The outage/episode length of one machine-level fault kind."""
        return {
            KIND_PM_CRASH: self.pm_reboot_s,
            KIND_VM_STALL: self.vm_stall_s,
            KIND_VM_CRASH: self.vm_restart_s,
            KIND_NIC_DEGRADE: self.nic_degrade_s,
        }[kind]

    @classmethod
    def sampling_only(
        cls,
        *,
        dropout: float = 0.0,
        outliers: float = 0.0,
        outlier_scale: float = 5.0,
        burst_mean: float = 3.0,
    ) -> "FaultConfig":
        """A config that only perturbs monitor samples (chaos sweeps)."""
        return cls(
            sample_dropout_prob=dropout,
            outlier_prob=outliers,
            outlier_scale=outlier_scale,
            dropout_burst_mean=burst_mean,
        )
