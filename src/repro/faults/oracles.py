"""Machine-checked invariants of the chaos-fuzzed stack.

Each oracle is a pure predicate over the *outcome record* of one
executed :class:`~repro.faults.plan.FaultPlan` (assembled by
:mod:`repro.faults.fuzz`).  An oracle returns ``None`` when the plan
did not exercise its surface, otherwise an :class:`OracleVerdict`
whose ``detail`` names the concrete numbers behind the decision -- a
failing verdict must be actionable on its own, because the shrinker
re-judges thousands of candidate plans against these exact verdicts.

The invariants (ISSUE 9):

========================  ==================================================
``vm-conservation``       no guest lost or duplicated across migrations,
                          rollbacks and planted evictions
``move-accounting``       every submitted move succeeded, was abandoned, or
                          is still pending -- nothing leaks
``breaker-monotonic``     circuit-open times never regress; open windows
                          only move forward; ``opened`` matches the log
``schedule-window``       every fault window is inside ``(0, horizon]``,
                          sorted, with positive duration and a consistent
                          horizon clamp
``replay-determinism``    re-executing the identical plan reproduces the
                          outcome digest and per-stream RNG draw counts
``zero-fault-identity``   a null plan's run is byte-identical to a run with
                          no fault machinery constructed at all
``no-silent-valid``       no WAL-accepted sample is non-finite or beyond
                          the outlier limit (nothing invalid trains)
``degraded-promoted-only``degraded/ok answers cite a ledgered promoted
                          version; unavailable answers carry no predictions
``wal-replay-idempotent`` reopening the service (WAL replay) twice leaves
                          state bytes and status output unchanged
``resume-identity``       an interrupted-then-resumed drive converges on
                          the uninterrupted run's state bytes
``worker-once``           a planned worker fault fires exactly once and the
                          final results equal the clean reference
========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.faults.schedule import FaultEvent, faulty_time
from repro.sim.sanitize import diff_draw_counts


@dataclass(frozen=True)
class OracleVerdict:
    """One invariant's judgement of one run."""

    name: str
    passed: bool
    detail: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class PlacementOutcome:
    """What one placement-loop scenario run produced."""

    horizon: float
    guests_before: int
    guests_after: int
    stats: Dict[str, int]
    pending: int
    applied_events: int
    skipped_events: int
    breaker_transitions: Tuple[Tuple[float, str, float], ...]
    breaker_opened: int
    breaker_cooldown_s: float
    rounds: int
    missing_observations: int
    events: Tuple[FaultEvent, ...]
    digest: str
    draw_counts: Dict[str, int]

    def as_dict(self) -> Dict[str, object]:
        return {
            "horizon": self.horizon,
            "guests_before": self.guests_before,
            "guests_after": self.guests_after,
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
            "pending": self.pending,
            "applied_events": self.applied_events,
            "skipped_events": self.skipped_events,
            "breaker_opened": self.breaker_opened,
            "rounds": self.rounds,
            "missing_observations": self.missing_observations,
            "digest": self.digest,
        }


@dataclass(frozen=True)
class ServeOutcome:
    """What one serve-ingest scenario run produced."""

    report: Dict[str, object]
    #: Every query answer as ``(pm, status, degraded, version, has_preds)``.
    answers: Tuple[Tuple[str, str, bool, Optional[int], bool], ...]
    #: Promoted versions in the ledger, per PM (name-sorted keys).
    promoted: Dict[str, Tuple[int, ...]]
    clean_digest: str
    reopen_digests: Tuple[str, str]
    reopen_status: Tuple[str, str]
    #: WAL-accepted samples violating the validity bound (detail lines).
    wal_bad_samples: Tuple[str, ...]
    wal_samples: int
    resumed_digest: Optional[str]
    outlier_limit: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "report": {
                k: self.report[k] for k in sorted(self.report)
            },
            "answers": [list(a) for a in self.answers],
            "promoted": {
                pm: list(vs)
                for pm, vs in sorted(self.promoted.items())
            },
            "clean_digest": self.clean_digest,
            "wal_samples": self.wal_samples,
        }


@dataclass(frozen=True)
class WorkersOutcome:
    """What one supervised-executor scenario run produced."""

    expected: Tuple[object, ...]
    got: Tuple[object, ...]
    planned: Tuple[Tuple[int, str], ...]
    markers: int
    retries: int
    kills: int
    stalls: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "planned": [list(p) for p in self.planned],
            "markers": self.markers,
            "retries": self.retries,
            "kills": self.kills,
            "stalls": self.stalls,
            "results_match": list(self.got) == list(self.expected),
        }


@dataclass
class RunContext:
    """Everything the oracle library judges for one executed plan."""

    plan: FaultPlan
    placement: Optional[PlacementOutcome] = None
    #: Second execution of the identical placement surface (replay).
    placement_repeat: Optional[PlacementOutcome] = None
    #: Null-plan run with no fault machinery constructed at all.
    placement_bare_digest: Optional[str] = None
    serve: Optional[ServeOutcome] = None
    workers: Optional[WorkersOutcome] = None
    notes: List[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# The oracles.
# --------------------------------------------------------------------------


def _vm_conservation(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.placement
    if out is None:
        return None
    # A planted eviction *should* trip this oracle: the leak is the bug
    # the fixture plants, so conservation is judged on raw counts.
    ok = out.guests_after == out.guests_before
    return OracleVerdict(
        "vm-conservation",
        ok,
        f"guests {out.guests_after}/{out.guests_before} after "
        f"{out.stats.get('succeeded', 0)} landed move(s) and "
        f"{out.stats.get('rollbacks', 0)} rollback(s)",
    )


def _move_accounting(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.placement
    if out is None:
        return None
    accounted = (
        out.stats.get("succeeded", 0)
        + out.stats.get("abandoned", 0)
        + out.pending
    )
    submitted = out.stats.get("submitted", 0)
    return OracleVerdict(
        "move-accounting",
        accounted == submitted,
        f"succeeded+abandoned+pending={accounted} submitted={submitted}",
    )


def _breaker_monotonic(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.placement
    if out is None:
        return None
    problems: List[str] = []
    last_time = -float("inf")
    last_open_until: Dict[str, float] = {}
    for when, pm, open_until in out.breaker_transitions:
        if when < last_time:
            problems.append(
                f"open at t={when} after t={last_time} (time regressed)"
            )
        last_time = when
        if open_until < when:
            problems.append(
                f"{pm}: open_until={open_until} before its own open t={when}"
            )
        if open_until < last_open_until.get(pm, -float("inf")):
            problems.append(
                f"{pm}: open window shrank to {open_until} from "
                f"{last_open_until[pm]}"
            )
        if abs((open_until - when) - out.breaker_cooldown_s) > 1.0e-9:
            problems.append(
                f"{pm}: window {open_until - when}s != cooldown "
                f"{out.breaker_cooldown_s}s"
            )
        last_open_until[pm] = open_until
    if out.breaker_opened != len(out.breaker_transitions):
        problems.append(
            f"opened counter {out.breaker_opened} != "
            f"{len(out.breaker_transitions)} logged transition(s)"
        )
    return OracleVerdict(
        "breaker-monotonic",
        not problems,
        "; ".join(problems)
        or f"{len(out.breaker_transitions)} circuit-open(s), all monotone",
    )


def _schedule_window(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.placement
    if out is None:
        return None
    problems: List[str] = []
    horizon = out.horizon
    last_key: Optional[Tuple[float, str, str]] = None
    for ev in out.events:
        key = (ev.time, ev.kind, ev.target)
        if last_key is not None and key < last_key:
            problems.append(f"schedule unsorted at {key} after {last_key}")
        last_key = key
        if not 0.0 <= ev.time <= horizon:
            problems.append(
                f"{ev.kind}@{ev.target}: onset {ev.time} outside "
                f"[0, {horizon}]"
            )
        if ev.duration <= 0:
            problems.append(
                f"{ev.kind}@{ev.target}: non-positive duration {ev.duration}"
            )
        clamped = ev.clamped_end(horizon)
        if clamped > horizon or clamped < min(ev.time, horizon):
            problems.append(
                f"{ev.kind}@{ev.target}: clamped end {clamped} outside "
                f"[{ev.time}, {horizon}]"
            )
        if ev.active_at(ev.end):
            problems.append(
                f"{ev.kind}@{ev.target}: window not half-open at its end"
            )
        if ev.time < horizon and not ev.active_at(ev.time):
            problems.append(
                f"{ev.kind}@{ev.target}: inactive at its own onset"
            )
    targets = sorted({ev.target for ev in out.events})
    for target in targets:
        busy = faulty_time(out.events, horizon, target)
        if busy < 0 or busy > horizon:
            problems.append(
                f"{target}: merged faulty time {busy} outside [0, {horizon}]"
            )
    return OracleVerdict(
        "schedule-window",
        not problems,
        "; ".join(problems)
        or f"{len(out.events)} event(s) within the {horizon}s horizon",
    )


def _replay_determinism(ctx: RunContext) -> Optional[OracleVerdict]:
    out, rep = ctx.placement, ctx.placement_repeat
    if out is None or rep is None:
        return None
    problems: List[str] = []
    if rep.digest != out.digest:
        problems.append(
            f"outcome digest diverged: {out.digest[:12]} != {rep.digest[:12]}"
        )
    problems.extend(diff_draw_counts(out.draw_counts, rep.draw_counts))
    return OracleVerdict(
        "replay-determinism",
        not problems,
        "; ".join(problems)
        or f"replay reproduced digest {out.digest[:12]} and "
        f"{sum(out.draw_counts.values())} RNG draw(s)",
    )


def _zero_fault_identity(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.placement
    if out is None or ctx.placement_bare_digest is None:
        return None
    if not ctx.plan.is_null():
        return None
    ok = ctx.placement_bare_digest == out.digest
    return OracleVerdict(
        "zero-fault-identity",
        ok,
        f"null-plan run {out.digest[:12]} vs fault-machinery-free run "
        f"{ctx.placement_bare_digest[:12]}",
    )


def _no_silent_valid(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.serve
    if out is None:
        return None
    return OracleVerdict(
        "no-silent-valid",
        not out.wal_bad_samples,
        "; ".join(out.wal_bad_samples)
        or f"{out.wal_samples} WAL-accepted sample(s) all finite and "
        f"within |{out.outlier_limit}|",
    )


def _degraded_promoted_only(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.serve
    if out is None:
        return None
    problems: List[str] = []
    answered = 0
    for pm, status, degraded, version, has_preds in out.answers:
        if status == "unavailable":
            if has_preds or version is not None:
                problems.append(
                    f"{pm}: unavailable answer carries "
                    f"predictions/version {version}"
                )
            continue
        answered += 1
        promoted = out.promoted.get(pm, ())
        if version is None or version not in promoted:
            problems.append(
                f"{pm}: {status} answer cites version {version} "
                f"not in promoted ledger {list(promoted)}"
            )
        if degraded and status != "degraded":
            problems.append(
                f"{pm}: degraded flag with status {status!r}"
            )
    return OracleVerdict(
        "degraded-promoted-only",
        not problems,
        "; ".join(problems[:5])
        or f"{answered} answered quer(ies) all cite promoted versions",
    )


def _wal_replay_idempotent(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.serve
    if out is None:
        return None
    problems: List[str] = []
    first, second = out.reopen_digests
    if first != out.clean_digest:
        problems.append(
            f"first WAL replay changed state bytes: "
            f"{out.clean_digest[:12]} -> {first[:12]}"
        )
    if second != first:
        problems.append(
            f"second WAL replay changed state bytes: "
            f"{first[:12]} -> {second[:12]}"
        )
    if out.reopen_status[0] != out.reopen_status[1]:
        problems.append("status report differs between replays")
    return OracleVerdict(
        "wal-replay-idempotent",
        not problems,
        "; ".join(problems)
        or f"two replays left state at {out.clean_digest[:12]}",
    )


def _resume_identity(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.serve
    if out is None or out.resumed_digest is None:
        return None
    ok = out.resumed_digest == out.clean_digest
    return OracleVerdict(
        "resume-identity",
        ok,
        f"interrupted+resumed state {out.resumed_digest[:12]} vs clean "
        f"{out.clean_digest[:12]}",
    )


def _worker_once(ctx: RunContext) -> Optional[OracleVerdict]:
    out = ctx.workers
    if out is None:
        return None
    problems: List[str] = []
    if list(out.got) != list(out.expected):
        problems.append(
            f"supervised results diverged from the clean reference "
            f"({len(out.got)} vs {len(out.expected)} value(s))"
        )
    if out.markers != len(out.planned):
        problems.append(
            f"{out.markers} once-marker(s) for {len(out.planned)} "
            f"planned fault(s)"
        )
    if out.retries < out.kills:
        problems.append(
            f"only {out.retries} supervised retr(ies) for {out.kills} "
            f"kill fault(s)"
        )
    return OracleVerdict(
        "worker-once",
        not problems,
        "; ".join(problems)
        or f"{len(out.planned)} fault(s) fired once; results identical",
    )


#: Every oracle, in reporting order.
ORACLES: Tuple[Tuple[str, Callable[[RunContext], Optional[OracleVerdict]]], ...] = (
    ("vm-conservation", _vm_conservation),
    ("move-accounting", _move_accounting),
    ("breaker-monotonic", _breaker_monotonic),
    ("schedule-window", _schedule_window),
    ("replay-determinism", _replay_determinism),
    ("zero-fault-identity", _zero_fault_identity),
    ("no-silent-valid", _no_silent_valid),
    ("degraded-promoted-only", _degraded_promoted_only),
    ("wal-replay-idempotent", _wal_replay_idempotent),
    ("resume-identity", _resume_identity),
    ("worker-once", _worker_once),
)

ORACLE_NAMES: Tuple[str, ...] = tuple(name for name, _fn in ORACLES)


def check_all(ctx: RunContext) -> List[OracleVerdict]:
    """Judge one run against every applicable oracle, in order."""
    verdicts: List[OracleVerdict] = []
    for _name, fn in ORACLES:
        verdict = fn(ctx)
        if verdict is not None:
            verdicts.append(verdict)
    return verdicts


def failures(verdicts: List[OracleVerdict]) -> List[OracleVerdict]:
    """The failing subset, preserving order."""
    return [v for v in verdicts if not v.passed]
