"""Replayable fault plans: the JSON artifact of one chaos scenario.

A :class:`FaultPlan` pins *everything* a chaos run needs to reproduce
bit-identically: the master seed, the concrete machine-level
:class:`~repro.faults.schedule.FaultEvent` schedule (stored as data, so
replay never re-draws it), the delivery-fault probabilities of the
serve surface, and the worker-fault rates of the supervised executor
surface.  Plans are written by ``repro chaos --plan-out``, by every
``repro chaos fuzz`` campaign run, and by the shrinker; ``repro chaos
replay PLAN.json`` re-executes one.

The JSON form is canonical -- sorted keys, fixed indentation, no
timestamps -- so the same plan always serializes to the same bytes and
a shrunk repro can be compared against a committed fixture with a
plain ``diff``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.faults.config import FaultConfig
from repro.faults.schedule import FaultEvent
from repro.faults.service import ServiceFaultConfig

#: Schema tag of the plan JSON (bump on incompatible layout changes).
PLAN_SCHEMA = "repro-fault-plan/1"

#: Plan drivers: which scenario harness executes the plan.
DRIVER_FUZZ = "fuzz"
DRIVER_CHAOSB = "chaosb"
DRIVERS = (DRIVER_CHAOSB, DRIVER_FUZZ)

#: Planted-violation knobs (test fixtures for the oracle/shrink path).
#: ``vm_leak`` silently evicts one guest mid-run, which must trip the
#: VM-conservation oracle and survive shrinking.
PLANTED_VM_LEAK = "vm_leak"
PLANTED_KINDS = (PLANTED_VM_LEAK,)


class PlanError(ValueError):
    """A plan file is malformed or semantically invalid."""


@dataclass(frozen=True)
class PlacementPlan:
    """The placement-loop surface: cluster shape + concrete schedule."""

    seed: int
    duration_s: float
    train_duration: float
    migration_failure_prob: float
    pm_count: int
    hot_vms: int
    bg_vms: int
    config: FaultConfig
    events: Tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise PlanError("duration_s must be positive")
        if self.train_duration <= 0:
            raise PlanError("train_duration must be positive")
        if not 0.0 <= self.migration_failure_prob < 1.0:
            raise PlanError("migration_failure_prob must be in [0, 1)")
        if self.pm_count < 2:
            raise PlanError("pm_count must be >= 2")
        if self.hot_vms < 1 or self.bg_vms < 0:
            raise PlanError("hot_vms must be >= 1 and bg_vms >= 0")
        for ev in self.events:
            if ev.time > self.duration_s:
                raise PlanError(
                    f"event at t={ev.time} lies beyond the "
                    f"{self.duration_s}s horizon"
                )

    def is_null(self) -> bool:
        """True when this surface can not inject a single fault."""
        return not self.events and not self.migration_failure_prob > 0.0


@dataclass(frozen=True)
class ServePlan:
    """The serve-ingest surface: swarm shape + delivery faults."""

    seed: int
    pms: int
    ticks: int
    queries_per_tick: int
    drift_at: int
    drift_scale: float
    crash_at_tick: Optional[int]
    faults: ServiceFaultConfig

    def __post_init__(self) -> None:
        if self.pms < 1:
            raise PlanError("pms must be >= 1")
        if self.ticks < 2:
            raise PlanError("ticks must be >= 2")
        if self.queries_per_tick < 0:
            raise PlanError("queries_per_tick must be >= 0")
        if self.drift_at < 0:
            raise PlanError("drift_at must be >= 0")
        if self.drift_scale <= 0:
            raise PlanError("drift_scale must be positive")
        if self.crash_at_tick is not None and not (
            0 < self.crash_at_tick < self.ticks - 1
        ):
            raise PlanError(
                "crash_at_tick must fall strictly inside the trace"
            )

    def is_null(self) -> bool:
        """True when delivery is clean and the drive is never crashed."""
        return not self.faults.faulty() and self.crash_at_tick is None


@dataclass(frozen=True)
class WorkerPlan:
    """The supervised-executor surface: real worker kills and stalls."""

    seed: int
    n_cells: int
    kill_rate: float
    stall_rate: float
    stall_s: float
    jobs: int
    chunk: int

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise PlanError("n_cells must be >= 1")
        for name in ("kill_rate", "stall_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise PlanError(f"{name} must be a probability")
        if self.stall_s < 0:
            raise PlanError("stall_s must be >= 0")
        if self.jobs < 2 and self.kill_rate > 0.0:
            # A kill fault terminates the process running the cell;
            # inline execution would kill the supervisor itself.
            raise PlanError("kill faults require jobs >= 2")
        if self.chunk < 0:
            raise PlanError("chunk must be >= 0")

    def is_null(self) -> bool:
        """True when no worker can be killed or stalled."""
        return not (self.kill_rate > 0.0 or self.stall_rate > 0.0)


@dataclass(frozen=True)
class FaultPlan:
    """One replayable chaos scenario across every fault surface."""

    seed: int
    driver: str = DRIVER_FUZZ
    planted: Optional[str] = None
    placement: Optional[PlacementPlan] = None
    serve: Optional[ServePlan] = None
    workers: Optional[WorkerPlan] = None

    def __post_init__(self) -> None:
        if self.driver not in DRIVERS:
            raise PlanError(f"unknown plan driver {self.driver!r}")
        if self.planted is not None and self.planted not in PLANTED_KINDS:
            raise PlanError(f"unknown planted violation {self.planted!r}")
        if (
            self.placement is None
            and self.serve is None
            and self.workers is None
        ):
            raise PlanError("plan drives no surface at all")
        if self.planted is not None and self.placement is None:
            raise PlanError(
                f"planted {self.planted!r} needs the placement surface"
            )

    def surfaces(self) -> Tuple[str, ...]:
        """Names of the fault surfaces this plan drives."""
        out = []
        if self.placement is not None:
            out.append("placement")
        if self.serve is not None:
            out.append("serve")
        if self.workers is not None:
            out.append("workers")
        return tuple(out)

    def is_null(self) -> bool:
        """True when no surface can inject any fault (planted excluded)."""
        if self.planted is not None:
            return False
        return all(
            section is None or section.is_null()
            for section in (self.placement, self.serve, self.workers)
        )

    # -- codec -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema": PLAN_SCHEMA,
            "driver": self.driver,
            "seed": int(self.seed),
            "planted": self.planted,
            "placement": None,
            "serve": None,
            "workers": None,
        }
        if self.placement is not None:
            pp = self.placement
            out["placement"] = {
                "seed": int(pp.seed),
                "duration_s": float(pp.duration_s),
                "train_duration": float(pp.train_duration),
                "migration_failure_prob": float(pp.migration_failure_prob),
                "pm_count": int(pp.pm_count),
                "hot_vms": int(pp.hot_vms),
                "bg_vms": int(pp.bg_vms),
                "config": dataclasses.asdict(pp.config),
                "events": [
                    {
                        "time": float(ev.time),
                        "kind": ev.kind,
                        "target": ev.target,
                        "duration": float(ev.duration),
                    }
                    for ev in pp.events
                ],
            }
        if self.serve is not None:
            sp = self.serve
            out["serve"] = {
                "seed": int(sp.seed),
                "pms": int(sp.pms),
                "ticks": int(sp.ticks),
                "queries_per_tick": int(sp.queries_per_tick),
                "drift_at": int(sp.drift_at),
                "drift_scale": float(sp.drift_scale),
                "crash_at_tick": (
                    None if sp.crash_at_tick is None else int(sp.crash_at_tick)
                ),
                "faults": dataclasses.asdict(sp.faults),
            }
        if self.workers is not None:
            wp = self.workers
            out["workers"] = {
                "seed": int(wp.seed),
                "n_cells": int(wp.n_cells),
                "kill_rate": float(wp.kill_rate),
                "stall_rate": float(wp.stall_rate),
                "stall_s": float(wp.stall_s),
                "jobs": int(wp.jobs),
                "chunk": int(wp.chunk),
            }
        return out

    @classmethod
    def from_dict(cls, body: Dict[str, object]) -> "FaultPlan":
        if not isinstance(body, dict):
            raise PlanError("plan body must be a JSON object")
        schema = body.get("schema")
        if schema != PLAN_SCHEMA:
            raise PlanError(
                f"unsupported plan schema {schema!r} "
                f"(expected {PLAN_SCHEMA!r})"
            )
        try:
            placement = None
            if body.get("placement") is not None:
                pd = dict(body["placement"])
                placement = PlacementPlan(
                    seed=int(pd["seed"]),
                    duration_s=float(pd["duration_s"]),
                    train_duration=float(pd["train_duration"]),
                    migration_failure_prob=float(
                        pd["migration_failure_prob"]
                    ),
                    pm_count=int(pd["pm_count"]),
                    hot_vms=int(pd["hot_vms"]),
                    bg_vms=int(pd["bg_vms"]),
                    config=FaultConfig(**pd["config"]),
                    events=tuple(
                        FaultEvent(
                            time=float(ev["time"]),
                            kind=str(ev["kind"]),
                            target=str(ev["target"]),
                            duration=float(ev["duration"]),
                        )
                        for ev in pd["events"]
                    ),
                )
            serve = None
            if body.get("serve") is not None:
                sd = dict(body["serve"])
                crash = sd.get("crash_at_tick")
                serve = ServePlan(
                    seed=int(sd["seed"]),
                    pms=int(sd["pms"]),
                    ticks=int(sd["ticks"]),
                    queries_per_tick=int(sd["queries_per_tick"]),
                    drift_at=int(sd["drift_at"]),
                    drift_scale=float(sd["drift_scale"]),
                    crash_at_tick=None if crash is None else int(crash),
                    faults=ServiceFaultConfig(**sd["faults"]),
                )
            workers = None
            if body.get("workers") is not None:
                wd = dict(body["workers"])
                workers = WorkerPlan(
                    seed=int(wd["seed"]),
                    n_cells=int(wd["n_cells"]),
                    kill_rate=float(wd["kill_rate"]),
                    stall_rate=float(wd["stall_rate"]),
                    stall_s=float(wd["stall_s"]),
                    jobs=int(wd["jobs"]),
                    chunk=int(wd["chunk"]),
                )
            return cls(
                seed=int(body["seed"]),
                driver=str(body.get("driver", DRIVER_FUZZ)),
                planted=body.get("planted"),
                placement=placement,
                serve=serve,
                workers=workers,
            )
        except PlanError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanError(f"malformed plan: {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON text (byte-stable for identical plans)."""
        return canonical_json(self.to_dict())


def canonical_json(obj: object) -> str:
    """The one serialization every plan/scorecard artifact uses."""
    return json.dumps(obj, sort_keys=True, indent=2) + "\n"


def load_plan(path: Path | str) -> FaultPlan:
    """Read and validate one plan file."""
    path = Path(path)
    try:
        body = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise PlanError(f"cannot read plan {path}: {exc}") from exc
    except ValueError as exc:
        raise PlanError(f"plan {path} is not valid JSON: {exc}") from exc
    return FaultPlan.from_dict(body)


def dump_plan(plan: FaultPlan, path: Path | str) -> None:
    """Write one plan file in canonical form."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(plan.to_json(), encoding="utf-8")
