"""Cluster-wide synchronized monitoring.

The Section VI experiments monitor several PMs at once; this
coordinator owns one
:class:`~repro.monitor.script.MeasurementScript` per machine, starts and
stops them on the shared clock, and returns the reports keyed by PM
name -- the multi-PM analogue of the paper's per-host script.

Under fault injection every PM gets its *own*
:class:`~repro.faults.sampling.SampleFaults` stream
(``faults.monitor.<pm>``), so one PM's dropout bursts never shift
another PM's randomness, and the per-PM reports stay tick-aligned on
the shared clock: lost ticks are recorded as explicit gaps, never
silently shortened series.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.cluster import Cluster
from repro.faults.config import FaultConfig
from repro.faults.sampling import SampleFaults
from repro.monitor.script import GAP_HOLD, MeasurementReport, MeasurementScript


class ClusterMonitor:
    """One synchronized measurement script per PM of a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        interval: float = 1.0,
        noiseless: bool = False,
        tool_failure_prob: float = 0.0,
        faults: Optional[FaultConfig] = None,
        gap_policy: str = GAP_HOLD,
    ) -> None:
        if not cluster.pms:
            raise ValueError("cluster has no PMs to monitor")
        self.cluster = cluster
        self._fault_models: Dict[str, SampleFaults] = {}
        if faults is not None and faults.samples_faulty():
            self._fault_models = {
                name: SampleFaults(
                    faults, cluster.sim.rng(f"faults.monitor.{name}")
                )
                for name in cluster.pms
            }
        self._scripts: Dict[str, MeasurementScript] = {
            name: MeasurementScript(
                pm,
                interval=interval,
                noiseless=noiseless,
                tool_failure_prob=tool_failure_prob,
                faults=self._fault_models.get(name),
                gap_policy=gap_policy,
            )
            for name, pm in cluster.pms.items()
        }
        self._running = False

    @property
    def pm_names(self) -> list[str]:
        """Monitored machines."""
        return sorted(self._scripts)

    def start(self) -> None:
        """Start sampling on every PM."""
        if self._running:
            raise RuntimeError("cluster monitor already running")
        for script in self._scripts.values():
            script.start()
        self._running = True

    def stop(self) -> Dict[str, MeasurementReport]:
        """Stop sampling and collect one report per PM."""
        if not self._running:
            raise RuntimeError("cluster monitor was never started")
        self._running = False
        return {name: s.stop() for name, s in self._scripts.items()}

    def run(self, duration: float) -> Dict[str, MeasurementReport]:
        """Start, advance the shared clock, stop, and report."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.start()
        self.cluster.run(duration)
        return self.stop()

    def missed_samples(self) -> int:
        """Total carry-forward samples across all PMs (failure injection)."""
        return sum(s.missed_samples for s in self._scripts.values())

    def gap_counts(self) -> Dict[str, int]:
        """Whole ticks lost per PM (dropout bursts + PM outages)."""
        return {name: s.gap_samples for name, s in self._scripts.items()}

    def total_gaps(self) -> int:
        """Total lost ticks across the cluster."""
        return sum(self.gap_counts().values())
