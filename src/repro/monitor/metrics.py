"""Metric vocabulary and utilization vectors.

The paper tracks four resources per entity -- CPU, memory, disk I/O and
network bandwidth -- in that order (its model vectors are
``M = [Mc, Mm, Mi, Mn]^T``).  :data:`RESOURCES` fixes the order once;
:class:`ResourceVector` is the 4-vector used across the models package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: Canonical resource order: CPU %, memory MB, disk blocks/s, net Kb/s.
RESOURCES: tuple[str, ...] = ("cpu", "mem", "io", "bw")

#: Human-readable units per resource.
UNITS: dict[str, str] = {
    "cpu": "%",
    "mem": "MB",
    "io": "blocks/s",
    "bw": "Kb/s",
}

#: Entity labels used in trace names.
ENTITY_DOM0 = "dom0"
ENTITY_HYPERVISOR = "hyp"
ENTITY_PM = "pm"


def trace_name(entity: str, resource: str) -> str:
    """Canonical trace name ``<entity>.<resource>``."""
    if resource not in RESOURCES:
        raise ValueError(f"unknown resource {resource!r}; expected {RESOURCES}")
    if not entity:
        raise ValueError("entity must be non-empty")
    return f"{entity}.{resource}"


@dataclass(frozen=True)
class ResourceVector:
    """A (cpu, mem, io, bw) utilization 4-vector.

    Immutable; arithmetic returns new vectors.  This is the ``M`` of the
    paper's Eq. (1)-(3).
    """

    cpu: float = 0.0
    mem: float = 0.0
    io: float = 0.0
    bw: float = 0.0

    def __iter__(self) -> Iterator[float]:
        return iter((self.cpu, self.mem, self.io, self.bw))

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu + other.cpu,
            self.mem + other.mem,
            self.io + other.io,
            self.bw + other.bw,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu - other.cpu,
            self.mem - other.mem,
            self.io - other.io,
            self.bw - other.bw,
        )

    def scale(self, factor: float) -> "ResourceVector":
        """Multiply every component by ``factor``."""
        return ResourceVector(
            self.cpu * factor,
            self.mem * factor,
            self.io * factor,
            self.bw * factor,
        )

    def as_array(self) -> np.ndarray:
        """The vector as a length-4 float array in canonical order."""
        return np.array([self.cpu, self.mem, self.io, self.bw], dtype=float)

    @classmethod
    def from_array(cls, arr) -> "ResourceVector":
        """Build from any length-4 sequence in canonical order."""
        vals = np.asarray(arr, dtype=float).ravel()
        if vals.shape != (4,):
            raise ValueError(f"expected 4 components, got shape {vals.shape}")
        return cls(*vals.tolist())

    def get(self, resource: str) -> float:
        """Component by resource name."""
        if resource not in RESOURCES:
            raise ValueError(f"unknown resource {resource!r}")
        return getattr(self, resource)


def vm_utilization_vector(util) -> ResourceVector:
    """Convert a :class:`~repro.xen.machine.VmUtilization` record."""
    return ResourceVector(
        cpu=util.cpu_pct, mem=util.mem_mb, io=util.io_bps, bw=util.bw_kbps
    )
