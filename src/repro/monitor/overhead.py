"""Measurement-tool self-overhead: why the paper built a unified script.

Section III-A's argument is that no existing tool combination can
"concurrently measure different metrics ... without introducing extra
resource consumption (on VMs or Dom0)".  This module models the probe
cost of each Table I tool and lets an experiment quantify the
perturbation:

* **naive strategy** -- every tool runs as its own periodic process
  wherever it must run (``top``/``vmstat``/``mpstat``/``ifconfig``
  polling inside each guest, ``xentop`` + host tools in Dom0), each
  paying its full invocation cost;
* **unified script** -- the paper's approach: one synchronized pass
  invokes each required tool exactly once per interval and only where
  needed, so the per-interval cost is the minimal covering set.

The probe costs are charged to the simulated Dom0 / guests through the
``probe_cpu_pct`` hooks, so the perturbation shows up in the *measured*
utilizations exactly as it did on the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.xen.machine import PhysicalMachine

#: Per-invocation CPU cost of each tool, in percent of one (V)CPU while
#: sampling at 1 Hz: (cost in Dom0, cost inside each guest it polls).
#: Values are representative of the real tools' top-of-`top` footprints.
TOOL_PROBE_COST: Dict[str, Tuple[float, float]] = {
    "xentop": (1.10, 0.0),  # walks all domain info in Dom0
    "top": (0.35, 0.35),  # runs in Dom0 and/or inside each guest
    "mpstat": (0.15, 0.15),
    "vmstat": (0.12, 0.12),
    "ifconfig": (0.08, 0.08),
}

#: Tools (and where they run) in the naive everything-everywhere setup.
NAIVE_DOM0_TOOLS: Tuple[str, ...] = (
    "xentop",
    "top",
    "mpstat",
    "vmstat",
    "ifconfig",
)
NAIVE_GUEST_TOOLS: Tuple[str, ...] = ("top", "mpstat", "vmstat", "ifconfig")

#: The unified script's minimal covering set (Table I's ``+`` cells):
#: xentop + vmstat + ifconfig + mpstat in Dom0, top inside each guest.
UNIFIED_DOM0_TOOLS: Tuple[str, ...] = ("xentop", "mpstat", "vmstat", "ifconfig")
UNIFIED_GUEST_TOOLS: Tuple[str, ...] = ("top",)


@dataclass(frozen=True)
class ProbeLoad:
    """Aggregate probe CPU charged to Dom0 and to each guest."""

    dom0_cpu_pct: float
    per_guest_cpu_pct: float

    def __post_init__(self) -> None:
        if self.dom0_cpu_pct < 0 or self.per_guest_cpu_pct < 0:
            raise ValueError("probe loads must be >= 0")


def probe_load(
    dom0_tools: Iterable[str], guest_tools: Iterable[str]
) -> ProbeLoad:
    """Compute the probe load of a tool deployment."""
    dom0 = 0.0
    for tool in dom0_tools:
        if tool not in TOOL_PROBE_COST:
            raise ValueError(f"unknown tool {tool!r}")
        dom0 += TOOL_PROBE_COST[tool][0]
    guest = 0.0
    for tool in guest_tools:
        if tool not in TOOL_PROBE_COST:
            raise ValueError(f"unknown tool {tool!r}")
        guest += TOOL_PROBE_COST[tool][1]
    return ProbeLoad(dom0_cpu_pct=dom0, per_guest_cpu_pct=guest)


def naive_probe_load() -> ProbeLoad:
    """Everything running everywhere (the pre-script status quo)."""
    return probe_load(NAIVE_DOM0_TOOLS, NAIVE_GUEST_TOOLS)


def unified_probe_load() -> ProbeLoad:
    """The paper's unified script: the minimal covering set."""
    return probe_load(UNIFIED_DOM0_TOOLS, UNIFIED_GUEST_TOOLS)


def apply_probe_load(pm: PhysicalMachine, load: ProbeLoad) -> None:
    """Charge a probe deployment to a machine's Dom0 and guests."""
    pm.dom0.probe_cpu_pct = load.dom0_cpu_pct
    for vm in pm.vms.values():
        vm.demand.probe_cpu_pct = load.per_guest_cpu_pct


def clear_probe_load(pm: PhysicalMachine) -> None:
    """Remove all probe charges (the ideal zero-overhead observer)."""
    apply_probe_load(pm, ProbeLoad(0.0, 0.0))
