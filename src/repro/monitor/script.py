"""The unified measurement script (paper Section III-A).

No single tool covers all metrics, so the paper runs a shell script that
launches the right tool for each metric, synchronized at 1 Hz:

* ``xentop`` in Dom0 -> guest and Dom0 CPU / I/O / bandwidth;
* ``top`` inside each guest -> guest memory (and in Dom0 -> Dom0 memory);
* ``mpstat`` in Xen -> hypervisor CPU;
* ``vmstat`` / ``ifconfig`` in Dom0 -> PM I/O and PM bandwidth;
* PM memory = Dom0 memory + sum of guest memories (estimated);
* PM CPU = Dom0 + hypervisor + sum of guest CPU (computed indirectly,
  Section III-C).

:class:`MeasurementScript` emulates exactly that composition and
returns the samples as a :class:`~repro.traces.TraceSet` wrapped in a
:class:`MeasurementReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.monitor.metrics import (
    ENTITY_DOM0,
    ENTITY_HYPERVISOR,
    ENTITY_PM,
    RESOURCES,
    UNITS,
    trace_name,
)
from repro.monitor.tools import (
    SCOPE_DOM0,
    SCOPE_PM,
    SCOPE_VM,
    IfConfig,
    MpStat,
    ToolFailure,
    Top,
    VmStat,
    XenTop,
)
from repro.sim.process import PeriodicProcess
from repro.traces import Trace, TraceSet
from repro.xen.machine import MONITOR_PRIORITY, PhysicalMachine

#: The paper samples once per second ...
DEFAULT_INTERVAL = 1.0
#: ... for two minutes per configuration.
DEFAULT_DURATION = 120.0


@dataclass
class MeasurementReport:
    """The outcome of one measurement run."""

    pm_name: str
    traces: TraceSet

    def mean(self, entity: str, resource: str) -> float:
        """Mean utilization over the run (the paper's reported value)."""
        return self.traces[trace_name(entity, resource)].mean()

    def series(self, entity: str, resource: str) -> Trace:
        """The full 1 Hz series for one metric."""
        return self.traces[trace_name(entity, resource)]

    def entities(self) -> List[str]:
        """All measured entities (VM names plus dom0 / hyp / pm)."""
        return sorted({name.split(".", 1)[0] for name in self.traces.names})


class MeasurementScript:
    """Synchronized 1 Hz monitoring of one PM.

    Parameters
    ----------
    pm:
        The machine to monitor (its simulator provides the clock and
        the per-tool noise streams).
    interval:
        Sampling period in seconds.
    noiseless:
        Disable measurement noise (useful for calibration tests).
    """

    def __init__(
        self,
        pm: PhysicalMachine,
        *,
        interval: float = DEFAULT_INTERVAL,
        noiseless: bool = False,
        tool_failure_prob: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.pm = pm
        self.interval = interval
        rng = pm.sim.rng
        key = f"monitor.{pm.name}"
        kw = dict(noiseless=noiseless, failure_prob=tool_failure_prob)
        self._xentop = XenTop(pm.cal, rng(f"{key}.xentop"), **kw)
        self._top = Top(pm.cal, rng(f"{key}.top"), **kw)
        self._mpstat = MpStat(pm.cal, rng(f"{key}.mpstat"), **kw)
        self._vmstat = VmStat(pm.cal, rng(f"{key}.vmstat"), **kw)
        self._ifconfig = IfConfig(pm.cal, rng(f"{key}.ifconfig"), **kw)
        self._times: List[float] = []
        self._samples: Dict[str, List[float]] = {}
        self._proc: Optional[PeriodicProcess] = None
        #: Readings lost to transient tool failures (each one is filled
        #: with the previous reading, as the shell script does).
        self.missed_samples = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Begin sampling at the next interval boundary."""
        if self._proc is not None and not self._proc.stopped:
            raise RuntimeError("measurement script already running")
        self._times.clear()
        self._samples.clear()
        self._proc = PeriodicProcess(
            self.pm.sim, self.interval, self._sample, priority=MONITOR_PRIORITY
        )

    def stop(self) -> MeasurementReport:
        """Stop sampling and assemble the report."""
        if self._proc is None:
            raise RuntimeError("measurement script was never started")
        self._proc.stop()
        self._proc = None
        return self._build_report()

    def run(self, duration: float = DEFAULT_DURATION) -> MeasurementReport:
        """Start, simulate ``duration`` seconds, stop, and report."""
        if duration < self.interval:
            raise ValueError("duration shorter than one sampling interval")
        self.start()
        self.pm.sim.run_until(self.pm.sim.now + duration)
        return self.stop()

    # -- internals ---------------------------------------------------------

    def _record(self, entity: str, resource: str, value: float) -> None:
        self._samples.setdefault(trace_name(entity, resource), []).append(value)

    def _read(
        self, tool, snap, scope: str, resource: str, entity: str, vm_name=None
    ) -> float:
        """One reading; a transient tool failure repeats the previous
        sample (the shell script's carry-forward behaviour)."""
        try:
            return tool.read(snap, scope, resource, vm_name)
        except ToolFailure:
            self.missed_samples += 1
            prev = self._samples.get(trace_name(entity, resource))
            return prev[-1] if prev else 0.0

    def _sample(self, now: float) -> None:
        snap = self.pm.snapshot()
        self._times.append(now)

        guest_cpu = guest_mem = 0.0
        for name in snap.vms:
            cpu = self._read(self._xentop, snap, SCOPE_VM, "cpu", name, name)
            io = self._read(self._xentop, snap, SCOPE_VM, "io", name, name)
            bw = self._read(self._xentop, snap, SCOPE_VM, "bw", name, name)
            mem = self._read(self._top, snap, SCOPE_VM, "mem", name, name)
            self._record(name, "cpu", cpu)
            self._record(name, "io", io)
            self._record(name, "bw", bw)
            self._record(name, "mem", mem)
            guest_cpu += cpu
            guest_mem += mem

        dom0_cpu = self._read(
            self._xentop, snap, SCOPE_DOM0, "cpu", ENTITY_DOM0
        )
        dom0_mem = self._read(self._top, snap, SCOPE_DOM0, "mem", ENTITY_DOM0)
        self._record(ENTITY_DOM0, "cpu", dom0_cpu)
        self._record(ENTITY_DOM0, "mem", dom0_mem)
        self._record(
            ENTITY_DOM0,
            "io",
            self._read(self._xentop, snap, SCOPE_DOM0, "io", ENTITY_DOM0),
        )
        self._record(
            ENTITY_DOM0,
            "bw",
            self._read(self._xentop, snap, SCOPE_DOM0, "bw", ENTITY_DOM0),
        )

        hyp_cpu = self._read(
            self._mpstat, snap, SCOPE_PM, "cpu", ENTITY_HYPERVISOR
        )
        self._record(ENTITY_HYPERVISOR, "cpu", hyp_cpu)

        # PM CPU is computed indirectly as the component sum (paper
        # Section III-C); PM memory is estimated as Dom0 + guests.
        self._record(ENTITY_PM, "cpu", dom0_cpu + hyp_cpu + guest_cpu)
        self._record(ENTITY_PM, "mem", dom0_mem + guest_mem)
        self._record(
            ENTITY_PM,
            "io",
            self._read(self._vmstat, snap, SCOPE_PM, "io", ENTITY_PM),
        )
        self._record(
            ENTITY_PM,
            "bw",
            self._read(self._ifconfig, snap, SCOPE_PM, "bw", ENTITY_PM),
        )

    def _build_report(self) -> MeasurementReport:
        times = np.asarray(self._times)
        traces = TraceSet()
        for name, values in sorted(self._samples.items()):
            resource = name.rsplit(".", 1)[1]
            traces.add(Trace(name, times, np.asarray(values), UNITS[resource]))
        return MeasurementReport(pm_name=self.pm.name, traces=traces)
