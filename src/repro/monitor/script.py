"""The unified measurement script (paper Section III-A).

No single tool covers all metrics, so the paper runs a shell script that
launches the right tool for each metric, synchronized at 1 Hz:

* ``xentop`` in Dom0 -> guest and Dom0 CPU / I/O / bandwidth;
* ``top`` inside each guest -> guest memory (and in Dom0 -> Dom0 memory);
* ``mpstat`` in Xen -> hypervisor CPU;
* ``vmstat`` / ``ifconfig`` in Dom0 -> PM I/O and PM bandwidth;
* PM memory = Dom0 memory + sum of guest memories (estimated);
* PM CPU = Dom0 + hypervisor + sum of guest CPU (computed indirectly,
  Section III-C).

:class:`MeasurementScript` emulates exactly that composition and
returns the samples as a :class:`~repro.traces.TraceSet` wrapped in a
:class:`MeasurementReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.faults.sampling import SAMPLE_DROP, SAMPLE_OUTLIER, SampleFaults
from repro.monitor.metrics import (
    ENTITY_DOM0,
    ENTITY_HYPERVISOR,
    ENTITY_PM,
    RESOURCES,
    UNITS,
    trace_name,
)
from repro.monitor.tools import (
    SCOPE_DOM0,
    SCOPE_PM,
    SCOPE_VM,
    IfConfig,
    MeasurementTool,
    MpStat,
    ToolFailure,
    Top,
    VmStat,
    XenTop,
)
from repro.obs import runtime as _obs
from repro.sim import fastpath as _fastpath
from repro.sim.process import PeriodicProcess
from repro.traces import Trace, TraceSet
from repro.xen.machine import MONITOR_PRIORITY, PhysicalMachine

#: The paper samples once per second ...
DEFAULT_INTERVAL = 1.0
#: ... for two minutes per configuration.
DEFAULT_DURATION = 120.0

#: Gap policies: fill lost ticks with the last-known-good reading, or
#: leave an explicit NaN (consumers must then honor the validity mask).
GAP_HOLD = "hold"
GAP_NAN = "nan"
GAP_POLICIES = (GAP_HOLD, GAP_NAN)


@dataclass
class MeasurementReport:
    """The outcome of one measurement run.

    ``validity`` is ``None`` for a clean run (every tick sampled); under
    fault injection it is a boolean mask aligned with every trace, False
    where the tick was an explicit gap (dropout burst or crashed PM).
    """

    pm_name: str
    traces: TraceSet
    validity: Optional[np.ndarray] = None

    def mean(
        self, entity: str, resource: str, *, valid_only: bool = False
    ) -> float:
        """Mean utilization over the run (the paper's reported value).

        With ``valid_only`` the mean skips gap ticks -- the right call
        under the NaN gap policy, where gaps would poison the mean.
        """
        trace = self.traces[trace_name(entity, resource)]
        if valid_only and self.validity is not None:
            values = trace.values[self.validity]
            if len(values) == 0:
                raise ValueError(
                    f"no valid samples for {entity}.{resource} on "
                    f"{self.pm_name}"
                )
            return float(values.mean())
        return trace.mean()

    def series(self, entity: str, resource: str) -> Trace:
        """The full 1 Hz series for one metric."""
        return self.traces[trace_name(entity, resource)]

    def entities(self) -> List[str]:
        """All measured entities (VM names plus dom0 / hyp / pm)."""
        return sorted({name.split(".", 1)[0] for name in self.traces.names})

    def n_gaps(self) -> int:
        """Number of ticks lost to dropouts / PM outages."""
        if self.validity is None:
            return 0
        return int((~self.validity).sum())

    def valid_fraction(self) -> float:
        """Fraction of ticks that were actually sampled."""
        if self.validity is None:
            return 1.0
        if len(self.validity) == 0:
            return 1.0
        return float(self.validity.mean())


class MeasurementScript:
    """Synchronized 1 Hz monitoring of one PM.

    Parameters
    ----------
    pm:
        The machine to monitor (its simulator provides the clock and
        the per-tool noise streams).
    interval:
        Sampling period in seconds.
    noiseless:
        Disable measurement noise (useful for calibration tests).
    faults:
        Optional :class:`~repro.faults.sampling.SampleFaults` model for
        dropout bursts and outlier corruption.  ``None`` (the default)
        adds no per-tick work and no RNG draws -- clean runs are
        byte-identical to a build without fault support.
    gap_policy:
        How lost ticks are recorded: ``"hold"`` carries the last-known
        good reading forward (the shell script's behaviour), ``"nan"``
        leaves an explicit NaN.  Either way the tick's validity flag is
        cleared, so reports stay aligned across PMs with no silent data
        loss.
    """

    def __init__(
        self,
        pm: PhysicalMachine,
        *,
        interval: float = DEFAULT_INTERVAL,
        noiseless: bool = False,
        tool_failure_prob: float = 0.0,
        faults: Optional[SampleFaults] = None,
        gap_policy: str = GAP_HOLD,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if gap_policy not in GAP_POLICIES:
            raise ValueError(
                f"gap_policy must be one of {GAP_POLICIES}, got {gap_policy!r}"
            )
        self.pm = pm
        self.interval = interval
        self._faults = faults
        self._gap_policy = gap_policy
        self._corrupt_tick = False
        rng = pm.sim.rng
        key = f"monitor.{pm.name}"
        kw = dict(noiseless=noiseless, failure_prob=tool_failure_prob)
        self._xentop = XenTop(pm.cal, rng(f"{key}.xentop"), **kw)
        self._top = Top(pm.cal, rng(f"{key}.top"), **kw)
        self._mpstat = MpStat(pm.cal, rng(f"{key}.mpstat"), **kw)
        self._vmstat = VmStat(pm.cal, rng(f"{key}.vmstat"), **kw)
        self._ifconfig = IfConfig(pm.cal, rng(f"{key}.ifconfig"), **kw)
        # Hoisted per-tick constants for the precompiled sampling plan.
        self._noiseless = noiseless
        self._failure_prob = tool_failure_prob
        self._noise_floor = pm.cal.noise_floor
        self._sigmas = {
            res: pm.cal.noise_sigma_for(res) for res in RESOURCES
        }
        self._tools = (
            self._xentop,
            self._top,
            self._mpstat,
            self._vmstat,
            self._ifconfig,
        )
        #: The fast plan inlines MeasurementTool.read; a tool subclass
        #: with its own read() must keep routing through it.
        self._tools_native = all(
            type(t).read is MeasurementTool.read for t in self._tools
        )
        self._fast_plan: Optional[tuple] = None
        self._times: List[float] = []
        self._samples: Dict[str, List[float]] = {}
        self._valid: List[bool] = []
        self._proc: Optional[PeriodicProcess] = None
        #: A reading failed with no previous sample to carry forward,
        #: so the current tick holds a fabricated value.
        self._unseeded_tick = False
        #: Readings lost to transient tool failures (each one is filled
        #: with the previous reading, as the shell script does).
        self.missed_samples = 0
        #: Whole ticks lost to dropout bursts or PM outages.
        self.gap_samples = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Begin sampling at the next interval boundary.

        Every per-run accumulator is reset -- including the fault
        counters and the per-tick corruption flag, so a restarted
        script never inherits the previous run's tallies.
        """
        if self._proc is not None and not self._proc.stopped:
            raise RuntimeError("measurement script already running")
        self._times.clear()
        self._samples.clear()
        self._valid.clear()
        self.missed_samples = 0
        self.gap_samples = 0
        self._corrupt_tick = False
        self._unseeded_tick = False
        self._fast_plan = None
        self._proc = PeriodicProcess(
            self.pm.sim, self.interval, self._sample, priority=MONITOR_PRIORITY
        )

    def stop(self) -> MeasurementReport:
        """Stop sampling and assemble the report."""
        if self._proc is None:
            raise RuntimeError("measurement script was never started")
        self._proc.stop()
        self._proc = None
        return self._build_report()

    def run(self, duration: float = DEFAULT_DURATION) -> MeasurementReport:
        """Start, simulate ``duration`` seconds, stop, and report."""
        if duration < self.interval:
            raise ValueError("duration shorter than one sampling interval")
        with _obs.span(
            "monitor.run", "monitor", sim=self.pm.sim, pm=self.pm.name
        ):
            self.start()
            self.pm.sim.run_until(self.pm.sim.now + duration)
            return self.stop()

    # -- internals ---------------------------------------------------------

    def _record(self, entity: str, resource: str, value: float) -> None:
        self._samples.setdefault(trace_name(entity, resource), []).append(value)

    def _read(
        self, tool, snap, scope: str, resource: str, entity: str, vm_name=None
    ) -> float:
        """One reading; a transient tool failure repeats the previous
        sample (the shell script's carry-forward behaviour).

        A failure with *no* previous sample has nothing to carry
        forward; the substituted value (0.0 under ``hold``, NaN under
        ``nan``) is fabricated, so the whole tick is flagged invalid
        rather than silently polluting the trace mean.
        """
        try:
            value = tool.read(snap, scope, resource, vm_name)
        except ToolFailure:
            self.missed_samples += 1
            _obs.inc("repro_monitor_missed_samples_total", pm=self.pm.name)
            prev = self._samples.get(trace_name(entity, resource))
            if prev:
                return prev[-1]
            self._unseeded_tick = True
            return float("nan") if self._gap_policy == GAP_NAN else 0.0
        if self._corrupt_tick:
            value = self._faults.corrupt(value)
        return value

    def _expected_traces(self, snap) -> List[str]:
        """Every trace name a full tick of this snapshot would record."""
        names: List[str] = []
        for vm_name in snap.vms:
            for res in RESOURCES:
                names.append(trace_name(vm_name, res))
        for res in RESOURCES:
            names.append(trace_name(ENTITY_DOM0, res))
        names.append(trace_name(ENTITY_HYPERVISOR, "cpu"))
        for res in RESOURCES:
            names.append(trace_name(ENTITY_PM, res))
        return names

    def _record_gap(self, snap) -> None:
        """Record one lost tick: held or NaN values, validity False.

        The tick still occupies its slot in every series, so multi-PM
        reports stay aligned on the shared clock no matter which PM
        dropped which ticks.
        """
        self.gap_samples += 1
        _obs.inc("repro_monitor_gap_ticks_total", pm=self.pm.name)
        for name in self._expected_traces(snap):
            prev = self._samples.get(name)
            if self._gap_policy == GAP_HOLD:
                value = prev[-1] if prev else 0.0
            else:
                value = float("nan")
            self._samples.setdefault(name, []).append(value)

    def _sample(self, now: float) -> None:
        """One 1 Hz tick: dispatch to the precompiled fast plan or the
        reference path.

        The fast plan applies only to *clean* ticks -- no fault model,
        no tool-failure probability, PM up, observability off, fast path
        enabled.  Anything else (including a crashed PM mid-run) routes
        through the reference implementation, whose gap/carry-forward
        machinery appends to the very same sample lists.
        """
        if (
            self._faults is None
            and self._failure_prob == 0.0  # repro: noqa[REP004] exact "no failures configured" sentinel
            and not self.pm.failed
            and self._tools_native
            # An instance-level read() override (tests inject failures
            # this way) must keep being called.
            and not any("read" in t.__dict__ for t in self._tools)
            and not _fastpath.slowpath_enabled()
            and _obs.installed() is None
        ):
            self._sample_fast(now)
            return
        self._sample_slow(now)

    def _fast_perturb(self, rng, value: float, sigma: float) -> float:
        """Inline :meth:`MeasurementTool._perturb`: identical arithmetic
        and identical draw order on the same per-tool stream, with the
        capability checks and sigma lookups hoisted into the plan."""
        if self._noiseless or value == 0.0:  # repro: noqa[REP004] idle counters read exactly zero
            return value
        noisy = value * float(np.exp(rng.normal(0.0, sigma)))
        noisy += float(rng.uniform(0.0, self._noise_floor))
        return max(0.0, noisy)

    def _build_fast_plan(self) -> tuple:
        """Bind every trace list this PM's clean ticks will append to.

        Rebuilt whenever the hosted VM set changes; the lists live in
        ``self._samples``, so fast and reference ticks interleave safely
        within one run.
        """
        samples = self._samples

        def lst(entity: str, resource: str) -> List[float]:
            return samples.setdefault(trace_name(entity, resource), [])

        vms = self.pm.vms
        plan = (
            tuple(vms),
            [
                (
                    vm,
                    lst(name, "cpu"),
                    lst(name, "io"),
                    lst(name, "bw"),
                    lst(name, "mem"),
                )
                for name, vm in vms.items()
            ],
            lst(ENTITY_DOM0, "cpu"),
            lst(ENTITY_DOM0, "mem"),
            lst(ENTITY_DOM0, "io"),
            lst(ENTITY_DOM0, "bw"),
            lst(ENTITY_HYPERVISOR, "cpu"),
            lst(ENTITY_PM, "cpu"),
            lst(ENTITY_PM, "mem"),
            lst(ENTITY_PM, "io"),
            lst(ENTITY_PM, "bw"),
        )
        self._fast_plan = plan
        return plan

    def _sample_fast(self, now: float) -> None:
        """Clean-tick sampling without snapshot allocation or per-read
        capability checks; draw order and arithmetic match
        :meth:`_sample_slow` bit for bit."""
        pm = self.pm
        plan = self._fast_plan
        if plan is None or plan[0] != tuple(pm.vms):
            plan = self._build_fast_plan()
        (
            _,
            vm_rows,
            l_dom0_cpu,
            l_dom0_mem,
            l_dom0_io,
            l_dom0_bw,
            l_hyp_cpu,
            l_pm_cpu,
            l_pm_mem,
            l_pm_io,
            l_pm_bw,
        ) = plan
        self._times.append(now)
        self._valid.append(True)
        self._unseeded_tick = False
        self._corrupt_tick = False

        perturb = self._fast_perturb
        sigmas = self._sigmas
        s_cpu = sigmas["cpu"]
        s_mem = sigmas["mem"]
        s_io = sigmas["io"]
        s_bw = sigmas["bw"]
        xt_rng = self._xentop._rng
        top_rng = self._top._rng

        guest_cpu = guest_mem = 0.0
        for vm, l_cpu, l_io, l_bw, l_mem in vm_rows:
            g = vm.granted
            cpu = perturb(xt_rng, g.cpu_pct, s_cpu)
            io = perturb(xt_rng, g.io_bps, s_io)
            bw = perturb(xt_rng, g.bw_kbps, s_bw)
            mem = perturb(top_rng, g.mem_mb, s_mem)
            l_cpu.append(cpu)
            l_io.append(io)
            l_bw.append(bw)
            l_mem.append(mem)
            guest_cpu += cpu
            guest_mem += mem

        dom0_cpu = perturb(xt_rng, pm.dom0.state.cpu_pct, s_cpu)
        dom0_mem = perturb(top_rng, pm.dom0.mem_mb, s_mem)
        l_dom0_cpu.append(dom0_cpu)
        l_dom0_mem.append(dom0_mem)
        # Dom0 consumes no disk or network itself (snapshot reads 0.0);
        # exact zeros skip the noise draws, so append them directly.
        l_dom0_io.append(0.0)
        l_dom0_bw.append(0.0)

        hyp_cpu = perturb(
            self._mpstat._rng, pm.hypervisor.state.cpu_pct, s_cpu
        )
        l_hyp_cpu.append(hyp_cpu)
        l_pm_cpu.append(dom0_cpu + hyp_cpu + guest_cpu)
        l_pm_mem.append(dom0_mem + guest_mem)
        l_pm_io.append(perturb(self._vmstat._rng, pm._pm_io_bps, s_io))
        l_pm_bw.append(perturb(self._ifconfig._rng, pm._pm_bw_kbps, s_bw))

    def _sample_slow(self, now: float) -> None:
        snap = self.pm.snapshot()
        self._times.append(now)
        _obs.inc("repro_monitor_ticks_total", pm=self.pm.name)
        if self.pm.failed:
            # A crashed PM cannot run any tool: the whole tick is a gap
            # (no RNG is consumed, so recovery re-syncs deterministically).
            self._valid.append(False)
            self._record_gap(snap)
            return
        self._corrupt_tick = False
        if self._faults is not None:
            verdict = self._faults.next_sample()
            if verdict == SAMPLE_DROP:
                self._valid.append(False)
                self._record_gap(snap)
                return
            # Outlier corruption is *silent*: the tick records garbage
            # but stays flagged valid -- detecting it is the robust
            # regression path's job, not the monitor's.
            self._corrupt_tick = verdict == SAMPLE_OUTLIER
        self._valid.append(True)
        self._unseeded_tick = False

        guest_cpu = guest_mem = 0.0
        for name in snap.vms:
            cpu = self._read(self._xentop, snap, SCOPE_VM, "cpu", name, name)
            io = self._read(self._xentop, snap, SCOPE_VM, "io", name, name)
            bw = self._read(self._xentop, snap, SCOPE_VM, "bw", name, name)
            mem = self._read(self._top, snap, SCOPE_VM, "mem", name, name)
            self._record(name, "cpu", cpu)
            self._record(name, "io", io)
            self._record(name, "bw", bw)
            self._record(name, "mem", mem)
            guest_cpu += cpu
            guest_mem += mem

        dom0_cpu = self._read(
            self._xentop, snap, SCOPE_DOM0, "cpu", ENTITY_DOM0
        )
        dom0_mem = self._read(self._top, snap, SCOPE_DOM0, "mem", ENTITY_DOM0)
        self._record(ENTITY_DOM0, "cpu", dom0_cpu)
        self._record(ENTITY_DOM0, "mem", dom0_mem)
        self._record(
            ENTITY_DOM0,
            "io",
            self._read(self._xentop, snap, SCOPE_DOM0, "io", ENTITY_DOM0),
        )
        self._record(
            ENTITY_DOM0,
            "bw",
            self._read(self._xentop, snap, SCOPE_DOM0, "bw", ENTITY_DOM0),
        )

        hyp_cpu = self._read(
            self._mpstat, snap, SCOPE_PM, "cpu", ENTITY_HYPERVISOR
        )
        self._record(ENTITY_HYPERVISOR, "cpu", hyp_cpu)

        # PM CPU is computed indirectly as the component sum (paper
        # Section III-C); PM memory is estimated as Dom0 + guests.
        self._record(ENTITY_PM, "cpu", dom0_cpu + hyp_cpu + guest_cpu)
        self._record(ENTITY_PM, "mem", dom0_mem + guest_mem)
        self._record(
            ENTITY_PM,
            "io",
            self._read(self._vmstat, snap, SCOPE_PM, "io", ENTITY_PM),
        )
        self._record(
            ENTITY_PM,
            "bw",
            self._read(self._ifconfig, snap, SCOPE_PM, "bw", ENTITY_PM),
        )
        if self._unseeded_tick:
            # At least one reading was fabricated with no history
            # behind it (first-tick tool failure): the tick keeps its
            # slot but must not count as measured data.
            self._valid[-1] = False

    def _build_report(self) -> MeasurementReport:
        times = np.asarray(self._times)
        traces = TraceSet()
        for name, values in sorted(self._samples.items()):
            resource = name.rsplit(".", 1)[1]
            traces.add(Trace(name, times, np.asarray(values), UNITS[resource]))
        validity = None
        if (
            self._faults is not None
            or self.gap_samples > 0
            or not all(self._valid)
        ):
            validity = np.asarray(self._valid, dtype=bool)
        return MeasurementReport(
            pm_name=self.pm.name, traces=traces, validity=validity
        )
