"""Emulated measurement tools with the paper's Table I capability matrix.

None of the standard tools can observe everything (Table I): ``xentop``
sees guest and Dom0 CPU/I/O/bandwidth but no memory; ``top`` must run
*inside* each VM to read its memory; ``mpstat`` is the only view of the
hypervisor's CPU; ``vmstat``/``ifconfig`` provide the PM's I/O and
bandwidth.  Each emulated tool therefore exposes exactly the metrics its
real counterpart can, raising :class:`CapabilityError` otherwise, and
perturbs readings with the calibrated measurement noise -- the unified
measurement script composes them the way the paper's shell script does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.monitor.metrics import RESOURCES
from repro.xen.calibration import XenCalibration
from repro.xen.machine import MachineSnapshot

#: Entities a tool can be asked about.
SCOPE_VM = "vm"
SCOPE_DOM0 = "dom0"
SCOPE_PM = "pm"  # the paper's "PM/hypervisor" column


class CapabilityError(LookupError):
    """The tool cannot measure the requested (scope, resource) pair."""


class ToolFailure(RuntimeError):
    """A transient sampling failure (tool timed out / was descheduled).

    Real 1 Hz shell-script monitoring loses occasional samples when a
    tool hangs past its slot; the unified script carries the previous
    reading forward.  Injected via ``failure_prob``.
    """


@dataclass(frozen=True)
class Capability:
    """One cell of Table I."""

    supported: bool
    #: The real tool must run inside the guest for this metric (the
    #: table's ``*`` annotation).
    inside_vm: bool = False
    #: Included in the paper's unified script (the ``+`` annotation).
    in_script: bool = False

    @property
    def cell(self) -> str:
        """Render as a Table I cell: ``Y``, ``Y*``, ``Y+``, ``Y*+``, ``-``."""
        if not self.supported:
            return "-"
        return "Y" + ("*" if self.inside_vm else "") + (
            "+" if self.in_script else ""
        )


def _cap(code: str) -> Capability:
    """Parse a Table I cell code."""
    if code == "-":
        return Capability(False)
    if not code.startswith("Y"):
        raise ValueError(f"bad capability code {code!r}")
    return Capability(True, inside_vm="*" in code, in_script="+" in code)


#: Table I, verbatim.  Keys: tool -> (scope, resource) -> cell code.
TABLE_I: Dict[str, Dict[Tuple[str, str], Capability]] = {
    "xentop": {
        (SCOPE_VM, "cpu"): _cap("Y+"),
        (SCOPE_VM, "mem"): _cap("-"),
        (SCOPE_VM, "io"): _cap("Y+"),
        (SCOPE_VM, "bw"): _cap("Y+"),
        (SCOPE_DOM0, "cpu"): _cap("Y+"),
        (SCOPE_DOM0, "mem"): _cap("-"),
        (SCOPE_DOM0, "io"): _cap("Y+"),
        (SCOPE_DOM0, "bw"): _cap("Y+"),
        (SCOPE_PM, "cpu"): _cap("-"),
        (SCOPE_PM, "mem"): _cap("-"),
        (SCOPE_PM, "io"): _cap("-"),
        (SCOPE_PM, "bw"): _cap("-"),
    },
    "top": {
        (SCOPE_VM, "cpu"): _cap("Y*"),
        (SCOPE_VM, "mem"): _cap("Y*+"),
        (SCOPE_VM, "io"): _cap("-"),
        (SCOPE_VM, "bw"): _cap("-"),
        (SCOPE_DOM0, "cpu"): _cap("Y"),
        (SCOPE_DOM0, "mem"): _cap("Y+"),
        (SCOPE_DOM0, "io"): _cap("-"),
        (SCOPE_DOM0, "bw"): _cap("-"),
        (SCOPE_PM, "cpu"): _cap("-"),
        (SCOPE_PM, "mem"): _cap("-"),
        (SCOPE_PM, "io"): _cap("-"),
        (SCOPE_PM, "bw"): _cap("-"),
    },
    "mpstat": {
        (SCOPE_VM, "cpu"): _cap("Y*"),
        (SCOPE_VM, "mem"): _cap("-"),
        (SCOPE_VM, "io"): _cap("-"),
        (SCOPE_VM, "bw"): _cap("-"),
        (SCOPE_DOM0, "cpu"): _cap("-"),
        (SCOPE_DOM0, "mem"): _cap("-"),
        (SCOPE_DOM0, "io"): _cap("-"),
        (SCOPE_DOM0, "bw"): _cap("-"),
        (SCOPE_PM, "cpu"): _cap("Y+"),
        (SCOPE_PM, "mem"): _cap("-"),
        (SCOPE_PM, "io"): _cap("-"),
        (SCOPE_PM, "bw"): _cap("-"),
    },
    "ifconfig": {
        (SCOPE_VM, "cpu"): _cap("-"),
        (SCOPE_VM, "mem"): _cap("-"),
        (SCOPE_VM, "io"): _cap("-"),
        (SCOPE_VM, "bw"): _cap("Y*"),
        (SCOPE_DOM0, "cpu"): _cap("-"),
        (SCOPE_DOM0, "mem"): _cap("-"),
        (SCOPE_DOM0, "io"): _cap("-"),
        (SCOPE_DOM0, "bw"): _cap("-"),
        (SCOPE_PM, "cpu"): _cap("-"),
        (SCOPE_PM, "mem"): _cap("-"),
        (SCOPE_PM, "io"): _cap("-"),
        (SCOPE_PM, "bw"): _cap("Y+"),
    },
    "vmstat": {
        (SCOPE_VM, "cpu"): _cap("Y*"),
        (SCOPE_VM, "mem"): _cap("Y*"),
        (SCOPE_VM, "io"): _cap("Y*"),
        (SCOPE_VM, "bw"): _cap("-"),
        (SCOPE_DOM0, "cpu"): _cap("-"),
        (SCOPE_DOM0, "mem"): _cap("Y"),
        (SCOPE_DOM0, "io"): _cap("-"),
        (SCOPE_DOM0, "bw"): _cap("-"),
        (SCOPE_PM, "cpu"): _cap("Y"),
        (SCOPE_PM, "mem"): _cap("-"),
        (SCOPE_PM, "io"): _cap("Y+"),
        (SCOPE_PM, "bw"): _cap("-"),
    },
}


class MeasurementTool:
    """Base emulated tool: capability checks + calibrated reading noise.

    Subclasses bind a Table I row and implement the noise-free value
    lookup; this class validates capabilities and perturbs the reading
    with the measurement noise of
    :class:`~repro.xen.calibration.XenCalibration` (multiplicative
    log-normal plus a small additive jitter floor; exact zeros are read
    as exact zeros, as real counters do).
    """

    #: Tool name; must be a key of :data:`TABLE_I`.
    name: str = ""

    def __init__(
        self,
        cal: XenCalibration,
        rng: np.random.Generator,
        *,
        noiseless: bool = False,
        failure_prob: float = 0.0,
    ) -> None:
        if self.name not in TABLE_I:
            raise ValueError(f"unknown tool {self.name!r}")
        if not 0.0 <= failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        self._cal = cal
        self._rng = rng
        self._noiseless = noiseless
        self.failure_prob = failure_prob
        self.capabilities = TABLE_I[self.name]

    def can_measure(self, scope: str, resource: str) -> bool:
        """Whether this tool supports the (scope, resource) pair."""
        cap = self.capabilities.get((scope, resource))
        return bool(cap and cap.supported)

    def read(
        self,
        snapshot: MachineSnapshot,
        scope: str,
        resource: str,
        vm_name: Optional[str] = None,
    ) -> float:
        """One perturbed reading of the metric.

        Raises
        ------
        CapabilityError
            If the real tool cannot observe this metric.
        """
        if resource not in RESOURCES:
            raise ValueError(f"unknown resource {resource!r}")
        if not self.can_measure(scope, resource):
            raise CapabilityError(
                f"{self.name} cannot measure {scope}.{resource} (Table I)"
            )
        if scope == SCOPE_VM and vm_name is None:
            raise ValueError("vm_name is required for VM-scope readings")
        if self.failure_prob > 0.0 and self._rng.random() < self.failure_prob:
            raise ToolFailure(f"{self.name} missed its sampling slot")
        value = self._value(snapshot, scope, resource, vm_name)
        return self._perturb(value, resource)

    def _perturb(self, value: float, resource: str) -> float:
        if self._noiseless or value == 0.0:  # repro: noqa[REP004] idle counters read exactly zero
            return value
        sigma = self._cal.noise_sigma_for(resource)
        noisy = value * float(np.exp(self._rng.normal(0.0, sigma)))
        noisy += float(self._rng.uniform(0.0, self._cal.noise_floor))
        return max(0.0, noisy)

    def _value(
        self,
        snapshot: MachineSnapshot,
        scope: str,
        resource: str,
        vm_name: Optional[str],
    ) -> float:
        if scope == SCOPE_VM:
            util = snapshot.vm(vm_name)  # type: ignore[arg-type]
            return {
                "cpu": util.cpu_pct,
                "mem": util.mem_mb,
                "io": util.io_bps,
                "bw": util.bw_kbps,
            }[resource]
        if scope == SCOPE_DOM0:
            return {
                "cpu": snapshot.dom0_cpu_pct,
                "mem": snapshot.dom0_mem_mb,
                "io": snapshot.dom0_io_bps,
                "bw": snapshot.dom0_bw_kbps,
            }[resource]
        if scope == SCOPE_PM:
            return {
                "cpu": snapshot.hypervisor_cpu_pct,
                "mem": snapshot.pm_mem_mb,
                "io": snapshot.pm_io_bps,
                "bw": snapshot.pm_bw_kbps,
            }[resource]
        raise ValueError(f"unknown scope {scope!r}")


class XenTop(MeasurementTool):
    """``xentop``: per-domain CPU / I/O / bandwidth from Dom0."""

    name = "xentop"


class Top(MeasurementTool):
    """``top``: CPU and memory of the host it runs on (VM or Dom0)."""

    name = "top"


class MpStat(MeasurementTool):
    """``mpstat`` in Xen: the only window onto hypervisor CPU."""

    name = "mpstat"


class IfConfig(MeasurementTool):
    """``ifconfig``: interface byte counters (PM NIC or guest VIF)."""

    name = "ifconfig"


class VmStat(MeasurementTool):
    """``vmstat``: host-level CPU / memory / block I/O counters."""

    name = "vmstat"


ALL_TOOLS = (XenTop, Top, MpStat, IfConfig, VmStat)


def render_table_i() -> str:
    """Render Table I as fixed-width text (the ``table1`` experiment)."""
    scopes = [
        (SCOPE_VM, "VM"),
        (SCOPE_DOM0, "Dom0"),
        (SCOPE_PM, "PM/hyp"),
    ]
    header = ["tool"] + [
        f"{label}.{res}" for _, label in scopes for res in RESOURCES
    ]
    rows = []
    for tool, caps in TABLE_I.items():
        row = [tool]
        for scope, _ in scopes:
            for res in RESOURCES:
                row.append(caps[(scope, res)].cell)
        rows.append(row)
    widths = [
        max(len(header[i]), max(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
