"""httperf / Iperf-style legacy benchmark generators.

Prior work ([12], [13], [14] in the paper) drove its measurements with
``httperf`` and ``Iperf``.  Section III-B's critique: those benchmarks
"cannot provide a workload that has high utilization on a sole resource
and low overhead on other resources" -- an httperf connection burns web
CPU *and* bandwidth *and* disk; Iperf saturates bandwidth while also
consuming CPU.  The paper builds lookbusy/ping micro benchmarks instead.

These classes reproduce the legacy generators so the critique is
testable: :func:`resource_purity` quantifies how concentrated a
workload's resource footprint is, and the suite shows Table II
benchmarks scoring near 1.0 while httperf/Iperf smear across resources.
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import Workload
from repro.xen.network import Flow, external_host
from repro.xen.vm import GuestVM


class HttperfLoad(Workload):
    """An httperf-style HTTP request generator.

    Intensity unit: requests/s.  Each request costs guest CPU (parsing,
    templating), transfers a response over the network and occasionally
    misses the page cache (disk reads) -- a deliberately *impure*
    workload.
    """

    def __init__(
        self,
        intensity: float,
        *,
        dst: str = "server",
        cpu_pct_per_rps: float = 0.45,
        resp_kb: float = 8.0,
        io_bps_per_rps: float = 0.25,
    ) -> None:
        super().__init__(intensity)
        if min(cpu_pct_per_rps, resp_kb, io_bps_per_rps) < 0:
            raise ValueError("per-request costs must be >= 0")
        self.cpu_pct_per_rps = cpu_pct_per_rps
        self.resp_kb = resp_kb
        self.io_bps_per_rps = io_bps_per_rps
        self.dst = external_host(dst)
        self._flow: Optional[Flow] = None

    def _apply(self, vm: GuestVM) -> None:
        rps = self.intensity
        vm.demand.cpu_pct = self.cpu_pct_per_rps * rps
        vm.demand.io_bps = self.io_bps_per_rps * rps
        kbps = self.resp_kb * rps
        if self._flow is None:
            self._flow = vm.add_flow(
                Flow(src=vm.name, dst=self.dst, kbps=kbps, packet_kb=self.resp_kb)
            )
        else:
            self._flow.kbps = kbps

    def _clear(self, vm: GuestVM) -> None:
        vm.demand.cpu_pct = 0.0
        vm.demand.io_bps = 0.0
        if self._flow is not None:
            vm.remove_flow(self._flow)
            self._flow = None


class IperfLoad(Workload):
    """An Iperf-style bulk TCP stream.

    Intensity unit: Mb/s.  Saturating a stream costs real guest CPU
    (copying, checksums) on top of the bandwidth itself -- about 1 % of
    a VCPU per 10 Mb/s on period hardware.
    """

    def __init__(
        self,
        intensity: float,
        *,
        dst: str = "sink",
        cpu_pct_per_mbps: float = 0.1,
    ) -> None:
        super().__init__(intensity)
        if cpu_pct_per_mbps < 0:
            raise ValueError("cpu_pct_per_mbps must be >= 0")
        self.cpu_pct_per_mbps = cpu_pct_per_mbps
        self.dst = external_host(dst)
        self._flow: Optional[Flow] = None

    def _apply(self, vm: GuestVM) -> None:
        mbps = self.intensity
        vm.demand.cpu_pct = self.cpu_pct_per_mbps * mbps
        if self._flow is None:
            self._flow = vm.add_flow(
                Flow(src=vm.name, dst=self.dst, kbps=mbps * 1000.0)
            )
        else:
            self._flow.kbps = mbps * 1000.0

    def _clear(self, vm: GuestVM) -> None:
        vm.demand.cpu_pct = 0.0
        if self._flow is not None:
            vm.remove_flow(self._flow)
            self._flow = None


#: Default purity scales: the Table II maxima (cpu %, mem Mb, io
#: blocks/s, bw Kb/s) -- the measurement study's operating envelope.
TABLE_II_SCALES = (99.0, 50.0, 72.0, 1280.0)


def resource_purity(
    vm: GuestVM, scales: tuple[float, float, float, float] = TABLE_II_SCALES
) -> float:
    """How single-resource a guest's demand footprint is, in [0, 1].

    Each resource demand is normalized by ``scales`` (cpu, mem, io, bw;
    defaulting to the Table II maxima, i.e. the measurement study's
    operating envelope); purity is the largest normalized share of the
    total.  A Table II micro benchmark scores ~1.0; an httperf-style
    mix scores well below.  The metric is scale-relative by nature --
    pass capacity-based scales to judge purity at line-rate intensities.
    """
    if len(scales) != 4 or any(s <= 0 for s in scales):
        raise ValueError("scales must be four positive numbers")
    norm = [
        vm.demand.cpu_pct / scales[0],
        vm.demand.mem_mb / scales[1],
        vm.demand.io_bps / scales[2],
        vm.outbound_kbps() / scales[3],
    ]
    total = sum(norm)
    if total <= 0:
        raise ValueError("guest has no demand; purity undefined")
    return max(norm) / total
