"""ping-style network bandwidth workloads.

The paper uses ``ping`` with large payloads to generate bandwidth-
intensive traffic (Table II) -- to a VM on another PM for the inter-PM
experiments, and between two co-located VMs with 64 Kb packets for the
intra-PM experiment (Figure 5).

A :class:`PingLoad` owns one outbound :class:`~repro.xen.network.Flow`
whose rate tracks the workload intensity, plus the small guest CPU cost
of running the generator itself (paper Fig. 2e: VM CPU starts at 0.5 %
under the lightest bandwidth load).
"""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import Workload
from repro.xen.network import Flow, external_host
from repro.xen.vm import GuestVM

#: Guest CPU the ping generator itself burns, before per-Kb/s costs.
PING_BASE_CPU_PCT = 0.5
#: Payload used by the paper's intra-PM experiment (64 Kb).
INTRA_PM_PACKET_KB = 64.0


class PingLoad(Workload):
    """Stream packets at a target rate.

    Parameters
    ----------
    intensity:
        Offered rate in Kb/s.  (Table II lists Mb/s; the suite converts.)
    dst:
        Destination: a VM name for VM-to-VM traffic, or any host label
        for traffic leaving the cluster (wrapped via
        :func:`~repro.xen.network.external_host` when ``external=True``).
    external:
        If true, ``dst`` is outside the simulated cluster.
    intra_pm:
        Force intra-PM classification (the owning machine also detects
        co-located destinations automatically).
    packet_kb:
        Payload size per packet.
    base_cpu_pct:
        Generator CPU cost charged to the guest.
    """

    def __init__(
        self,
        intensity: float,
        *,
        dst: str = "peer",
        external: bool = True,
        intra_pm: bool = False,
        packet_kb: float = 12.0,
        base_cpu_pct: float = PING_BASE_CPU_PCT,
    ) -> None:
        super().__init__(intensity)
        if external and intra_pm:
            raise ValueError("a flow cannot be both external and intra-PM")
        if base_cpu_pct < 0:
            raise ValueError("base_cpu_pct must be >= 0")
        self.dst = external_host(dst) if external else dst
        self.intra_pm = intra_pm
        self.packet_kb = packet_kb
        self.base_cpu_pct = base_cpu_pct
        self._flow: Optional[Flow] = None

    @property
    def flow(self) -> Optional[Flow]:
        """The live flow while attached."""
        return self._flow

    def _apply(self, vm: GuestVM) -> None:
        if self._flow is None:
            self._flow = vm.add_flow(
                Flow(
                    src=vm.name,
                    dst=self.dst,
                    kbps=self.intensity,
                    packet_kb=self.packet_kb,
                    intra_pm=self.intra_pm,
                )
            )
        else:
            self._flow.kbps = self.intensity
        vm.demand.cpu_pct = self.base_cpu_pct

    def _clear(self, vm: GuestVM) -> None:
        if self._flow is not None:
            vm.remove_flow(self._flow)
            self._flow = None
        vm.demand.cpu_pct = 0.0


def intra_pm_ping(intensity_kbps: float, dst_vm: str) -> PingLoad:
    """The paper's Figure 5 workload: 64 Kb pings to a co-located VM."""
    return PingLoad(
        intensity_kbps,
        dst=dst_vm,
        external=False,
        intra_pm=True,
        packet_kb=INTRA_PM_PACKET_KB,
    )
