"""Micro-benchmark workload generators (paper Section III-B, Table II)."""

from repro.workloads.base import DynamicWorkload, Workload
from repro.workloads.legacy import HttperfLoad, IperfLoad, resource_purity
from repro.workloads.lookbusy import IO_HOG_CPU_PCT, CpuHog, IoHog, MemHog
from repro.workloads.replay import TraceReplay, replay_onto_vm, value_at
from repro.workloads.netload import (
    INTRA_PM_PACKET_KB,
    PING_BASE_CPU_PCT,
    PingLoad,
    intra_pm_ping,
)
from repro.workloads.suite import (
    BW,
    CPU,
    IO,
    KINDS,
    MEM,
    TABLE_II,
    BenchmarkSpec,
    intensity_levels,
    make_benchmark,
)

__all__ = [
    "BW",
    "BenchmarkSpec",
    "CPU",
    "CpuHog",
    "DynamicWorkload",
    "HttperfLoad",
    "IperfLoad",
    "resource_purity",
    "INTRA_PM_PACKET_KB",
    "IO",
    "IO_HOG_CPU_PCT",
    "IoHog",
    "KINDS",
    "MEM",
    "MemHog",
    "PING_BASE_CPU_PCT",
    "PingLoad",
    "TraceReplay",
    "replay_onto_vm",
    "value_at",
    "TABLE_II",
    "Workload",
    "intensity_levels",
    "intra_pm_ping",
    "make_benchmark",
]
