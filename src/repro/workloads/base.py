"""Workload abstractions.

A workload is attached to a :class:`~repro.xen.vm.GuestVM` and drives
its demand vector.  Static workloads (the Table II micro benchmarks)
write the demand once; dynamic workloads (RUBiS load ramps) reschedule
themselves on a 1 Hz :class:`~repro.sim.process.PeriodicProcess` and
evaluate an intensity profile at each tick.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.xen.machine import WORKLOAD_PRIORITY
from repro.xen.vm import GuestVM


class Workload(abc.ABC):
    """Base class: attach/detach protocol plus an intensity dial."""

    def __init__(self, intensity: float) -> None:
        if intensity < 0:
            raise ValueError("intensity must be >= 0")
        self._intensity = float(intensity)
        self._vm: Optional[GuestVM] = None

    @property
    def intensity(self) -> float:
        """Current workload intensity in the workload's native unit."""
        return self._intensity

    @intensity.setter
    def intensity(self, value: float) -> None:
        if value < 0:
            raise ValueError("intensity must be >= 0")
        self._intensity = float(value)
        if self._vm is not None:
            self._apply(self._vm)

    @property
    def vm(self) -> Optional[GuestVM]:
        """The guest this workload currently drives, if any."""
        return self._vm

    def attach(self, vm: GuestVM) -> "Workload":
        """Start driving ``vm``'s demand; returns ``self`` for chaining."""
        if self._vm is not None:
            raise RuntimeError("workload is already attached")
        self._vm = vm
        self._apply(vm)
        return self

    def detach(self) -> None:
        """Stop driving the guest and clear the demand we wrote."""
        if self._vm is None:
            return
        self._clear(self._vm)
        self._vm = None

    @abc.abstractmethod
    def _apply(self, vm: GuestVM) -> None:
        """Write the demand corresponding to the current intensity."""

    @abc.abstractmethod
    def _clear(self, vm: GuestVM) -> None:
        """Undo whatever :meth:`_apply` wrote."""


class DynamicWorkload:
    """Drives a workload's intensity from a time profile.

    Parameters
    ----------
    sim:
        The simulator providing the clock.
    workload:
        An attached (or about-to-be-attached) :class:`Workload`.
    profile:
        ``profile(t) -> intensity`` evaluated once per ``period``.
    period:
        Update period in seconds (default 1 s, the paper's monitoring
        resolution).
    """

    def __init__(
        self,
        sim: Simulator,
        workload: Workload,
        profile: Callable[[float], float],
        *,
        period: float = 1.0,
    ) -> None:
        self.workload = workload
        self.profile = profile
        self._proc = PeriodicProcess(
            sim,
            period,
            self._tick,
            priority=WORKLOAD_PRIORITY,
            start_at=sim.now,
        )

    def _tick(self, now: float) -> None:
        self.workload.intensity = max(0.0, float(self.profile(now)))

    def stop(self) -> None:
        """Stop updating; the workload keeps its last intensity."""
        self._proc.stop()
