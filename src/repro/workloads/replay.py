"""Trace-replay workloads.

The paper's evaluation is "trace-driven": recorded utilization series
drive the experiments.  :class:`TraceReplay` plays a recorded
:class:`~repro.traces.Trace` back into a guest's demand -- replaying a
production CPU trace against the simulator, or re-running a measured
RUBiS tier without the application logic.

The trace is sampled with zero-order hold (the value in force at time
``t`` is the last sample at or before ``t``); replay can loop and can
be time-scaled.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.traces.trace import Trace
from repro.workloads.base import Workload
from repro.xen.machine import WORKLOAD_PRIORITY
from repro.xen.vm import GuestVM


def value_at(trace: Trace, t: float) -> float:
    """Zero-order-hold lookup: the last sample at or before ``t``.

    Before the first sample the first value holds (leading flat).
    """
    if len(trace) == 0:
        raise ValueError(f"trace {trace.name!r} is empty")
    idx = int(np.searchsorted(trace.times, t, side="right")) - 1
    idx = max(0, idx)
    return float(trace.values[idx])


class TraceReplay:
    """Drive one resource of a guest from a recorded trace.

    Parameters
    ----------
    sim:
        The simulator providing the clock.
    workload:
        The single-resource workload whose intensity is driven (e.g. a
        :class:`~repro.workloads.lookbusy.CpuHog` attached to the target
        guest).
    trace:
        The recorded series, in the workload's intensity units.
    loop:
        Restart from the beginning when the trace ends (otherwise the
        last value holds).
    time_scale:
        Playback speed; 2.0 replays the trace twice as fast.
    period:
        Update period in simulated seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        workload: Workload,
        trace: Trace,
        *,
        loop: bool = False,
        time_scale: float = 1.0,
        period: float = 1.0,
    ) -> None:
        if len(trace) == 0:
            raise ValueError("cannot replay an empty trace")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.workload = workload
        self.trace = trace
        self.loop = loop
        self.time_scale = time_scale
        self._t0 = sim.now
        self._span = float(trace.times[-1])
        self._proc = PeriodicProcess(
            sim,
            period,
            self._tick,
            priority=WORKLOAD_PRIORITY,
            start_at=sim.now,
        )

    @property
    def finished(self) -> bool:
        """True once a non-looping replay has passed the trace end."""
        return self._proc.stopped

    def stop(self) -> None:
        """Stop replaying; the workload keeps its last intensity."""
        self._proc.stop()

    def _tick(self, now: float) -> None:
        t = (now - self._t0) * self.time_scale
        if self.loop and self._span > 0:
            t = t % self._span
        elif t > self._span:
            self.workload.intensity = float(self.trace.values[-1])
            self._proc.stop()
            return
        self.workload.intensity = max(0.0, value_at(self.trace, t))


def replay_onto_vm(
    sim: Simulator,
    vm: GuestVM,
    trace: Trace,
    workload: Workload,
    **kwargs,
) -> TraceReplay:
    """Attach ``workload`` to ``vm`` and replay ``trace`` through it."""
    workload.attach(vm)
    return TraceReplay(sim, workload, trace, **kwargs)
