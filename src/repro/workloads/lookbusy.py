"""lookbusy-style single-resource hogs.

The paper generates its CPU-, memory- and I/O-intensive micro
benchmarks with `lookbusy` because, unlike application benchmarks, it
loads exactly one resource while leaving the others near idle (Section
III-B).  These classes replicate that property: each hog writes exactly
one field of the guest's demand vector (plus, for the I/O hog, the small
fixed CPU cost the tool itself exhibits -- the paper measures a flat
0.84 % guest CPU during I/O runs).
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.xen.vm import GuestVM

#: Guest CPU consumed by the I/O generator itself, independent of the
#: I/O intensity (paper Figs. 2c/3c/4c report a flat 0.84 %).
IO_HOG_CPU_PCT = 0.84


class CpuHog(Workload):
    """Busy-spin at a target CPU utilization (``lookbusy -c N``).

    Intensity unit: percent of one VCPU (Table II grid: 1/30/60/90/99).
    """

    def _apply(self, vm: GuestVM) -> None:
        vm.demand.cpu_pct = self.intensity

    def _clear(self, vm: GuestVM) -> None:
        vm.demand.cpu_pct = 0.0


class MemHog(Workload):
    """Hold a memory working set (``lookbusy -m SIZE``).

    Intensity unit: MiB (Table II grid: 0.03/5/10/20/50).
    """

    def _apply(self, vm: GuestVM) -> None:
        vm.demand.mem_mb = self.intensity

    def _clear(self, vm: GuestVM) -> None:
        vm.demand.mem_mb = 0.0


class IoHog(Workload):
    """Generate disk traffic at a target block rate (``lookbusy -d``).

    Intensity unit: blocks/s (Table II grid: 15/19/27/46/72).  Also
    charges the generator's own fixed CPU cost to the guest.
    """

    def __init__(self, intensity: float, *, cpu_cost_pct: float = IO_HOG_CPU_PCT):
        super().__init__(intensity)
        if cpu_cost_pct < 0:
            raise ValueError("cpu_cost_pct must be >= 0")
        self.cpu_cost_pct = cpu_cost_pct

    def _apply(self, vm: GuestVM) -> None:
        vm.demand.io_bps = self.intensity
        vm.demand.cpu_pct = self.cpu_cost_pct

    def _clear(self, vm: GuestVM) -> None:
        vm.demand.io_bps = 0.0
        vm.demand.cpu_pct = 0.0
