"""Table II: the measurement-study benchmark grids.

The paper sweeps each single-resource benchmark over five intensity
levels (Section III-B, Table II).  This module is the single source of
truth for those grids; the figure experiments and benchmarks enumerate
them from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.base import Workload
from repro.workloads.lookbusy import CpuHog, IoHog, MemHog
from repro.workloads.netload import PingLoad

#: Benchmark kind identifiers (paper drops "-intensive" for brevity).
CPU = "cpu"
MEM = "mem"
IO = "io"
BW = "bw"

KINDS: Tuple[str, ...] = (CPU, MEM, IO, BW)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table II."""

    kind: str
    label: str
    units: str
    levels: Tuple[float, ...]


#: Table II, verbatim.
TABLE_II: Dict[str, BenchmarkSpec] = {
    CPU: BenchmarkSpec(
        kind=CPU,
        label="CPU-intensive",
        units="%",
        levels=(1.0, 30.0, 60.0, 90.0, 99.0),
    ),
    MEM: BenchmarkSpec(
        kind=MEM,
        label="MEM-intensive",
        units="Mb",
        levels=(0.03, 5.0, 10.0, 20.0, 50.0),
    ),
    IO: BenchmarkSpec(
        kind=IO,
        label="I/O-intensive",
        units="blocks/s",
        levels=(15.0, 19.0, 27.0, 46.0, 72.0),
    ),
    BW: BenchmarkSpec(
        kind=BW,
        label="BW-intensive",
        units="Mb/s",
        levels=(0.001, 0.16, 0.32, 0.64, 1.28),
    ),
}


def intensity_levels(kind: str) -> Tuple[float, ...]:
    """The five Table II intensity levels for ``kind``."""
    return _spec(kind).levels


def make_benchmark(kind: str, intensity: float, **kwargs) -> Workload:
    """Instantiate the workload for one Table II cell.

    ``intensity`` is given in the table's native unit (so BW in Mb/s);
    conversion to the simulator's Kb/s happens here.  Extra ``kwargs``
    are forwarded to the workload constructor (e.g. ``dst`` for BW).
    """
    spec = _spec(kind)
    if intensity < 0:
        raise ValueError("intensity must be >= 0")
    if kind == CPU:
        return CpuHog(intensity, **kwargs)
    if kind == MEM:
        return MemHog(intensity, **kwargs)
    if kind == IO:
        return IoHog(intensity, **kwargs)
    assert spec.kind == BW
    return PingLoad(intensity * 1000.0, **kwargs)


def _spec(kind: str) -> BenchmarkSpec:
    try:
        return TABLE_II[kind]
    except KeyError:
        raise ValueError(
            f"unknown benchmark kind {kind!r}; expected one of {KINDS}"
        ) from None
