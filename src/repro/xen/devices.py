"""Virtual device models: the striped virtual disk and the physical NIC.

Both devices translate *guest-visible* utilization into *PM-visible*
utilization, which is where the paper's I/O and bandwidth overheads come
from:

* the virtual disk is striped across physical extents, so one guest
  block turns into ~2.05 physical blocks (Fig. 2b: "PM's I/O utilization
  is nearly twice as much as the VM's");
* the NIC carries encapsulation/scheduling overhead that grows with the
  number of VMs sharing it (3 % for multi-VM traffic, ~400 B/s for a
  single flow) plus a small idle chatter floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.xen import stateclock
from repro.xen.calibration import XenCalibration
from repro.xen.scheduler import weighted_water_fill
from repro.xen.specs import MachineSpec


@dataclass
class DiskResult:
    """Outcome of one disk arbitration round."""

    #: Granted guest throughput, blocks/s, aligned with the input order.
    granted_bps: list[float]
    #: Physical disk utilization, blocks/s (amplified + floor).
    pm_io_bps: float


class VirtualDiskArray:
    """The striped virtual block device shared by all guests on a PM."""

    def __init__(self, spec: MachineSpec, cal: XenCalibration) -> None:
        self._spec = spec
        self._cal = cal

    def arbitrate(self, demands_bps: Sequence[float]) -> DiskResult:
        """Grant guest disk throughput and compute PM utilization.

        ``demands_bps`` must already be capped per-VM by the caller
        (:attr:`repro.xen.vm.GuestVM.io_demand_capped`); this method
        additionally enforces the aggregate physical ceiling, fairly.
        """
        if any(d < 0 for d in demands_bps):
            raise ValueError("disk demands must be >= 0")
        # The physical ceiling applies to amplified traffic.
        amp = self._cal.io_amplification
        budget_guest_bps = max(
            0.0, (self._spec.disk_iops_cap - self._cal.pm_io_floor_bps) / amp
        )
        if sum(demands_bps) <= budget_guest_bps:
            granted = [float(d) for d in demands_bps]
        else:
            granted = weighted_water_fill(
                list(demands_bps), [1.0] * len(demands_bps), budget_guest_bps
            )
        pm = amp * sum(granted) + self._cal.pm_io_floor_bps
        return DiskResult(granted_bps=granted, pm_io_bps=pm)


@dataclass
class NicResult:
    """Outcome of one NIC arbitration round."""

    #: Granted *inter-PM* outbound rate per flow (Kb/s), input order.
    granted_kbps: list[float]
    #: Physical NIC utilization in Kb/s (overhead + chatter + floor).
    pm_bw_kbps: float


class PhysicalNic:
    """The Gigabit NIC shared by all inter-PM flows on a PM.

    Intra-PM flows never reach this device (the paper's Figure 5(a)
    shows zero PM bandwidth for VM-to-VM traffic inside one PM); the
    machine filters them out before calling :meth:`arbitrate`.
    """

    def __init__(self, spec: MachineSpec, cal: XenCalibration) -> None:
        self._spec = spec
        self._cal = cal
        self._bw_factor = 1.0
        self._loss_frac = 0.0

    @property
    def degraded(self) -> bool:
        """Whether a fault-injected degradation episode is active."""
        # Both are exact sentinels assigned, never computed.
        return self._bw_factor != 1.0 or self._loss_frac != 0.0  # repro: noqa[REP004]

    def degrade(self, *, bw_factor: float = 1.0, loss_frac: float = 0.0) -> None:
        """Clamp the line rate and/or start dropping granted traffic.

        Models a NIC training down (``bw_factor``) and frame loss
        (``loss_frac``); reverted with :meth:`restore`.
        """
        if not 0.0 < bw_factor <= 1.0:
            raise ValueError("bw_factor must be in (0, 1]")
        if not 0.0 <= loss_frac < 1.0:
            raise ValueError("loss_frac must be in [0, 1)")
        self._bw_factor = bw_factor
        self._loss_frac = loss_frac
        stateclock.bump()

    def restore(self) -> None:
        """End the degradation episode (full line rate, no loss)."""
        self._bw_factor = 1.0
        self._loss_frac = 0.0
        stateclock.bump()

    def arbitrate(
        self, flow_kbps: Sequence[float], n_senders: int
    ) -> NicResult:
        """Grant inter-PM flow rates and compute PM bandwidth.

        Parameters
        ----------
        flow_kbps:
            Offered rate of each inter-PM flow.
        n_senders:
            Number of distinct VMs with active inter-PM traffic; drives
            the sharing-overhead fraction (single sender: only the
            constant ~400 B/s chatter; N senders: up to the calibrated
            3 % encapsulation overhead).
        """
        if any(k < 0 for k in flow_kbps):
            raise ValueError("flow rates must be >= 0")
        if n_senders < 0:
            raise ValueError("n_senders must be >= 0")
        line = self._spec.nic_kbps
        if self._bw_factor != 1.0:  # repro: noqa[REP004] exact no-degradation sentinel
            line *= self._bw_factor
        if sum(flow_kbps) <= line:
            granted = [float(k) for k in flow_kbps]
        else:
            granted = weighted_water_fill(
                list(flow_kbps), [1.0] * len(flow_kbps), line
            )
        if self._loss_frac > 0.0:
            granted = [g * (1.0 - self._loss_frac) for g in granted]
        total = sum(granted)
        pm = self._cal.pm_bw_floor_kbps
        if total > 0:
            share_frac = self._cal.pm_bw_overhead_frac * (
                1.0 - 1.0 / max(1, n_senders)
            )
            pm += total * (1.0 + share_frac) + self._cal.pm_bw_chatter_kbps
        return NicResult(granted_kbps=granted, pm_bw_kbps=min(pm, line))
