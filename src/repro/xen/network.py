"""Network flows between VMs and across PMs.

The paper distinguishes two packet paths (Section IV-B, Figure 5):

* **inter-PM** -- packets traverse netback in Dom0, the physical NIC and
  the wire; they consume PM bandwidth and cost Dom0 0.01 percentage
  points of CPU per Kb/s.
* **intra-PM** -- packets between co-located VMs are redirected between
  VIFs inside Dom0; they never touch the physical NIC (zero PM
  bandwidth) and cost 5x less Dom0 CPU (0.002 points per Kb/s).

A :class:`Flow` is a unidirectional stream of traffic from a source VM
to a destination.  The destination can be another VM (possibly on the
same PM) or an external host such as a load-generator client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.xen import stateclock

#: Destination prefix for hosts outside the simulated cluster.
EXTERNAL_PREFIX = "external:"


@dataclass
class Flow:
    """A unidirectional traffic stream.

    Attributes
    ----------
    src:
        Name of the sending VM.
    dst:
        Name of the receiving VM, or ``"external:<host>"`` for traffic
        leaving the cluster (e.g. RUBiS clients).
    kbps:
        Offered rate in Kb/s; mutable (workloads ramp it).
    packet_kb:
        Packet size in Kb (the paper's intra-PM experiment uses 64 Kb
        ping payloads).
    intra_pm:
        Whether both endpoints share a PM.  Maintained by the owning
        :class:`~repro.xen.machine.PhysicalMachine` /
        :class:`~repro.cluster.cluster.Cluster`; may also be set
        explicitly for standalone experiments.
    name:
        Optional label for diagnostics.
    """

    src: str
    dst: str
    kbps: float = 0.0
    packet_kb: float = 12.0
    intra_pm: bool = False
    name: str = ""

    def __setattr__(self, name: str, value: Any) -> None:
        # Flow rates are scheduler input (workloads ramp ``kbps`` every
        # tick, often to the value already set); bump the machine memo's
        # state clock only when the value actually changes.
        stateclock.set_if_changed(self, name, value)

    def __post_init__(self) -> None:
        if not self.src:
            raise ValueError("flow src must be non-empty")
        if not self.dst:
            raise ValueError("flow dst must be non-empty")
        if self.kbps < 0:
            raise ValueError("flow rate must be >= 0")
        if self.packet_kb <= 0:
            raise ValueError("packet size must be positive")
        if not self.name:
            self.name = f"{self.src}->{self.dst}"

    @property
    def external(self) -> bool:
        """True if the destination lies outside the simulated cluster."""
        return self.dst.startswith(EXTERNAL_PREFIX)

    @property
    def packets_per_s(self) -> float:
        """Offered packet rate."""
        return self.kbps / self.packet_kb


def external_host(host: str) -> str:
    """Build an external destination id for :class:`Flow`."""
    if not host:
        raise ValueError("host must be non-empty")
    return EXTERNAL_PREFIX + host
