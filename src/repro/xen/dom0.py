"""The device-driver domain (Dom0).

Dom0 hosts the back-end drivers: **netback** (network packets between
guest VIFs and the physical NIC, or between two VIFs for intra-PM
traffic) and **blkback** (disk request forwarding).  Everything the
guests push through those drivers costs Dom0 CPU:

* a baseline of housekeeping work (16.8 % on the paper's testbed);
* control-signal processing that grows convexly with the CPU activity
  of the guests it serves, amortized across co-located guests
  (:meth:`~repro.xen.calibration.XenCalibration.dom0_ctl_demand`);
* per-Kb/s packet processing -- 0.01 points for inter-PM traffic,
  0.002 for intra-PM traffic (VIF-to-VIF redirection skips the NIC
  interrupt path, the paper's "5X less");
* per-block/s blkback request handling.

Dom0 consumes **no** disk or network bandwidth itself (the data path is
accounted at the PM level; Dom0 only shuffles descriptors), matching the
paper's observation that Dom0 I/O and bandwidth utilizations are always
zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.xen import stateclock
from repro.xen.calibration import XenCalibration


@dataclass
class Dom0State:
    """Instantaneous Dom0 utilization (what `xentop`/`top` would show)."""

    cpu_pct: float = 0.0
    mem_mb: float = 0.0
    io_bps: float = 0.0  # always 0 by construction; kept for symmetry
    bw_kbps: float = 0.0  # always 0 by construction


class Dom0:
    """Driver-domain demand model and utilization record."""

    #: Scheduler weight of Dom0.  XenServer boosts the driver domain so
    #: it is served before guests; the machine implements the boost by
    #: granting Dom0 ahead of the guest water-fill.
    BOOST_WEIGHT = 65535

    def __init__(self, cal: XenCalibration) -> None:
        self._cal = cal
        self.state = Dom0State(mem_mb=cal.dom0_mem_mb)
        #: CPU burned by monitoring probes running in Dom0 (xentop,
        #: vmstat, ...); owned by :mod:`repro.monitor.overhead`.
        self.probe_cpu_pct = 0.0

    def __setattr__(self, name: str, value: Any) -> None:
        # ``probe_cpu_pct`` is scheduler input (demand); ``state`` holds
        # outputs and is mutated in place by record(), never rebinding
        # an attribute here.
        stateclock.set_if_changed(self, name, value)

    def cpu_demand(
        self,
        granted_guest_cpu: Sequence[float],
        inter_kbps: float,
        intra_kbps: float,
        guest_io_bps: float,
    ) -> float:
        """Dom0 CPU demand for the coming quantum.

        Parameters
        ----------
        granted_guest_cpu:
            Per-guest CPU granted in the previous quantum (% of VCPU).
        inter_kbps:
            Aggregate guest traffic crossing the physical NIC.
        intra_kbps:
            Aggregate guest traffic redirected VIF-to-VIF inside the PM.
        guest_io_bps:
            Aggregate granted guest disk throughput (blocks/s).
        """
        cal = self._cal
        demand = cal.dom0_ctl_demand(list(granted_guest_cpu))
        demand += cal.dom0_net_pct_per_kbps * inter_kbps
        demand += cal.dom0_net_intra_pct_per_kbps * intra_kbps
        demand += cal.dom0_io_pct_per_bps * guest_io_bps
        demand += self.probe_cpu_pct
        return demand

    def record(self, granted_cpu_pct: float) -> None:
        """Store the CPU actually granted by the scheduler."""
        self.state.cpu_pct = granted_cpu_pct

    @property
    def mem_mb(self) -> float:
        """Dom0 resident memory (constant working set)."""
        return self._cal.dom0_mem_mb
