"""The Xen hypervisor's own resource consumption.

The hypervisor traps guest activity and schedules VCPUs; its CPU cost
has three parts the paper measures separately:

* a baseline (3.0 % on the paper's testbed, measured with ``mpstat``);
* scheduling/trap work convex in guest CPU activity, amortized across
  co-located guests
  (:meth:`~repro.xen.calibration.XenCalibration.hyp_ctl_demand`);
* event-channel notification work per Kb/s of guest traffic (the
  ~0.0005 increase rate of Figs. 3e/4e) and per block/s of disk traffic
  (grant-table traps).

Hypervisor CPU is accounted in percent of *real* CPU and is served off
the top of the machine's capacity -- the hypervisor preempts everything,
so its demand is always met.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.xen.calibration import XenCalibration


@dataclass
class HypervisorState:
    """Instantaneous hypervisor utilization (what ``mpstat`` shows)."""

    cpu_pct: float = 0.0


class Hypervisor:
    """Hypervisor demand model and utilization record."""

    def __init__(self, cal: XenCalibration) -> None:
        self._cal = cal
        self.state = HypervisorState()

    def cpu_demand(
        self,
        granted_guest_cpu: Sequence[float],
        inter_kbps: float,
        intra_kbps: float,
        guest_io_bps: float,
    ) -> float:
        """Hypervisor CPU demand for the coming quantum."""
        cal = self._cal
        demand = cal.hyp_ctl_demand(list(granted_guest_cpu))
        demand += cal.hyp_net_pct_per_kbps * inter_kbps
        demand += cal.hyp_net_intra_pct_per_kbps * intra_kbps
        demand += cal.hyp_io_pct_per_bps * guest_io_bps
        return demand

    def record(self, granted_cpu_pct: float) -> None:
        """Store the CPU the hypervisor consumed this quantum."""
        self.state.cpu_pct = granted_cpu_pct
