"""Usage metering: time-integrated resource accounting per component.

The paper's introduction motivates overhead estimation with billing:
"It is also critical to accurately bill cloud customers".  A
:class:`UsageMeter` rides on a :class:`~repro.xen.machine.PhysicalMachine`
and integrates granted resources over time -- CPU-seconds, MB-hours,
blocks and kilobits transferred -- per guest plus Dom0 and the
hypervisor, producing the raw ledger a billing pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.process import PeriodicProcess
from repro.xen.machine import MONITOR_PRIORITY, PhysicalMachine


@dataclass
class UsageRecord:
    """Accumulated usage of one entity."""

    cpu_pct_s: float = 0.0  # percent-seconds of (V)CPU
    mem_mb_s: float = 0.0  # MB-seconds resident
    io_blocks: float = 0.0  # blocks transferred
    bw_kbits: float = 0.0  # kilobits transferred

    @property
    def cpu_core_hours(self) -> float:
        """CPU usage in core-hours (100 %-seconds -> 1 core-second)."""
        return self.cpu_pct_s / 100.0 / 3600.0

    def add_sample(
        self, cpu_pct: float, mem_mb: float, io_bps: float, bw_kbps: float,
        dt: float,
    ) -> None:
        """Integrate one interval of length ``dt`` seconds."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.cpu_pct_s += cpu_pct * dt
        self.mem_mb_s += mem_mb * dt
        self.io_blocks += io_bps * dt
        self.bw_kbits += bw_kbps * dt


class UsageMeter:
    """Integrates granted resources on one PM at a fixed cadence.

    The meter samples the machine's noise-free state (it is the
    platform's own ledger, not a guest-visible tool) every ``interval``
    simulated seconds.
    """

    def __init__(
        self, pm: PhysicalMachine, *, interval: float = 1.0
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.pm = pm
        self.interval = interval
        self.records: Dict[str, UsageRecord] = {}
        self.elapsed_s = 0.0
        self._proc: Optional[PeriodicProcess] = None

    def start(self) -> None:
        """Begin metering."""
        if self._proc is not None and not self._proc.stopped:
            raise RuntimeError("meter already running")
        self._proc = PeriodicProcess(
            self.pm.sim, self.interval, self._tick, priority=MONITOR_PRIORITY + 1
        )

    def stop(self) -> None:
        """Stop metering (totals are preserved)."""
        if self._proc is not None:
            self._proc.stop()
            self._proc = None

    def _tick(self, _now: float) -> None:
        snap = self.pm.snapshot()
        dt = self.interval
        self.elapsed_s += dt
        for name, util in snap.vms.items():
            self.records.setdefault(name, UsageRecord()).add_sample(
                util.cpu_pct, util.mem_mb, util.io_bps, util.bw_kbps, dt
            )
        self.records.setdefault("dom0", UsageRecord()).add_sample(
            snap.dom0_cpu_pct, snap.dom0_mem_mb, 0.0, 0.0, dt
        )
        self.records.setdefault("hypervisor", UsageRecord()).add_sample(
            snap.hypervisor_cpu_pct, 0.0, 0.0, 0.0, dt
        )

    def record(self, entity: str) -> UsageRecord:
        """The ledger entry for one entity."""
        try:
            return self.records[entity]
        except KeyError:
            raise KeyError(
                f"no usage recorded for {entity!r}; have {sorted(self.records)}"
            ) from None

    def platform_overhead_cpu_pct_s(self) -> float:
        """Total Dom0 + hypervisor CPU-time: the unbillable burn unless
        it is attributed back to the guests causing it."""
        total = 0.0
        for key in ("dom0", "hypervisor"):
            if key in self.records:
                total += self.records[key].cpu_pct_s
        return total
