"""A process-wide version clock over scheduler-visible input state.

Every mutable input the :class:`~repro.xen.machine.PhysicalMachine`
quantum reads -- guest demand vectors, flow rates, stall/cap flags,
external inbound traffic, probe CPU, NIC degradation, VM placement --
*bumps* this clock when it changes.  The machine records the clock value
its last quantum computed against; when the clock has not moved and the
grant feedback has reached its fixed point, the next quantum is a
provable no-op and is skipped entirely.

That memo is the single biggest win on the micro-benchmark hot path:
static Table II workloads write their demand once, so after the
one-quantum feedback settles (a handful of quanta) every subsequent
30 ms tick recomputes bit-identical state ~1000 times per cell.

Two rules keep the clock sound:

* **Inputs bump, outputs do not.**  Grant records
  (:class:`~repro.xen.vm.ResourceGrant`, ``Dom0State``,
  ``HypervisorState``) are written by the quantum itself and are never
  hooked -- otherwise every tick would invalidate its own memo.
* **Bump on change, not on write.**  Dynamic drivers (RUBiS ramps,
  probe overhead) rewrite the same value every second; writing an equal
  value leaves observable state unchanged, so it must not invalidate
  the memo.

The clock is deliberately global rather than per-machine: a bump is one
integer increment, reads are one attribute load, and false sharing
between machines only costs a redundant (correct) recompute.
"""

from __future__ import annotations

from typing import Any

_version = 0

_UNSET = object()


def bump() -> None:
    """Advance the clock: some scheduler-visible input changed."""
    global _version
    _version += 1


def version() -> int:
    """The current clock value (compare, never interpret)."""
    return _version


def set_if_changed(obj: Any, name: str, value: Any) -> None:
    """``__setattr__`` body for hooked input objects: bump on change."""
    if value != getattr(obj, name, _UNSET):
        bump()
    object.__setattr__(obj, name, value)


class VersionedDict(dict):
    """A dict of scheduler inputs that bumps the clock on mutation.

    Used for :attr:`PhysicalMachine.external_inbound_kbps`: the cluster
    router and applications rewrite entries every tick, usually with the
    value already present -- only real changes invalidate the memo.
    """

    def __setitem__(self, key: Any, value: Any) -> None:
        if value != dict.get(self, key, _UNSET):
            bump()
        dict.__setitem__(self, key, value)

    def __delitem__(self, key: Any) -> None:
        bump()
        dict.__delitem__(self, key)

    def pop(self, *args: Any) -> Any:
        bump()
        return dict.pop(self, *args)

    def popitem(self) -> Any:
        bump()
        return dict.popitem(self)

    def clear(self) -> None:
        if self:
            bump()
        dict.clear(self)

    def update(self, *args: Any, **kwargs: Any) -> None:
        if args or kwargs:
            bump()
        dict.update(self, *args, **kwargs)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        if key not in self:
            bump()
        return dict.setdefault(self, key, default)
