"""The physical machine: composition root of the Xen substrate.

A :class:`PhysicalMachine` owns guest VMs, a Dom0, a hypervisor, the
virtual disk array and the physical NIC, and runs the scheduling quantum
as a :class:`~repro.sim.process.PeriodicProcess`.  Every quantum it:

1. classifies guest flows into inter-PM / intra-PM paths;
2. arbitrates the NIC and the disk array;
3. computes Dom0 and hypervisor CPU demand from the *previous* quantum's
   guest grants (the natural one-quantum feedback delay of a real
   system; the fixed point converges within a few quanta);
4. serves the hypervisor off the top, then Dom0 (boost priority), then
   water-fills the guests inside the remaining effective capacity using
   the credit scheduler's fluid limit;
5. records grants on every component.

The PM's own CPU utilization is computed the way the paper computes it:
the sum of Dom0, hypervisor and all guest CPU (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs import runtime as _obs
from repro.sim import fastpath as _fastpath
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.xen import stateclock
from repro.xen.calibration import DEFAULT_CALIBRATION, XenCalibration
from repro.xen.devices import PhysicalNic, VirtualDiskArray
from repro.xen.dom0 import Dom0
from repro.xen.hypervisor import Hypervisor
from repro.xen.network import Flow
from repro.xen.scheduler import weighted_water_fill
from repro.xen.specs import MachineSpec, VMSpec
from repro.xen.vm import GuestVM

#: Scheduling quantum in seconds (Xen accounting period).
DEFAULT_QUANTUM = 0.030
#: Event priority of machine quanta: run before workloads (so demands
#: written by workloads at the same instant apply next quantum, as on
#: real hardware) and before monitor samples read the fresh state.
QUANTUM_PRIORITY = 0
#: Event priority for workload updates.
WORKLOAD_PRIORITY = -10
#: Event priority for monitor sampling (after the quantum).
MONITOR_PRIORITY = 10


@dataclass(frozen=True)
class VmUtilization:
    """Guest utilization in the paper's (CPU, MEM, I/O, BW) order."""

    cpu_pct: float
    mem_mb: float
    io_bps: float
    bw_kbps: float


@dataclass(frozen=True)
class MachineSnapshot:
    """Instantaneous utilization of every component of one PM."""

    time: float
    vms: Dict[str, VmUtilization]
    dom0_cpu_pct: float
    dom0_mem_mb: float
    dom0_io_bps: float
    dom0_bw_kbps: float
    hypervisor_cpu_pct: float
    pm_cpu_pct: float
    pm_mem_mb: float
    pm_io_bps: float
    pm_bw_kbps: float

    def vm(self, name: str) -> VmUtilization:
        """Utilization of one guest by name."""
        return self.vms[name]


class PhysicalMachine:
    """One Xen host in the simulated testbed."""

    def __init__(
        self,
        sim: Simulator,
        *,
        name: str = "pm",
        spec: Optional[MachineSpec] = None,
        calibration: Optional[XenCalibration] = None,
        quantum: float = DEFAULT_QUANTUM,
    ) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.sim = sim
        self.name = name
        self.spec = spec or MachineSpec()
        self.cal = calibration or DEFAULT_CALIBRATION
        self.quantum = quantum
        self.dom0 = Dom0(self.cal)
        self.hypervisor = Hypervisor(self.cal)
        self.disk = VirtualDiskArray(self.spec, self.cal)
        self.nic = PhysicalNic(self.spec, self.cal)
        self._vms: Dict[str, GuestVM] = {}
        #: Traffic arriving from outside this PM in Kb/s, keyed by the
        #: destination VM name, optionally namespaced as
        #: ``"<source-tag>:<vm>"`` (the cluster router and applications
        #: use distinct tags so their entries never collide).
        self.external_inbound_kbps: Dict[str, float] = (
            stateclock.VersionedDict()
        )
        self._proc: Optional[PeriodicProcess] = None
        self._pm_io_bps = self.cal.pm_io_floor_bps
        self._pm_bw_kbps = self.cal.pm_bw_floor_kbps
        self._quanta = 0
        #: Steady-state quantum memo: ``True`` when the grant feedback
        #: reached its fixed point at state-clock ``_steady_version``.
        self._steady = False
        self._steady_version = -1
        #: Fault-injection state: a failed PM grants nothing and reads
        #: as all-zero until :meth:`restore` (crash + reboot window).
        self.failed = False

    # -- VM lifecycle ----------------------------------------------------

    @property
    def vms(self) -> Dict[str, GuestVM]:
        """Hosted guests keyed by name (do not mutate)."""
        return self._vms

    def create_vm(self, spec: VMSpec) -> GuestVM:
        """Create and host a new guest from ``spec``."""
        return self.add_vm(GuestVM(spec))

    def add_vm(self, vm: GuestVM) -> GuestVM:
        """Host an existing guest object (used by migration/placement)."""
        if vm.name in self._vms:
            raise ValueError(f"duplicate VM name {vm.name!r} on {self.name}")
        mem_needed = vm.spec.mem_mb + sum(
            v.spec.mem_mb for v in self._vms.values()
        )
        if mem_needed + self.cal.dom0_mem_mb > self.spec.mem_mb:
            raise MemoryError(
                f"{self.name}: insufficient memory for VM {vm.name!r} "
                f"({mem_needed + self.cal.dom0_mem_mb:.0f} MB needed, "
                f"{self.spec.mem_mb} MB present)"
            )
        self._vms[vm.name] = vm
        stateclock.bump()
        return vm

    def remove_vm(self, name: str) -> GuestVM:
        """Evict a guest (its object is returned for re-placement)."""
        try:
            vm = self._vms.pop(name)
        except KeyError:
            raise KeyError(f"no VM named {name!r} on {self.name}") from None
        stateclock.bump()
        return vm

    def free_mem_mb(self) -> float:
        """Memory still available for new guests."""
        used = self.cal.dom0_mem_mb + sum(
            v.spec.mem_mb for v in self._vms.values()
        )
        return self.spec.mem_mb - used

    # -- simulation ------------------------------------------------------

    def start(self) -> None:
        """Begin stepping scheduling quanta."""
        if self._proc is not None and not self._proc.stopped:
            raise RuntimeError(f"{self.name} already started")
        self._proc = PeriodicProcess(
            self.sim, self.quantum, self._tick, priority=QUANTUM_PRIORITY
        )

    def stop(self) -> None:
        """Stop stepping (state freezes at current values)."""
        if self._proc is not None:
            self._proc.stop()
            self._proc = None

    def settle(self, seconds: float = 2.0) -> None:
        """Run the simulator long enough for the grant fixed point.

        Convenience for analytic-style uses (placement, examples): the
        one-quantum feedback delay settles geometrically; two simulated
        seconds is ~66 quanta, far beyond convergence.
        """
        self.sim.run_until(self.sim.now + seconds)

    def _classify_flows(self) -> tuple[list[Flow], list[Flow]]:
        """Split guest flows into (inter-PM, intra-PM) lists."""
        inter: list[Flow] = []
        intra: list[Flow] = []
        for vm in self._vms.values():
            if vm.stalled:
                continue  # a stalled guest sends nothing
            for flow in vm.flows:
                if flow.intra_pm or flow.dst in self._vms:
                    intra.append(flow)
                else:
                    inter.append(flow)
        return inter, intra

    def fail(self) -> None:
        """Crash the PM: freeze scheduling and zero every grant.

        The quantum process keeps ticking but does nothing until
        :meth:`restore`, so the tick lattice (and therefore every other
        component's event ordering) is unchanged by the outage.
        """
        if self.failed:
            return
        self.failed = True
        for vm in self._vms.values():
            vm.granted.cpu_pct = 0.0
            vm.granted.mem_mb = 0.0
            vm.granted.io_bps = 0.0
            vm.granted.bw_kbps = 0.0
        self.dom0.record(0.0)
        self.hypervisor.record(0.0)
        self._pm_io_bps = 0.0
        self._pm_bw_kbps = 0.0
        # Grants were force-zeroed outside a quantum, so any previously
        # detected fixed point no longer describes the recorded state.
        self._steady = False
        stateclock.bump()

    def restore(self) -> None:
        """Reboot after a crash; grants repopulate from the next quantum."""
        self.failed = False
        self._pm_io_bps = self.cal.pm_io_floor_bps
        self._pm_bw_kbps = self.cal.pm_bw_floor_kbps
        self._steady = False
        stateclock.bump()

    def _tick(self, _now: float) -> None:
        if self.failed:
            return
        self._quanta += 1
        # Steady-state memo: when no scheduler-visible input changed
        # since the grant feedback reached its fixed point, this quantum
        # recomputes bit-identical state -- skip it.  Disabled under
        # REPRO_SIM_SLOWPATH (reference behaviour) and when observability
        # is installed (the water-fill counters must keep counting).
        # The guard reads the module globals directly: three function
        # calls per 30 ms quantum are measurable at paper scale.
        version = stateclock._version
        if (
            self._steady
            and version == self._steady_version
            and not _fastpath._slowpath
            and _obs._collector is None
        ):
            return
        cal = self.cal
        vms = list(self._vms.values())

        # 1. Network arbitration.
        inter, intra = self._classify_flows()
        senders = {f.src for f in inter if f.kbps > 0}
        nic_out = self.nic.arbitrate([f.kbps for f in inter], len(senders))
        inter_granted = dict(zip([id(f) for f in inter], nic_out.granted_kbps))
        inbound_external = sum(self.external_inbound_kbps.values())
        pm_bw = nic_out.pm_bw_kbps + inbound_external
        inter_kbps_total = sum(nic_out.granted_kbps) + inbound_external
        intra_kbps_total = sum(f.kbps for f in intra)

        # 2. Disk arbitration.
        disk_out = self.disk.arbitrate([vm.io_demand_capped for vm in vms])
        io_granted = dict(zip([vm.name for vm in vms], disk_out.granted_bps))
        guest_io_total = sum(disk_out.granted_bps)

        # 3. Dom0 / hypervisor demand from last quantum's guest grants.
        last_granted = [vm.granted.cpu_pct for vm in vms]
        hyp_demand = self.hypervisor.cpu_demand(
            last_granted, inter_kbps_total, intra_kbps_total, guest_io_total
        )
        dom0_demand = self.dom0.cpu_demand(
            last_granted, inter_kbps_total, intra_kbps_total, guest_io_total
        )

        # 4. CPU arbitration: hypervisor off the top, Dom0 boosted, then
        #    guests water-filled by credit weight.
        capacity = cal.effective_capacity_pct
        hyp_granted = min(hyp_demand, capacity)
        dom0_granted = min(dom0_demand, capacity - hyp_granted)
        guest_capacity = max(0.0, capacity - hyp_granted - dom0_granted)
        per_vm_net_kbps: Dict[str, float] = {vm.name: 0.0 for vm in vms}
        for f in inter:
            per_vm_net_kbps[f.src] += inter_granted[id(f)]
        for f in intra:
            per_vm_net_kbps[f.src] += f.kbps
            if f.dst in per_vm_net_kbps:
                per_vm_net_kbps[f.dst] += f.kbps
        for key, kbps in self.external_inbound_kbps.items():
            # Keys may be namespaced "<source-tag>:<vm>" so independent
            # writers (cluster router, applications) never collide.
            name = key.rsplit(":", 1)[-1]
            if name in per_vm_net_kbps:
                per_vm_net_kbps[name] += kbps
        cpu_demands = []
        for vm in vms:
            net_cpu = cal.vm_net_pct_per_kbps * per_vm_net_kbps[vm.name]
            cpu_demands.append(
                min(vm.cpu_demand_total + net_cpu, vm.spec.cpu_capacity_pct)
            )
        granted_cpu = weighted_water_fill(
            cpu_demands,
            [float(vm.spec.weight) for vm in vms],
            guest_capacity,
            [vm.effective_cap_pct for vm in vms],
        )

        # 5. Record.
        for vm, cpu in zip(vms, granted_cpu):
            vm.granted.cpu_pct = cpu
            vm.granted.mem_mb = vm.mem_total_mb
            vm.granted.io_bps = io_granted[vm.name]
            vm.granted.bw_kbps = per_vm_net_kbps[vm.name]
        self.dom0.record(dom0_granted)
        self.hypervisor.record(hyp_granted)
        self._pm_io_bps = disk_out.pm_io_bps
        self._pm_bw_kbps = min(pm_bw, self.spec.nic_kbps)

        # Fixed-point detection: the only quantum-to-quantum feedback is
        # granted guest CPU (Dom0/hypervisor demand reads it one quantum
        # late).  Everything else recorded above is a pure function of
        # the state-clock-guarded inputs, so once the CPU grants
        # reproduce their own feedback exactly, a re-run of this body at
        # the same clock value is a bitwise no-op.
        self._steady = granted_cpu == last_granted
        self._steady_version = version

    # -- observation -------------------------------------------------------

    def snapshot(self) -> MachineSnapshot:
        """Instantaneous, noise-free utilization of every component.

        Measurement noise belongs to the monitoring tools
        (:mod:`repro.monitor`), not to the machine itself.  A failed
        (crashed) PM reads as all-zero: nothing on it is executing and
        no counter on it can be read.
        """
        if self.failed:
            return MachineSnapshot(
                time=self.sim.now,
                vms={
                    name: VmUtilization(0.0, 0.0, 0.0, 0.0)
                    for name in self._vms
                },
                dom0_cpu_pct=0.0,
                dom0_mem_mb=0.0,
                dom0_io_bps=0.0,
                dom0_bw_kbps=0.0,
                hypervisor_cpu_pct=0.0,
                pm_cpu_pct=0.0,
                pm_mem_mb=0.0,
                pm_io_bps=0.0,
                pm_bw_kbps=0.0,
            )
        vms = {
            vm.name: VmUtilization(*vm.granted.as_tuple())
            for vm in self._vms.values()
        }
        guest_cpu = sum(u.cpu_pct for u in vms.values())
        pm_cpu = (
            self.dom0.state.cpu_pct + self.hypervisor.state.cpu_pct + guest_cpu
        )
        pm_mem = self.dom0.mem_mb + sum(u.mem_mb for u in vms.values())
        return MachineSnapshot(
            time=self.sim.now,
            vms=vms,
            dom0_cpu_pct=self.dom0.state.cpu_pct,
            dom0_mem_mb=self.dom0.mem_mb,
            dom0_io_bps=0.0,
            dom0_bw_kbps=0.0,
            hypervisor_cpu_pct=self.hypervisor.state.cpu_pct,
            pm_cpu_pct=pm_cpu,
            pm_mem_mb=pm_mem,
            pm_io_bps=self._pm_io_bps,
            pm_bw_kbps=self._pm_bw_kbps,
        )
