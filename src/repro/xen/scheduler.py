"""The Xen credit scheduler.

Xen's default scheduler gives each VCPU *credits* in proportion to its
domain weight every accounting period (30 ms), debits credits while the
VCPU runs, and classifies VCPUs as UNDER (credits left) or OVER.  UNDER
VCPUs run before OVER ones; within a class scheduling is round-robin.
An optional per-domain *cap* bounds consumption even when cores idle.

Over any interval long enough to contain many accounting periods the
granted CPU converges to **weighted max-min fairness** (water-filling)
over the demands, truncated by caps -- that is the well-known fluid
limit of the credit algorithm.  The simulator therefore offers two
interchangeable implementations:

* :func:`weighted_water_fill` -- the fluid limit; exact, O(n log n), the
  default used by :class:`~repro.xen.machine.PhysicalMachine` every
  scheduling quantum.
* :class:`CreditScheduler` -- a faithful discrete credit/priority
  round-robin engine, used by the fidelity tests and the scheduler
  ablation benchmark to show the fluid limit matches the discrete
  algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.obs import runtime as _obs
from repro.sim import fastpath as _fastpath

#: Xen's default domain weight.
DEFAULT_WEIGHT = 256
#: Xen's accounting period in seconds (30 ms).
ACCOUNTING_PERIOD = 0.030
#: Xen's time slice in seconds (10 ms, 3 per accounting period).
TIME_SLICE = 0.010

#: Client count at which the numpy kernels beat the scalar loops.  Below
#: this, array construction dominates (one PM hosts a handful of VMs);
#: above it (cluster-scale fills, many-VCPU credit runs) the vector path
#: wins.  Both paths are bitwise-identical -- see the parity suite.
VECTOR_MIN_N = 16


def weighted_water_fill(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
    caps: Optional[Sequence[float]] = None,
) -> list[float]:
    """Weighted max-min fair allocation of ``capacity``.

    Each client ``i`` receives at most ``min(demands[i], caps[i])``;
    unused share is redistributed to still-hungry clients in proportion
    to their weights (progressive filling).  The result is the unique
    weighted max-min fair allocation.

    Parameters
    ----------
    demands:
        Requested amounts (>= 0), in percentage points.
    weights:
        Positive scheduling weights, same length as ``demands``.
    capacity:
        Total amount available (>= 0).
    caps:
        Optional hard per-client ceilings; ``0`` or ``None`` entries mean
        uncapped (Xen cap semantics).

    Returns
    -------
    list of float
        Granted amounts; ``sum(granted) <= capacity`` and
        ``granted[i] <= min(demands[i], caps[i])``.
    """
    n = len(demands)
    if len(weights) != n:
        raise ValueError("demands and weights must have the same length")
    if caps is not None and len(caps) != n:
        raise ValueError("caps must match demands in length")
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    if any(d < 0 for d in demands):
        raise ValueError("demands must be >= 0")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")

    limit = [
        min(demands[i], caps[i])
        if caps is not None and caps[i] and caps[i] > 0
        else demands[i]
        for i in range(n)
    ]
    if n >= VECTOR_MIN_N and not _fastpath.slowpath_enabled():
        granted = _water_fill_vector(limit, weights, capacity)
    else:
        granted = _water_fill_scalar(limit, weights, capacity)
    if _obs.installed() is not None:
        _obs.inc("repro_sched_water_fill_total")
        _obs.inc("repro_sched_water_fill_clients_total", n)
    return granted


def _water_fill_scalar(
    limit: Sequence[float], weights: Sequence[float], capacity: float
) -> list[float]:
    """Reference progressive-filling loop (pure Python).

    Raise every active client's allocation at a rate proportional to its
    weight until it saturates or capacity is exhausted.  Each round
    saturates at least one client => O(n) rounds.
    """
    n = len(limit)
    granted = [0.0] * n
    active = [i for i in range(n) if limit[i] > 0]
    remaining = float(capacity)
    while active and remaining > 1e-12:
        wsum = sum(weights[i] for i in active)
        # The fill level (per unit weight) at which the next client
        # saturates.
        next_sat = min((limit[i] - granted[i]) / weights[i] for i in active)
        fill = min(next_sat, remaining / wsum)
        for i in active:
            granted[i] += fill * weights[i]
        remaining -= fill * wsum
        if fill == next_sat:
            active = [i for i in active if limit[i] - granted[i] > 1e-12]
        else:
            break
    return granted


def _water_fill_vector(
    limit: Sequence[float], weights: Sequence[float], capacity: float
) -> list[float]:
    """Vectorized progressive filling, bitwise-equal to the scalar loop.

    Parity notes: the weight sum is reduced with a Python left fold over
    the active weights (``sum(list)``) because numpy's pairwise ``sum``
    rounds differently for n >= 8; all remaining operations are
    elementwise IEEE ops or order-insensitive ``min``, which match the
    scalar loop bit for bit.
    """
    lim = np.asarray(limit, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    granted = np.zeros(len(limit), dtype=np.float64)
    active = lim > 0.0
    remaining = float(capacity)
    while active.any() and remaining > 1e-12:
        w_act = w[active]
        wsum = sum(w_act.tolist())
        next_sat = float(((lim[active] - granted[active]) / w_act).min())
        fill = min(next_sat, remaining / wsum)
        granted[active] += fill * w_act
        remaining -= fill * wsum
        if fill == next_sat:
            active &= (lim - granted) > 1e-12
        else:
            break
    return granted.tolist()


@dataclass
class VcpuState:
    """Book-keeping for one VCPU inside :class:`CreditScheduler`."""

    name: str
    weight: int = DEFAULT_WEIGHT
    #: Cap in percent of one physical CPU; 0 = uncapped.
    cap_pct: float = 0.0
    #: Fraction of time this VCPU wants to run (0..1 per VCPU).
    demand_frac: float = 1.0
    credits: float = 0.0
    #: CPU-seconds consumed since the last ``reset_usage``.
    consumed: float = 0.0
    #: CPU-seconds consumed in the current accounting period (cap check).
    consumed_this_period: float = 0.0

    @property
    def priority_under(self) -> bool:
        """UNDER priority (credits remaining)."""
        return self.credits > 0


class CreditScheduler:
    """Discrete credit/priority round-robin scheduler.

    This follows the published credit algorithm closely enough for
    fidelity experiments:

    * every accounting period each VCPU is topped up with
      ``period * ncpus * weight / sum(weights)`` CPU-seconds of credit
      (and stale credit is clipped, as Xen clips at one period's worth);
    * runnable VCPUs are served time slices, UNDER before OVER,
      round-robin within a class;
    * a capped VCPU is descheduled for the rest of the accounting period
      once it has consumed ``cap`` percent of it;
    * the scheduler is work-conserving: idle cores run OVER VCPUs.
    """

    def __init__(self, ncpus: int = 4, *, slice_s: float = TIME_SLICE) -> None:
        if ncpus <= 0:
            raise ValueError("ncpus must be positive")
        if slice_s <= 0 or slice_s > ACCOUNTING_PERIOD:
            raise ValueError("slice must be in (0, accounting period]")
        self.ncpus = ncpus
        self.slice_s = slice_s
        self.vcpus: list[VcpuState] = []
        self._rr_cursor = 0

    def add_vcpu(
        self,
        name: str,
        *,
        weight: int = DEFAULT_WEIGHT,
        cap_pct: float = 0.0,
        demand_frac: float = 1.0,
    ) -> VcpuState:
        """Register a VCPU and return its state record."""
        if any(v.name == name for v in self.vcpus):
            raise ValueError(f"duplicate vcpu name {name!r}")
        v = VcpuState(
            name=name, weight=weight, cap_pct=cap_pct, demand_frac=demand_frac
        )
        self.vcpus.append(v)
        return v

    def run_period(self) -> None:
        """Simulate one 30 ms accounting period."""
        if not self.vcpus:
            return
        if (
            len(self.vcpus) >= VECTOR_MIN_N
            and not _fastpath.slowpath_enabled()
        ):
            self._top_up_vector()
        else:
            self._top_up_scalar()

        # Each core is carved into slices; within a slice a core serves
        # the next runnable VCPU (UNDER first, round-robin) and, when it
        # blocks early, fills the leftover slice time with further
        # runnable VCPUs -- the scheduler is work-conserving at slice
        # granularity.
        slices = max(1, round(ACCOUNTING_PERIOD / self.slice_s))
        for _ in range(slices):
            # A VCPU occupies at most one core at a time within a slice.
            claimed: list[VcpuState] = []
            for _core in range(self.ncpus):
                budget = self.slice_s
                while budget > 1e-12:
                    v = self._pick_next(exclude=claimed)
                    if v is None:
                        break
                    claimed.append(v)
                    remaining = (
                        v.demand_frac * ACCOUNTING_PERIOD
                        - v.consumed_this_period
                    )
                    quota = budget
                    if v.cap_pct > 0:
                        cap_budget = (
                            v.cap_pct / 100.0 * ACCOUNTING_PERIOD
                            - v.consumed_this_period
                        )
                        quota = min(quota, max(0.0, cap_budget))
                    used = min(max(0.0, remaining), quota)
                    if used <= 0:
                        break
                    v.consumed += used
                    v.consumed_this_period += used
                    v.credits -= used
                    budget -= used

    def _top_up_scalar(self) -> None:
        """Reference per-VCPU credit top-up loop."""
        wsum = sum(v.weight for v in self.vcpus)
        for v in self.vcpus:
            v.consumed_this_period = 0.0
            v.credits += ACCOUNTING_PERIOD * self.ncpus * v.weight / wsum
            # Xen clips accumulated credit to bound burstiness.
            v.credits = min(v.credits, ACCOUNTING_PERIOD * self.ncpus)

    def _top_up_vector(self) -> None:
        """Vectorized top-up, bitwise-equal to :meth:`_top_up_scalar`.

        The weight sum is exact either way (integer weights); the
        per-VCPU expression ``credits + period * ncpus * weight / wsum``
        maps to the same left-to-right IEEE operation sequence
        elementwise, and the burstiness clip becomes ``np.minimum``.
        """
        wsum = sum(v.weight for v in self.vcpus)
        credits = np.array([v.credits for v in self.vcpus], dtype=np.float64)
        weights = np.array([v.weight for v in self.vcpus], dtype=np.float64)
        credits += ACCOUNTING_PERIOD * self.ncpus * weights / wsum
        np.minimum(credits, ACCOUNTING_PERIOD * self.ncpus, out=credits)
        for v, c in zip(self.vcpus, credits.tolist()):
            v.consumed_this_period = 0.0
            v.credits = c

    def _pick_next(self, exclude: list[VcpuState]) -> Optional[VcpuState]:
        order = self.vcpus[self._rr_cursor:] + self.vcpus[: self._rr_cursor]
        best: Optional[VcpuState] = None
        for v in order:
            if v in exclude or not self._runnable(v):
                continue
            if v.priority_under:
                best = v
                break
            if best is None:
                best = v
        if best is not None:
            self._rr_cursor = (self.vcpus.index(best) + 1) % len(self.vcpus)
        return best

    def _runnable(self, v: VcpuState) -> bool:
        if v.demand_frac <= 0:
            return False
        if v.cap_pct > 0:
            if v.consumed_this_period >= v.cap_pct / 100.0 * ACCOUNTING_PERIOD:
                return False
        # A VCPU whose demand for this period is already met blocks.
        period_demand = v.demand_frac * ACCOUNTING_PERIOD
        return v.consumed_this_period < period_demand - 1e-12

    def run(self, seconds: float) -> dict[str, float]:
        """Run for ``seconds`` and return granted CPU in % per VCPU."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        for v in self.vcpus:
            v.consumed = 0.0
        periods = max(1, round(seconds / ACCOUNTING_PERIOD))
        with _obs.span(
            "sched.credit_run", "sched",
            vcpus=len(self.vcpus), periods=periods,
        ):
            for _ in range(periods):
                self.run_period()
        _obs.inc("repro_sched_credit_periods_total", periods)
        horizon = periods * ACCOUNTING_PERIOD
        return {v.name: 100.0 * v.consumed / horizon for v in self.vcpus}


def fair_share(
    demands: Sequence[float], capacity: float
) -> list[float]:
    """Unweighted equal-share allocator (ablation baseline).

    Splits capacity equally with *no* redistribution of unused share.
    Deliberately naive: used by the scheduler ablation to show why
    water-filling (work conservation) is needed to reproduce the
    paper's 95 % / 47 % saturation points.
    """
    n = len(demands)
    if n == 0:
        return []
    share = capacity / n
    return [min(float(d), share) for d in demands]
