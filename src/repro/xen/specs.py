"""Hardware and VM specifications.

The defaults mirror the paper's testbed (Section III-C): each PM is a
2.66 GHz quad-core Xeon with 2 GB RAM, a 60 GB SATA disk and a single
Gigabit NIC; each guest VM has 1 VCPU, 256 MB of memory and runs Debian
Squeeze (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a physical machine.

    Attributes
    ----------
    cores:
        Number of physical CPU cores.  Total CPU capacity is
        ``cores * 100`` percentage points.
    cpu_ghz:
        Core frequency; informational (costs are calibrated in % terms).
    mem_mb:
        Physical memory in MiB.
    disk_gb:
        Disk size in GiB; informational.
    disk_iops_cap:
        Aggregate disk throughput ceiling in blocks/s.
    nic_mbps:
        Physical NIC line rate in Mb/s.
    """

    cores: int = 4
    cpu_ghz: float = 2.66
    mem_mb: int = 2048
    disk_gb: int = 60
    disk_iops_cap: float = 5000.0
    nic_mbps: float = 1000.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.mem_mb <= 0:
            raise ValueError("mem_mb must be positive")
        if self.nic_mbps <= 0:
            raise ValueError("nic_mbps must be positive")

    @property
    def cpu_capacity_pct(self) -> float:
        """Total CPU capacity in percentage points (100 per core)."""
        return 100.0 * self.cores

    @property
    def nic_kbps(self) -> float:
        """NIC line rate in Kb/s."""
        return self.nic_mbps * 1000.0


@dataclass(frozen=True)
class VMSpec:
    """Static description of a guest VM (DomU).

    Attributes
    ----------
    name:
        Unique identifier within a machine/cluster.
    vcpus:
        Number of virtual CPUs.  The paper's guests are single-VCPU.
    mem_mb:
        Configured guest memory in MiB.
    weight:
        Credit-scheduler weight (Xen default 256).
    cap_pct:
        Credit-scheduler cap in percent of one VCPU; 0 means uncapped
        (Xen semantics).
    io_cap_bps:
        Maximum virtual-disk throughput in blocks/s.  The paper observes
        a default ceiling of about 90 blocks/s (Section IV-A).
    os_mem_mb:
        Memory the guest OS consumes while idle.
    os_cpu_pct:
        CPU the guest OS consumes while idle (background daemons).
    """

    name: str = "vm"
    vcpus: int = 1
    mem_mb: int = 256
    weight: int = 256
    cap_pct: float = 0.0
    io_cap_bps: float = 90.0
    os_mem_mb: float = 80.0
    os_cpu_pct: float = 0.3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("VM name must be non-empty")
        if self.vcpus <= 0:
            raise ValueError("vcpus must be positive")
        if self.mem_mb <= 0:
            raise ValueError("mem_mb must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.cap_pct < 0:
            raise ValueError("cap_pct must be >= 0")
        if self.os_mem_mb > self.mem_mb:
            raise ValueError("guest OS memory exceeds configured memory")

    @property
    def cpu_capacity_pct(self) -> float:
        """Maximum CPU this VM can consume, in % of VCPU."""
        hard = 100.0 * self.vcpus
        return min(hard, self.cap_pct) if self.cap_pct > 0 else hard


def paper_machine_spec() -> MachineSpec:
    """The PM configuration used throughout the paper's measurements."""
    return MachineSpec()


def paper_vm_spec(name: str) -> VMSpec:
    """The guest configuration used in the paper (1 VCPU, 256 MB)."""
    return VMSpec(name=name)
