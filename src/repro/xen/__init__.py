"""The Xen virtualization substrate.

This subpackage simulates the paper's testbed: a XenServer host with a
driver domain (Dom0), a hypervisor running the credit scheduler, guest
VMs (DomUs), a striped virtual disk array and a Gigabit NIC.  See
DESIGN.md section 4 for the calibration anchors tying the model to the
paper's measurements.

Typical use::

    from repro.sim import Simulator
    from repro.xen import PhysicalMachine, VMSpec

    sim = Simulator(seed=42)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="vm1"))
    vm.demand.cpu_pct = 60.0
    pm.start()
    sim.run_until(120.0)
    snap = pm.snapshot()
    print(snap.dom0_cpu_pct, snap.hypervisor_cpu_pct)
"""

from repro.xen.accounting import UsageMeter, UsageRecord
from repro.xen.calibration import DEFAULT_CALIBRATION, XenCalibration
from repro.xen.devices import PhysicalNic, VirtualDiskArray
from repro.xen.dom0 import Dom0
from repro.xen.hypervisor import Hypervisor
from repro.xen.machine import (
    DEFAULT_QUANTUM,
    MachineSnapshot,
    PhysicalMachine,
    VmUtilization,
)
from repro.xen.network import Flow, external_host
from repro.xen.sedf import SedfScheduler, SedfVcpu
from repro.xen.scheduler import (
    CreditScheduler,
    fair_share,
    weighted_water_fill,
)
from repro.xen.specs import MachineSpec, VMSpec, paper_machine_spec, paper_vm_spec
from repro.xen.vm import GuestVM, ResourceDemand, ResourceGrant

__all__ = [
    "DEFAULT_CALIBRATION",
    "DEFAULT_QUANTUM",
    "CreditScheduler",
    "Dom0",
    "Flow",
    "GuestVM",
    "Hypervisor",
    "MachineSnapshot",
    "MachineSpec",
    "PhysicalMachine",
    "PhysicalNic",
    "ResourceDemand",
    "ResourceGrant",
    "SedfScheduler",
    "SedfVcpu",
    "UsageMeter",
    "UsageRecord",
    "VMSpec",
    "VirtualDiskArray",
    "VmUtilization",
    "XenCalibration",
    "external_host",
    "fair_share",
    "paper_machine_spec",
    "paper_vm_spec",
    "weighted_water_fill",
]
