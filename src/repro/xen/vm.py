"""Guest virtual machines (DomUs).

A :class:`GuestVM` carries two vectors of state:

* :attr:`GuestVM.demand` -- what the guest *wants* this quantum, written
  by the attached workloads (CPU %, memory MiB, disk blocks/s, network
  flows).
* :attr:`GuestVM.granted` -- what the machine actually *delivered* last
  quantum, written by :class:`~repro.xen.machine.PhysicalMachine` after
  scheduler arbitration and device caps.  This is what the monitoring
  tools observe (xentop reports consumed CPU, not desired CPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.xen import stateclock
from repro.xen.network import Flow
from repro.xen.specs import VMSpec


@dataclass
class ResourceDemand:
    """What a guest asks for in the current quantum.

    ``cpu_pct`` here is *workload* CPU; the guest OS baseline from the
    spec is added by the machine.  ``mem_mb`` likewise excludes the OS
    resident set.

    Demand is a scheduler *input*: every field write routes through the
    :mod:`~repro.xen.stateclock` so the machine's steady-state quantum
    memo is invalidated exactly when a demand actually changes.
    """

    cpu_pct: float = 0.0
    mem_mb: float = 0.0
    io_bps: float = 0.0
    #: CPU burned by monitoring probes running *inside* the guest (the
    #: Table I ``*`` tools); owned by :mod:`repro.monitor.overhead`, so
    #: it never fights the workload's writer.
    probe_cpu_pct: float = 0.0

    def __setattr__(self, name: str, value: Any) -> None:
        stateclock.set_if_changed(self, name, value)

    def reset(self) -> None:
        """Zero out the demand (workload detached; probes kept)."""
        self.cpu_pct = 0.0
        self.mem_mb = 0.0
        self.io_bps = 0.0


@dataclass
class ResourceGrant:
    """What the machine delivered to a guest last quantum.

    ``bw_kbps`` is the guest-visible network utilization: the sum of
    granted outbound and inbound traffic (intra-PM traffic counts here
    even though it never reaches the physical NIC -- the guest's VIF
    still carried it, which is exactly what xentop reports).
    """

    cpu_pct: float = 0.0
    mem_mb: float = 0.0
    io_bps: float = 0.0
    bw_kbps: float = 0.0

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(cpu, mem, io, bw)`` -- the paper's metric order."""
        return (self.cpu_pct, self.mem_mb, self.io_bps, self.bw_kbps)


class GuestVM:
    """A guest VM: spec + demand + grant + outbound flows."""

    def __init__(self, spec: VMSpec) -> None:
        self.spec = spec
        self.demand = ResourceDemand()
        self.granted = ResourceGrant()
        #: Outbound flows owned by this VM.  Inbound traffic is derived
        #: by the machine from other VMs' flows targeting this VM.
        self.flows: list[Flow] = []
        #: Runtime credit-scheduler cap override in percent of a VCPU
        #: (``None`` = use the spec's cap).  Written by vertical scalers
        #: (`xl sched-credit -c` at runtime on real Xen).
        self.cap_override_pct: float | None = None
        #: Fault-injection state: a stalled guest stops consuming CPU,
        #: disk and network (hung kernel / crash-restart window) while
        #: staying resident in memory.  Written by
        #: :class:`~repro.faults.injector.FaultInjector`.
        self.stalled = False

    def __setattr__(self, name: str, value: Any) -> None:
        # Attribute rebinding (stalled, cap_override_pct, demand swap)
        # changes scheduler input; flows-list mutation is hooked in the
        # add/remove/clear methods below.
        stateclock.set_if_changed(self, name, value)

    @property
    def effective_cap_pct(self) -> float:
        """The cap currently enforced by the scheduler (0 = uncapped)."""
        if self.cap_override_pct is None:
            return self.spec.cap_pct
        if self.cap_override_pct < 0:
            raise ValueError("cap override must be >= 0")
        return self.cap_override_pct

    @property
    def name(self) -> str:
        """The VM's unique name."""
        return self.spec.name

    # -- demand manipulation (workload API) -----------------------------

    def add_flow(self, flow: Flow) -> Flow:
        """Attach an outbound flow; ``flow.src`` must be this VM."""
        if flow.src != self.name:
            raise ValueError(
                f"flow src {flow.src!r} does not match VM {self.name!r}"
            )
        self.flows.append(flow)
        stateclock.bump()
        return flow

    def remove_flow(self, flow: Flow) -> None:
        """Detach a previously added flow."""
        self.flows.remove(flow)
        stateclock.bump()

    def clear_flows(self) -> None:
        """Drop all outbound flows."""
        if self.flows:
            stateclock.bump()
        self.flows.clear()

    # -- derived quantities ---------------------------------------------

    @property
    def cpu_demand_total(self) -> float:
        """Workload + OS baseline + probe CPU, clamped to VCPU capacity."""
        if self.stalled:
            return 0.0
        raw = (
            self.demand.cpu_pct
            + self.demand.probe_cpu_pct
            + self.spec.os_cpu_pct
        )
        return min(raw, self.spec.cpu_capacity_pct)

    @property
    def mem_total_mb(self) -> float:
        """Resident memory: OS + workload, clamped to configured memory."""
        return min(
            self.spec.os_mem_mb + self.demand.mem_mb, float(self.spec.mem_mb)
        )

    @property
    def io_demand_capped(self) -> float:
        """Disk demand after the virtual-disk throughput cap."""
        if self.stalled:
            return 0.0
        return min(self.demand.io_bps, self.spec.io_cap_bps)

    def outbound_kbps(self) -> float:
        """Total offered outbound traffic."""
        return sum(f.kbps for f in self.flows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GuestVM({self.name!r}, cpu={self.granted.cpu_pct:.1f}%, "
            f"mem={self.granted.mem_mb:.0f}MB, io={self.granted.io_bps:.1f}, "
            f"bw={self.granted.bw_kbps:.1f})"
        )


def total_granted_cpu(vms: Iterable[GuestVM]) -> float:
    """Sum of granted CPU across guests (percent of VCPU)."""
    return sum(vm.granted.cpu_pct for vm in vms)
