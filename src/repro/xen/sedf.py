"""The SEDF (Simple Earliest Deadline First) scheduler.

Before the credit scheduler became Xen's default, guests were scheduled
by SEDF: each VCPU holds a reservation ``(period, slice)`` -- it is
guaranteed ``slice`` seconds of CPU every ``period`` -- and runnable
VCPUs are dispatched in order of their current deadline.  Extra (work-
conserving) time is handed out only when ``extratime`` is set.

The reproduction uses SEDF as a *scheduler ablation*: with pure
reservations (no extratime) the paper's work-conserving saturation
anchors (guests at 95 % / 47 %) cannot emerge, which demonstrates why
the substrate models the credit scheduler's fluid limit instead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SedfVcpu:
    """One VCPU's SEDF reservation and runtime state."""

    name: str
    period: float
    slice_s: float
    #: Share leftover CPU after all reservations are honoured.
    extratime: bool = False
    #: Fraction of time the VCPU actually wants to run.
    demand_frac: float = 1.0
    consumed: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0 < self.slice_s <= self.period:
            raise ValueError("slice must be in (0, period]")
        if not 0 <= self.demand_frac <= 1:
            raise ValueError("demand_frac must be in [0, 1]")

    @property
    def utilization(self) -> float:
        """Reserved CPU fraction (slice / period)."""
        return self.slice_s / self.period


class SedfScheduler:
    """Fluid-approximation SEDF over one scheduling horizon.

    Admission control enforces the classic EDF bound: the sum of
    reserved utilizations may not exceed the core count.  The horizon
    allocation gives each VCPU ``min(demand, reservation)``; when
    ``extratime`` VCPUs exist, leftover capacity is split among them in
    proportion to their reservations (Xen's extratime weighting).
    """

    def __init__(self, ncpus: int = 4) -> None:
        if ncpus <= 0:
            raise ValueError("ncpus must be positive")
        self.ncpus = ncpus
        self.vcpus: List[SedfVcpu] = []

    def add_vcpu(
        self,
        name: str,
        *,
        period: float = 0.1,
        slice_s: float = 0.05,
        extratime: bool = False,
        demand_frac: float = 1.0,
    ) -> SedfVcpu:
        """Register a reservation; rejects over-committed admission."""
        if any(v.name == name for v in self.vcpus):
            raise ValueError(f"duplicate vcpu name {name!r}")
        v = SedfVcpu(
            name=name,
            period=period,
            slice_s=slice_s,
            extratime=extratime,
            demand_frac=demand_frac,
        )
        reserved = sum(u.utilization for u in self.vcpus) + v.utilization
        if reserved > self.ncpus + 1e-12:
            raise ValueError(
                f"admission control: total reservation {reserved:.3f} "
                f"exceeds {self.ncpus} CPUs"
            )
        self.vcpus.append(v)
        return v

    def allocate(self, horizon: float = 1.0) -> Dict[str, float]:
        """Granted CPU (in % of one CPU) per VCPU over ``horizon``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        grants: Dict[str, float] = {}
        used = 0.0
        for v in self.vcpus:
            g = min(v.demand_frac, v.utilization) * horizon
            grants[v.name] = g
            used += g
        spare = self.ncpus * horizon - used
        extras = [
            v
            for v in self.vcpus
            if v.extratime and v.demand_frac * horizon > grants[v.name]
        ]
        # Water-fill the spare among extratime VCPUs by reservation
        # weight, bounded by their residual demand.
        while extras and spare > 1e-12:
            wsum = sum(v.utilization for v in extras)
            fill = min(
                min(
                    (v.demand_frac * horizon - grants[v.name]) / v.utilization
                    for v in extras
                ),
                spare / wsum,
            )
            for v in extras:
                grants[v.name] += fill * v.utilization
            spare -= fill * wsum
            extras = [
                v
                for v in extras
                if v.demand_frac * horizon - grants[v.name] > 1e-12
            ]
        for v in self.vcpus:
            v.consumed += grants[v.name]
        return {k: 100.0 * g / horizon for k, g in grants.items()}

    def edf_order(self, now: float = 0.0) -> List[str]:
        """Dispatch order by earliest current deadline (diagnostics).

        The deadline of a VCPU at time ``t`` is the end of its current
        period: ``(floor(t/period) + 1) * period``.
        """
        heap = []
        for i, v in enumerate(self.vcpus):
            deadline = (int(now / v.period) + 1) * v.period
            heapq.heappush(heap, (deadline, i, v.name))
        return [name for _, _, name in sorted(heap)]
