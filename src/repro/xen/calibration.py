"""Calibration constants anchoring the simulator to the paper's testbed.

Every constant below is traceable to a number reported in Section IV of
the paper; the derivations are spelled out next to each field.  All of
the simulator's cost accounting reads from this one dataclass --
experiments and tests never hard-code these values.

Calibration method
------------------
The paper reports *anchor points* (baselines, endpoints, increase rates,
plateaus).  We choose the smallest mechanistic model that passes through
the anchors:

* Dom0 and hypervisor CPU demand are each

  ``base + colo * (N-1) * act + lin * s + quad * s**2``

  where ``s = total_granted_guest_cpu / (1 + sigma * (N-1))`` is the
  *batched* control-load signal (Dom0 amortizes event-channel and
  xenstore work across co-located VMs -- the batching discount
  ``sigma`` is why per-VM overhead shrinks with colocation), ``act`` is
  the mean granted guest CPU as a fraction of a VCPU (idle co-located
  VMs cost almost nothing), and ``colo`` is per-additional-VM
  housekeeping (per-domain xenstore watches, qemu-dm).

* Network processing adds ``nb_inter`` (or ``nb_intra``) percentage
  points of Dom0 CPU per Kb/s routed through the VIFs, and ``evtchn``
  points of hypervisor CPU per Kb/s (event-channel notifications).

* The credit scheduler serves the hypervisor off the top, then Dom0
  (boost priority), then water-fills guests inside the remaining
  effective capacity.

Closed-form fit (see the field comments for the arithmetic):

=====================  ==========================================
anchor (paper)          constraint satisfied
=====================  ==========================================
Dom0 idle 16.8 %        ``dom0_cpu_base``
Dom0 29.5 % @ 99 % VM   ``dom0_ctl_quad`` given ``dom0_ctl_lin``
Dom0 plateau 23.4 %     ``dom0_batch_sigma``, ``dom0_colo_pct`` (N=2 and N=4)
hyp idle 3.0 %          ``hyp_cpu_base``
hyp 14 % @ 99 % VM      ``hyp_ctl_quad`` given ``hyp_ctl_lin``
hyp plateau 12.0 %      ``hyp_batch_sigma``, ``hyp_colo_pct``
guests 95 % / 47 %      ``effective_capacity_pct`` = 225
=====================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class XenCalibration:
    """All tunable constants of the Xen overhead model."""

    # ------------------------------------------------------------------
    # CPU baselines (Section III-C / IV-A).
    # ------------------------------------------------------------------
    #: Dom0 CPU while all guests idle.  Paper: "constant values of 16.8%"
    #: in the memory experiments and the y-intercept of Fig. 2(a).
    dom0_cpu_base: float = 16.8
    #: Hypervisor CPU while all guests idle.  Paper: 3.0 %.
    hyp_cpu_base: float = 3.0

    # ------------------------------------------------------------------
    # Dom0 control-work response to guest CPU activity (Fig. 2a, 3a, 4a).
    # ------------------------------------------------------------------
    #: Initial increase rate of Dom0 CPU per point of VM CPU.  Paper:
    #: rate grows "from 0.01" (Fig. 2a).
    dom0_ctl_lin: float = 0.01
    #: Convexity chosen so a single VM at 99 % drives Dom0 to 29.5 %:
    #: 16.8 + 0.01*99 + q*99^2 = 29.5  =>  q = 11.71/9801 = 1.1948e-3.
    #: The terminal increase rate is then 0.01 + 2*q*99 = 0.247, matching
    #: the paper's reported "to 0.31" growth within reading accuracy.
    dom0_ctl_quad: float = 11.71 / 9801.0
    #: Batching discount: the control-load signal for N co-located VMs is
    #: total/(1 + sigma*(N-1)).  Solved together with ``dom0_colo_pct``
    #: so the saturated Dom0 demand is 23.4 % at both N=2 (guests ~95 %
    #: each) and N=4 (guests ~47 % each):  sigma = 3.6, colo = 4.36.
    dom0_batch_sigma: float = 3.6
    #: Per-additional-active-VM housekeeping, scaled by mean guest
    #: activity (percentage points at full activity).
    dom0_colo_pct: float = 4.36

    # ------------------------------------------------------------------
    # Hypervisor response to guest CPU activity (Fig. 2a, 3a, 4a).
    # ------------------------------------------------------------------
    #: Initial increase rate of hypervisor CPU per point of VM CPU.
    #: Paper: rate grows "from 0.04" (Fig. 2a).
    hyp_ctl_lin: float = 0.04
    #: 3 + 0.04*99 + q*99^2 = 14  =>  q = 7.04/9801 = 7.183e-4.
    hyp_ctl_quad: float = 7.04 / 9801.0
    #: Solved like Dom0's against the 12.0 % plateau: sigma = 2.9,
    #: colo = 5.65.
    hyp_batch_sigma: float = 2.9
    hyp_colo_pct: float = 5.65

    # ------------------------------------------------------------------
    # Network path costs (Fig. 2d/2e, 3d/3e, 4d/4e, 5a/5b).
    # ------------------------------------------------------------------
    #: Dom0 CPU points per Kb/s of inter-PM guest traffic (netback +
    #: NIC interrupt path).  Paper: constant increase rate 0.01 in
    #: Figs. 2(e), 3(e), 4(e).
    dom0_net_pct_per_kbps: float = 0.01
    #: Dom0 CPU points per Kb/s of *intra*-PM guest traffic (VIF-to-VIF
    #: redirection skips the physical NIC).  Paper: 0.002, i.e. 5x less
    #: (Fig. 5b).
    dom0_net_intra_pct_per_kbps: float = 0.002
    #: Hypervisor CPU points per Kb/s (event-channel notifications).
    #: Paper: increase rates ~0.0005 in Figs. 3(e)/4(e).
    hyp_net_pct_per_kbps: float = 0.00055
    #: Hypervisor points per Kb/s for intra-PM traffic (fewer interrupts).
    hyp_net_intra_pct_per_kbps: float = 0.0003
    #: Guest CPU points per Kb/s it sends/receives (front-end driver).
    #: Paper Fig. 2(e): VM CPU rises 0.5 % -> 3 % over 1280 Kb/s.
    vm_net_pct_per_kbps: float = 0.002
    #: PM bandwidth overhead: fraction of aggregate guest traffic lost to
    #: encapsulation/scheduling when N>1 flows share the NIC.  Combined
    #: with the constant chatter below this reproduces the paper's
    #: "|PM-sum(VM)|/PM = 3 %" for multi-VM and the ~400 B/s single-VM
    #: overhead of Fig. 2(d).
    pm_bw_overhead_frac: float = 0.03
    #: Constant PM network chatter in Kb/s while guests transmit
    #: (~400 bytes/s, Fig. 2d).
    pm_bw_chatter_kbps: float = 3.2
    #: Idle PM bandwidth floor in Kb/s (254 bytes/s; memory experiments).
    pm_bw_floor_kbps: float = 2.03

    # ------------------------------------------------------------------
    # Disk path costs (Fig. 2b/2c, 3b/3c, 4b/4c).
    # ------------------------------------------------------------------
    #: PM blocks issued per guest block: the virtual disk is striped so
    #: "a single read or write by the guest VM may involve several reads
    #: or writes"; paper: PM I/O is "slightly more than twice" VM I/O.
    io_amplification: float = 2.05
    #: Idle PM I/O floor in blocks/s (memory experiments: 18.8 blocks/s).
    pm_io_floor_bps: float = 18.8
    #: Dom0 CPU points per guest block/s (blkback request handling).
    #: Sized so 2-4 I/O-loaded VMs lift Dom0 from 16.8 to ~17.4 %
    #: (Figs. 3c/4c) while one stays within "16 +/- 0.3" (Fig. 2c).
    dom0_io_pct_per_bps: float = 0.003
    #: Hypervisor CPU points per guest block/s (grant-table traps).
    hyp_io_pct_per_bps: float = 0.0027
    #: Guest CPU consumed by the I/O benchmark itself, independent of
    #: intensity (paper reports a flat 0.84 %).
    vm_io_cpu_pct: float = 0.84

    # ------------------------------------------------------------------
    # Memory accounting.
    # ------------------------------------------------------------------
    #: Dom0 resident memory in MiB (driver domain working set).
    dom0_mem_mb: float = 350.0

    # ------------------------------------------------------------------
    # Scheduling capacity (Fig. 3a, 4a).
    # ------------------------------------------------------------------
    #: Effective schedulable CPU capacity of the PM in percentage points.
    #: The paper's saturated measurements sum to ~225 (guests 188-190 +
    #: Dom0 23.4 + hypervisor 12.0) on a nominal 400-point quad core; we
    #: adopt that delivered capacity as the arbitration budget.  With it,
    #: 2 saturated guests settle at ~95 % each and 4 at ~47 % each
    #: exactly as measured.
    effective_capacity_pct: float = 225.0

    # ------------------------------------------------------------------
    # Measurement noise (applied by the monitoring tools, not the
    # machine state).
    # ------------------------------------------------------------------
    #: Multiplicative log-normal sigma on each 1-Hz CPU/disk sample
    #: (sampling-based counters jitter).
    noise_sigma: float = 0.02
    #: Sigma for memory and network readings: resident-set sizes and
    #: NIC byte counters are cumulative/absolute and far more precise
    #: (the paper's 80 %-below-1 % bandwidth prediction errors require
    #: this).
    noise_sigma_precise: float = 0.004
    #: Additive jitter floor in percentage points / native units.
    noise_floor: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "dom0_cpu_base",
            "hyp_cpu_base",
            "io_amplification",
            "effective_capacity_pct",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if (
            self.noise_sigma < 0
            or self.noise_sigma_precise < 0
            or self.noise_floor < 0
        ):
            raise ValueError("noise parameters must be >= 0")

    def noise_sigma_for(self, resource: str) -> float:
        """Measurement-noise sigma by resource kind."""
        return (
            self.noise_sigma_precise
            if resource in ("mem", "bw")
            else self.noise_sigma
        )

    # -- derived response curves ---------------------------------------

    def dom0_ctl_demand(
        self, granted_guest_cpu: list[float] | tuple[float, ...]
    ) -> float:
        """Dom0 control-work CPU demand (%, excl. net/disk terms).

        ``granted_guest_cpu`` holds the CPU actually granted to each
        co-located guest (percent of VCPU) during the previous quantum.
        """
        return self._ctl_demand(
            granted_guest_cpu,
            base=self.dom0_cpu_base,
            lin=self.dom0_ctl_lin,
            quad=self.dom0_ctl_quad,
            sigma=self.dom0_batch_sigma,
            colo=self.dom0_colo_pct,
        )

    def hyp_ctl_demand(
        self, granted_guest_cpu: list[float] | tuple[float, ...]
    ) -> float:
        """Hypervisor scheduling/trap CPU demand (%, excl. net/disk)."""
        return self._ctl_demand(
            granted_guest_cpu,
            base=self.hyp_cpu_base,
            lin=self.hyp_ctl_lin,
            quad=self.hyp_ctl_quad,
            sigma=self.hyp_batch_sigma,
            colo=self.hyp_colo_pct,
        )

    @staticmethod
    def _ctl_demand(
        granted: list[float] | tuple[float, ...],
        *,
        base: float,
        lin: float,
        quad: float,
        sigma: float,
        colo: float,
    ) -> float:
        n = len(granted)
        if n == 0:
            return base
        total = float(sum(granted))
        signal = total / (1.0 + sigma * (n - 1))
        activity = total / (100.0 * n)
        return (
            base
            + colo * (n - 1) * activity
            + lin * signal
            + quad * signal * signal
        )

    def with_overrides(self, **kwargs: float) -> "XenCalibration":
        """Return a copy with selected constants replaced (ablations)."""
        return replace(self, **kwargs)


#: The calibration used by every experiment unless overridden.
DEFAULT_CALIBRATION = XenCalibration()
