"""Hotspot detection and overhead-aware migration planning.

The paper motivates its model with the management tasks it enables:
"Knowing the actual resource utilizations helps ... migrate VMs out of
a PM to release load."  This module closes that loop in the style of
the Sandpiper system the paper cites [5]:

* :class:`HotspotDetector` flags a PM whose *model-predicted* total
  utilization (guests + Dom0 + hypervisor) exceeds a threshold for k
  consecutive observations -- the overhead-aware version of Sandpiper's
  k-out-of-n rule;
* :class:`MigrationPlanner` picks moves that relieve the hotspot:
  evict the guest with the highest volume-to-memory ratio (cheap to
  move, frees the most load) onto the least-loaded PM that can take it
  *according to the overhead model* -- never creating a new hotspot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from repro.models.multi_vm import MultiVMOverheadModel
from repro.monitor.metrics import ResourceVector
from repro.xen.calibration import DEFAULT_CALIBRATION, XenCalibration
from repro.xen.specs import MachineSpec


@dataclass(frozen=True)
class VmObservation:
    """One VM's current utilization plus its memory footprint."""

    name: str
    demand: ResourceVector
    mem_mb: int = 256

    def volume(self) -> float:
        """Sandpiper-style load volume: product of resource pressures.

        Each factor is ``1 / (1 - u)`` with utilization normalized to
        its native ceiling (CPU: one VCPU; BW: a 100 Mb/s slice; I/O:
        the 90 blocks/s virtual-disk cap), clamped away from 1.
        """
        factors = (
            self.demand.cpu / 100.0,
            self.demand.io / 90.0,
            self.demand.bw / 100_000.0,
        )
        vol = 1.0
        for u in factors:
            vol *= 1.0 / max(0.05, 1.0 - min(u, 0.95))
        return vol

    def volume_per_mem(self) -> float:
        """Sandpiper's migration key: volume / memory (move the VM that
        frees the most load per byte copied)."""
        return self.volume() / self.mem_mb


@dataclass(frozen=True)
class Move:
    """One planned migration."""

    vm: str
    src: str
    dst: str


class HotspotDetector:
    """k-out-of-n sustained-overload detector per PM.

    A PM is *hot* when the model-predicted PM CPU utilization exceeds
    the threshold in at least ``k`` of the last ``n`` observations --
    transient spikes do not trigger migrations.  The default ``n = k``
    reproduces the strict k-consecutive rule; a wider window tolerates
    *missing* observations (monitor dropouts, a PM mid-reboot), which
    are recorded via :meth:`observe_missing` and count as neither hot
    nor cold.
    """

    def __init__(
        self,
        model: MultiVMOverheadModel,
        *,
        k: int = 3,
        n: Optional[int] = None,
        threshold_frac: float = 0.9,
        calibration: Optional[XenCalibration] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        n = k if n is None else n
        if n < k:
            raise ValueError("n must be >= k")
        if not 0.0 < threshold_frac <= 1.0:
            raise ValueError("threshold_frac must be in (0, 1]")
        self.model = model
        self.k = k
        self.n = n
        self.cal = calibration or DEFAULT_CALIBRATION
        self.threshold = threshold_frac * self.cal.effective_capacity_pct
        self._history: Dict[str, Deque[Optional[bool]]] = {}

    def predicted_pm_cpu(self, vms: Sequence[VmObservation]) -> float:
        """Model-predicted PM CPU for a guest set (idle PM: baselines)."""
        if not vms:
            return self.cal.dom0_cpu_base + self.cal.hyp_cpu_base
        return self.model.predict([v.demand for v in vms]).pm_cpu

    def _window(self, pm_name: str) -> Deque[Optional[bool]]:
        return self._history.setdefault(pm_name, deque(maxlen=self.n))

    def _is_hot(self, hist: Deque[Optional[bool]]) -> bool:
        return sum(1 for h in hist if h is True) >= self.k

    def observe(self, pm_name: str, vms: Sequence[VmObservation]) -> bool:
        """Record one observation; return True when the PM is hot."""
        hist = self._window(pm_name)
        hist.append(self.predicted_pm_cpu(vms) > self.threshold)
        return self._is_hot(hist)

    def observe_missing(self, pm_name: str) -> bool:
        """Record a gap (no valid sample this round); return hot state.

        A gap ages the window without voting, so a PM that was hot
        before a monitoring dropout stays hot until ``n - k`` gaps have
        displaced its hot votes -- missing data never *clears* an
        alarm on its own.
        """
        hist = self._window(pm_name)
        hist.append(None)
        return self._is_hot(hist)

    def reset(self, pm_name: str) -> None:
        """Forget a PM's history (after a mitigation)."""
        self._history.pop(pm_name, None)


class MigrationPlanner:
    """Greedy overhead-aware hotspot mitigation."""

    def __init__(
        self,
        model: MultiVMOverheadModel,
        *,
        spec: Optional[MachineSpec] = None,
        calibration: Optional[XenCalibration] = None,
        target_frac: float = 0.85,
    ) -> None:
        if not 0.0 < target_frac <= 1.0:
            raise ValueError("target_frac must be in (0, 1]")
        self.model = model
        self.spec = spec or MachineSpec()
        self.cal = calibration or DEFAULT_CALIBRATION
        self.target = target_frac * self.cal.effective_capacity_pct

    def _pm_cpu(self, vms: Sequence[VmObservation]) -> float:
        if not vms:
            return self.cal.dom0_cpu_base + self.cal.hyp_cpu_base
        return self.model.predict([v.demand for v in vms]).pm_cpu

    def _mem_ok(self, vms: Sequence[VmObservation]) -> bool:
        used = self.cal.dom0_mem_mb + sum(v.mem_mb for v in vms)
        return used <= self.spec.mem_mb

    def plan(
        self,
        hot_pm: str,
        placement: Dict[str, List[VmObservation]],
        *,
        max_moves: int = 3,
    ) -> List[Move]:
        """Plan migrations that bring ``hot_pm`` under the target.

        Greedy: repeatedly evict the highest volume/memory guest to the
        destination whose predicted post-move utilization is lowest and
        stays under the target.  Returns the (possibly empty) move list;
        an empty list with the PM still hot means the cluster is
        genuinely out of capacity.
        """
        if hot_pm not in placement:
            raise KeyError(f"unknown PM {hot_pm!r}")
        if max_moves < 1:
            raise ValueError("max_moves must be >= 1")
        state = {pm: list(vms) for pm, vms in placement.items()}
        moves: List[Move] = []
        while len(moves) < max_moves and self._pm_cpu(state[hot_pm]) > self.target:
            candidates = sorted(
                state[hot_pm], key=lambda v: v.volume_per_mem(), reverse=True
            )
            moved = False
            for vm in candidates:
                best_dst: Optional[str] = None
                best_load = float("inf")
                for dst, resident in state.items():
                    if dst == hot_pm:
                        continue
                    trial = resident + [vm]
                    if not self._mem_ok(trial):
                        continue
                    load = self._pm_cpu(trial)
                    if load <= self.target and load < best_load:
                        best_dst = dst
                        best_load = load
                if best_dst is not None:
                    state[hot_pm].remove(vm)
                    state[best_dst].append(vm)
                    moves.append(Move(vm=vm.name, src=hot_pm, dst=best_dst))
                    moved = True
                    break
            if not moved:
                break  # nothing movable without creating a new hotspot
        return moves

    def relieved(
        self, hot_pm: str, placement: Dict[str, List[VmObservation]],
        moves: Sequence[Move],
    ) -> bool:
        """Whether applying ``moves`` brings the PM under target."""
        state = {pm: list(vms) for pm, vms in placement.items()}
        for mv in moves:
            vm = next(v for v in state[mv.src] if v.name == mv.vm)
            state[mv.src].remove(vm)
            state[mv.dst].append(vm)
        return self._pm_cpu(state[hot_pm]) <= self.target
