"""CloudScale-style vertical auto-scaling (elastic resource caps).

CloudScale's headline mechanism -- the system the paper builds VOA on
top of -- is *vertical* scaling: each VM's credit-scheduler CPU cap is
continuously resized to its predicted demand plus padding, so tenants
get what they need without static worst-case reservations.  When the
sum of desired caps exceeds the PM's (overhead-adjusted!) guest
capacity, CloudScale resolves the conflict by scaling the caps down,
favouring... everyone equally in the simple policy, or by weight.

:class:`VerticalScaler` implements that loop on a simulated PM:

1. per VM, feed the observed CPU usage into a
   :class:`~repro.placement.cloudscale.DemandPredictor`;
2. set the VM's runtime cap to the padded prediction (bounded by the
   VCPU size, floored to keep starving guests schedulable);
3. if the caps oversubscribe the guest capacity left after the
   model-predicted Dom0/hypervisor overhead, shrink them
   proportionally (weight-aware).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.monitor.metrics import vm_utilization_vector
from repro.models.multi_vm import MultiVMOverheadModel
from repro.placement.cloudscale import DemandPredictor, PredictorConfig
from repro.sim.process import PeriodicProcess
from repro.xen.machine import MONITOR_PRIORITY, PhysicalMachine


@dataclass(frozen=True)
class ScalerConfig:
    """Tuning of the vertical scaling loop."""

    #: Scaling interval in seconds.
    interval: float = 1.0
    #: Minimum cap so a VM can always make progress.
    min_cap_pct: float = 5.0
    #: Hard per-VCPU ceiling.
    max_cap_pct: float = 100.0
    #: Extra headroom multiplier on the padded prediction.
    headroom: float = 1.05
    #: Fraction of the effective capacity usable by guest caps.
    capacity_frac: float = 0.95

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.min_cap_pct <= self.max_cap_pct:
            raise ValueError("need 0 < min_cap_pct <= max_cap_pct")
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if not 0 < self.capacity_frac <= 1.0:
            raise ValueError("capacity_frac must be in (0, 1]")


class VerticalScaler:
    """Predictive per-VM CPU cap management on one PM."""

    def __init__(
        self,
        pm: PhysicalMachine,
        model: MultiVMOverheadModel,
        *,
        config: Optional[ScalerConfig] = None,
        predictor_config: Optional[PredictorConfig] = None,
    ) -> None:
        self.pm = pm
        self.model = model
        self.config = config or ScalerConfig()
        self._predictor_config = predictor_config
        self._predictors: Dict[str, DemandPredictor] = {}
        self._proc: Optional[PeriodicProcess] = None
        #: Ticks on which conflict resolution had to shrink caps.
        self.conflicts = 0

    def start(self) -> None:
        """Begin the scaling loop."""
        if self._proc is not None and not self._proc.stopped:
            raise RuntimeError("scaler already running")
        self._proc = PeriodicProcess(
            self.pm.sim,
            self.config.interval,
            self._tick,
            priority=MONITOR_PRIORITY + 2,
        )

    def stop(self, *, release_caps: bool = True) -> None:
        """Stop scaling; optionally uncap every guest."""
        if self._proc is not None:
            self._proc.stop()
            self._proc = None
        if release_caps:
            for vm in self.pm.vms.values():
                vm.cap_override_pct = None

    def current_caps(self) -> Dict[str, Optional[float]]:
        """The cap override currently applied per VM."""
        return {
            name: vm.cap_override_pct for name, vm in self.pm.vms.items()
        }

    # -- loop ----------------------------------------------------------------

    def _predictor(self, name: str) -> DemandPredictor:
        if name not in self._predictors:
            self._predictors[name] = DemandPredictor(self._predictor_config)
        return self._predictors[name]

    def _tick(self, _now: float) -> None:
        cfg = self.config
        snap = self.pm.snapshot()
        desired: Dict[str, float] = {}
        for name, util in snap.vms.items():
            pred = self._predictor(name)
            pred.update(util.cpu_pct)
            want = pred.predict() * cfg.headroom
            desired[name] = min(
                cfg.max_cap_pct, max(cfg.min_cap_pct, want)
            )

        # Guest capacity after the model's overhead prediction for the
        # *desired* operating point.
        utils = [vm_utilization_vector(u) for u in snap.vms.values()]
        overhead = (
            self.model.predict(utils).dom0_cpu
            + self.model.predict(utils).hyp_cpu
            if utils
            else 0.0
        )
        budget = max(
            0.0,
            (self.pm.cal.effective_capacity_pct - overhead)
            * cfg.capacity_frac,
        )
        total = sum(desired.values())
        if total > budget > 0:
            self.conflicts += 1
            scale = budget / total
            desired = {
                name: max(cfg.min_cap_pct, cap * scale)
                for name, cap in desired.items()
            }
        for name, cap in desired.items():
            self.pm.vms[name].cap_override_pct = cap
