"""Failure-tolerant migration execution and the resilient control loop.

:mod:`repro.placement.migration` *plans* moves; this module *executes*
them against a live, faulty cluster the way a production controller
must:

* a migration attempt can fail mid-flight (pre-copy aborted, network
  partition, destination down) and **rolls back** -- the guest keeps
  running on its source PM;
* failed attempts are **retried with exponential backoff**, up to a cap;
* a destination PM that keeps eating failures trips a per-PM
  **circuit breaker** so the controller stops throwing guests at a
  flapping host until a cooldown passes;
* the periodic :class:`ResilientControlLoop` feeds the hotspot detector
  with whatever observations exist -- a crashed PM contributes an
  explicit *missing* observation instead of wedging the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.models.multi_vm import MultiVMOverheadModel
from repro.obs import runtime as _obs
from repro.monitor.metrics import ResourceVector
from repro.placement.migration import (
    HotspotDetector,
    MigrationPlanner,
    Move,
    VmObservation,
)
from repro.sim.process import PeriodicProcess

#: Attempt outcome reason codes.
REASON_OK = "ok"
REASON_MIDFLIGHT = "mid-flight"
REASON_DST_DOWN = "dst-down"
REASON_DST_GONE = "dst-gone"
REASON_NO_MEMORY = "no-memory"
REASON_CIRCUIT_OPEN = "circuit-open"
REASON_VM_GONE = "vm-gone"

#: Reasons that never become retryable (the move itself is void).
_PERMANENT = (REASON_VM_GONE, REASON_DST_GONE)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for failed migration attempts."""

    max_attempts: int = 3
    backoff_s: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s <= 0:
            raise ValueError("backoff_s must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, failures: int) -> float:
        """Backoff before the next attempt after ``failures`` failures."""
        if failures < 1:
            raise ValueError("delay is defined after >= 1 failure")
        return self.backoff_s * self.multiplier ** (failures - 1)


class PmCircuitBreaker:
    """Per-destination circuit breaker over migration failures.

    ``failure_threshold`` consecutive failures against one destination
    open its circuit for ``cooldown_s`` of simulated time; while open,
    :meth:`allow` vetoes new attempts at that PM.  Any success closes
    the circuit and clears the count.
    """

    def __init__(
        self, *, failure_threshold: int = 3, cooldown_s: float = 60.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._failures: Dict[str, int] = {}
        self._open_until: Dict[str, float] = {}
        #: Times a circuit opened (diagnostics).
        self.opened = 0
        #: Every circuit-open as ``(now, pm, open_until)`` -- the
        #: chaos-fuzz monotonicity oracle replays this log to check
        #: that open windows never move backwards in time and that
        #: ``opened`` agrees with the log length.
        self.transitions: List[Tuple[float, str, float]] = []

    def allow(self, pm_name: str, now: float) -> bool:
        """Whether migrations to ``pm_name`` are currently permitted."""
        return now >= self._open_until.get(pm_name, -float("inf"))

    def record_success(self, pm_name: str) -> None:
        """A migration to ``pm_name`` landed; close its circuit."""
        self._failures.pop(pm_name, None)
        self._open_until.pop(pm_name, None)

    def record_failure(self, pm_name: str, now: float) -> None:
        """A migration to ``pm_name`` failed; maybe open its circuit."""
        count = self._failures.get(pm_name, 0) + 1
        if count >= self.failure_threshold:
            self._open_until[pm_name] = now + self.cooldown_s
            self._failures[pm_name] = 0
            self.opened += 1
            self.transitions.append((now, pm_name, now + self.cooldown_s))
        else:
            self._failures[pm_name] = count

    def state(self, pm_name: str, now: float) -> str:
        """``"open"`` or ``"closed"`` for diagnostics."""
        return "closed" if self.allow(pm_name, now) else "open"


@dataclass(frozen=True)
class MigrationAttempt:
    """One attempt of one planned move, with its outcome."""

    time: float
    vm: str
    src: str
    dst: str
    attempt: int
    ok: bool
    reason: str = REASON_OK


@dataclass
class _PendingMove:
    move: Move
    failures: int = 0
    next_time: float = 0.0


@dataclass
class ExecutorStats:
    """Aggregate outcome counters of one executor's lifetime."""

    submitted: int = 0
    succeeded: int = 0
    rollbacks: int = 0
    retries: int = 0
    abandoned: int = 0
    vetoed: int = 0


class MigrationExecutor:
    """Executes planned moves with failure, rollback, retry and breaker.

    Mid-flight failures are drawn from the dedicated
    ``faults.migration`` stream of the cluster's RNG registry; with
    ``failure_prob == 0`` no randomness is consumed and every submitted
    move lands exactly as :meth:`Cluster.migrate_vm` would.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[PmCircuitBreaker] = None,
        failure_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        self.cluster = cluster
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or PmCircuitBreaker()
        self.failure_prob = failure_prob
        self._rng = rng if rng is not None else cluster.sim.rng(
            "faults.migration"
        )
        self.log: List[MigrationAttempt] = []
        self.stats = ExecutorStats()
        self._pending: List[_PendingMove] = []

    @property
    def pending(self) -> int:
        """Moves still awaiting a retry."""
        return len(self._pending)

    def submit(self, move: Move) -> bool:
        """Attempt a move now; queue a retry on transient failure.

        Returns True when the guest landed on its destination.
        """
        self.stats.submitted += 1
        return self._attempt(_PendingMove(move=move))

    def tick(self, now: float) -> int:
        """Run every retry whose backoff has elapsed; return successes."""
        due = [p for p in self._pending if p.next_time <= now]
        self._pending = [p for p in self._pending if p.next_time > now]
        done = 0
        for pend in due:
            self.stats.retries += 1
            if self._attempt(pend):
                done += 1
        return done

    # -- internals ---------------------------------------------------------

    def _attempt(self, pend: _PendingMove) -> bool:
        now = self.cluster.sim.now
        move = pend.move
        ok, reason = self._try_move(move, now)
        self.log.append(
            MigrationAttempt(
                time=now,
                vm=move.vm,
                src=move.src,
                dst=move.dst,
                attempt=pend.failures + 1,
                ok=ok,
                reason=reason,
            )
        )
        _obs.inc(
            "repro_placement_migration_attempts_total", reason=reason
        )
        if ok:
            self.stats.succeeded += 1
            self.breaker.record_success(move.dst)
            return True
        if reason == REASON_MIDFLIGHT:
            self.stats.rollbacks += 1
        if reason in (REASON_MIDFLIGHT, REASON_DST_DOWN, REASON_NO_MEMORY):
            self.breaker.record_failure(move.dst, now)
        if reason == REASON_CIRCUIT_OPEN:
            self.stats.vetoed += 1
        pend.failures += 1
        if reason in _PERMANENT or pend.failures >= self.policy.max_attempts:
            self.stats.abandoned += 1
            return False
        pend.next_time = now + self.policy.delay(pend.failures)
        self._pending.append(pend)
        return False

    def _try_move(self, move: Move, now: float) -> Tuple[bool, str]:
        try:
            src = self.cluster.pm_of(move.vm)
        except KeyError:
            return False, REASON_VM_GONE
        dst = self.cluster.pms.get(move.dst)
        if dst is None:
            return False, REASON_DST_GONE
        if src.name == move.dst:
            return True, REASON_OK  # already there
        if dst.failed:
            return False, REASON_DST_DOWN
        if not self.breaker.allow(move.dst, now):
            return False, REASON_CIRCUIT_OPEN
        vm = src.remove_vm(move.vm)
        if self.failure_prob > 0.0 and self._rng.random() < self.failure_prob:
            src.add_vm(vm)  # pre-copy aborted: roll back to the source
            return False, REASON_MIDFLIGHT
        try:
            dst.add_vm(vm)
        except MemoryError:
            src.add_vm(vm)
            return False, REASON_NO_MEMORY
        return True, REASON_OK


class ResilientControlLoop:
    """Monitor -> detect -> plan -> execute, tolerant of faults.

    Every ``interval`` seconds the loop snapshots each PM, feeds the
    hotspot detector (a crashed PM contributes a *missing* observation),
    plans relief moves for hot PMs among the live ones, and pushes the
    moves through the failure-aware executor.  Due retries are processed
    first each round, so backed-off moves drain even when nothing is
    hot.
    """

    def __init__(
        self,
        cluster: Cluster,
        model: MultiVMOverheadModel,
        *,
        interval: float = 5.0,
        detector: Optional[HotspotDetector] = None,
        planner: Optional[MigrationPlanner] = None,
        executor: Optional[MigrationExecutor] = None,
        max_moves_per_round: int = 3,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        self.detector = detector or HotspotDetector(model, k=3, n=5)
        self.planner = planner or MigrationPlanner(model)
        self.executor = executor or MigrationExecutor(cluster)
        self.interval = interval
        self.max_moves = max_moves_per_round
        self.rounds = 0
        self.hot_rounds = 0
        self.missing_observations = 0
        self._proc: Optional[PeriodicProcess] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin control rounds on the shared clock."""
        if self._proc is not None and not self._proc.stopped:
            raise RuntimeError("control loop already running")
        self._proc = PeriodicProcess(
            self.cluster.sim, self.interval, self._round
        )

    def stop(self) -> None:
        """Stop issuing control rounds."""
        if self._proc is not None:
            self._proc.stop()
            self._proc = None

    # -- one round ---------------------------------------------------------

    def observe_cluster(self) -> Dict[str, List[VmObservation]]:
        """Current per-PM guest observations; crashed PMs excluded."""
        placement: Dict[str, List[VmObservation]] = {}
        for name, pm in self.cluster.pms.items():
            if pm.failed:
                continue
            snap = pm.snapshot()
            placement[name] = [
                VmObservation(
                    name=vm_name,
                    demand=ResourceVector(
                        cpu=util.cpu_pct,
                        mem=util.mem_mb,
                        io=util.io_bps,
                        bw=util.bw_kbps,
                    ),
                    mem_mb=pm.vms[vm_name].spec.mem_mb,
                )
                for vm_name, util in snap.vms.items()
            ]
        return placement

    def _round(self, now: float) -> None:
        with _obs.span(
            "placement.round", "placement", sim=self.cluster.sim,
            round=self.rounds + 1,
        ):
            self._run_round(now)

    def _run_round(self, now: float) -> None:
        self.rounds += 1
        _obs.inc("repro_placement_rounds_total")
        self.executor.tick(now)
        placement = self.observe_cluster()
        hot: List[str] = []
        for name in self.cluster.pms:
            if name not in placement:
                self.missing_observations += 1
                _obs.inc(
                    "repro_placement_missing_observations_total", pm=name
                )
                # A crashed PM ages the detector window without voting;
                # even if still "hot", its guests are down with it, so
                # no migration relief is planned until it reports again.
                self.detector.observe_missing(name)
                continue
            if self.detector.observe(name, placement[name]):
                hot.append(name)
        for pm_name in hot:
            self.hot_rounds += 1
            _obs.inc("repro_placement_hot_rounds_total", pm=pm_name)
            moves = self.planner.plan(
                pm_name, placement, max_moves=self.max_moves
            )
            for mv in moves:
                self.executor.submit(mv)
            if moves:
                self.detector.reset(pm_name)
