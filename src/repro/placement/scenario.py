"""The Figure 10 provisioning experiment.

Paper Section VI-B: five identical VMs (1 VCPU, a few hundred MB each).
Two run RUBiS (web front-end in VM1, database in VM2) at 500 clients;
the other three (VM3-VM5) are idle in scenario 0 and run ``lookbusy`` at
50 % CPU in one / two / all three of them in scenarios 1 / 2 / 3.
CloudScale predicts each VM's demand; the VMs are then deployed one by
one in random order, with (VOA) or without (VOU) the virtualization
overhead model in the admission check.  Each placement is repeated 10
times; RUBiS throughput and total processing time are compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.models.multi_vm import MultiVMOverheadModel
from repro.monitor.metrics import ResourceVector
from repro.placement.cloudscale import DemandPredictor
from repro.perf.cells import ScenarioTrialCell
from repro.perf.executor import run_cells
from repro.placement.placer import (
    VOA,
    VOU,
    Placer,
    PlacementPlan,
    PlacementRequest,
)
from repro.rubis.app import RUBiSApplication
from repro.rubis.client import ClientPopulation
from repro.sim.engine import Simulator
from repro.sim.rng import generator_from_seed
from repro.workloads.lookbusy import CpuHog
from repro.xen.specs import VMSpec

#: Paper scenario ids: number of VM3-VM5 running lookbusy at 50 %.
SCENARIOS: Tuple[int, ...] = (0, 1, 2, 3)
#: lookbusy intensity in the loaded aux VMs.
AUX_CPU_PCT = 50.0
#: RUBiS client population (paper: 500 simultaneous clients).
SCENARIO_CLIENTS = 500
#: VM memory; sized so four guests fit one PM and a fifth does not
#: (2048 MB total - 350 MB Dom0 = 1698 usable; 4 x 400 = 1600).
SCENARIO_VM_MEM_MB = 400
#: Placement repetitions (paper: "repeated this VM placement process
#: for 10 times").
DEFAULT_TRIALS = 10

VM_NAMES = ("vm1-web", "vm2-db", "vm3", "vm4", "vm5")


def _vm_spec(name: str) -> VMSpec:
    return VMSpec(name=name, mem_mb=SCENARIO_VM_MEM_MB)


def profile_demands(
    scenario: int,
    *,
    clients: int = SCENARIO_CLIENTS,
    seed: int = 7,
    profile_s: float = 60.0,
) -> Dict[str, ResourceVector]:
    """CloudScale profiling phase: observe each VM, predict its demand.

    The five VMs run on ample capacity (web and DB on separate PMs, aux
    hogs on a third) while per-second demand is observed; each metric is
    fed through a :class:`DemandPredictor` and the padded prediction
    becomes the VM's demand vector for placement.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"scenario must be one of {SCENARIOS}")
    sim = Simulator(seed=seed)
    cluster = Cluster(sim)
    for pm in ("prof1", "prof2", "prof3"):
        cluster.create_pm(pm)
    web = cluster.place_vm(_vm_spec(VM_NAMES[0]), "prof1")
    db = cluster.place_vm(_vm_spec(VM_NAMES[1]), "prof2")
    aux = [
        cluster.place_vm(_vm_spec(name), "prof3") for name in VM_NAMES[2:]
    ]
    for k, vm in enumerate(aux):
        if k < scenario:
            CpuHog(AUX_CPU_PCT).attach(vm)
    app = RUBiSApplication(
        cluster,
        web,
        db,
        ClientPopulation(
            clients, ramp_s=10.0, rng=sim.rng("profile-clients")
        ),
    )
    cluster.start()
    app.start()

    predictors: Dict[str, Dict[str, DemandPredictor]] = {
        name: {res: DemandPredictor() for res in ("cpu", "mem", "io", "bw")}
        for name in VM_NAMES
    }
    t_end = sim.now + profile_s
    while sim.now < t_end:
        cluster.run(1.0)
        for name, preds in predictors.items():
            util = cluster.pm_of(name).snapshot().vm(name)
            preds["cpu"].update(util.cpu_pct)
            preds["mem"].update(util.mem_mb)
            preds["io"].update(util.io_bps)
            preds["bw"].update(util.bw_kbps)
    return {
        name: ResourceVector(
            cpu=preds["cpu"].predict(),
            mem=preds["mem"].predict(),
            io=preds["io"].predict(),
            bw=preds["bw"].predict(),
        )
        for name, preds in predictors.items()
    }


@dataclass
class TrialResult:
    """One placement + run of one strategy."""

    scenario: int
    strategy: str
    plan: PlacementPlan
    throughput_rps: float
    total_time_s: float


@dataclass
class ScenarioResult:
    """All trials of one (scenario, strategy) cell of Figure 10."""

    scenario: int
    strategy: str
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def throughputs(self) -> np.ndarray:
        return np.array([t.throughput_rps for t in self.trials])

    @property
    def total_times(self) -> np.ndarray:
        return np.array([t.total_time_s for t in self.trials])

    def mean_throughput(self) -> float:
        """Figure 10(a)'s bar height."""
        return float(self.throughputs.mean())

    def mean_total_time(self) -> float:
        """Figure 10(b)'s bar height."""
        return float(self.total_times.mean())

    def throughput_percentiles(self) -> Tuple[float, float]:
        """(10th, 90th) percentile -- the paper's error bars."""
        return (
            float(np.percentile(self.throughputs, 10)),
            float(np.percentile(self.throughputs, 90)),
        )


def run_trial(
    scenario: int,
    strategy: str,
    model: Optional[MultiVMOverheadModel],
    demands: Dict[str, ResourceVector],
    *,
    order: Sequence[str],
    seed: int,
    duration_s: float = 120.0,
    clients: int = SCENARIO_CLIENTS,
) -> TrialResult:
    """Place the five VMs in ``order`` and run RUBiS for ``duration_s``."""
    result, _events = _run_trial(
        scenario,
        strategy,
        model,
        demands,
        order=order,
        seed=seed,
        duration_s=duration_s,
        clients=clients,
    )
    return result


def run_trial_cell(cell: ScenarioTrialCell) -> Tuple[TrialResult, int]:
    """Execute one fan-out cell: ``(trial result, events dispatched)``."""
    return _run_trial(
        cell.scenario,
        cell.strategy,
        cell.model,
        cell.demands,
        order=list(cell.order),
        seed=cell.seed,
        duration_s=cell.duration_s,
        clients=cell.clients,
    )


def _run_trial(
    scenario: int,
    strategy: str,
    model: Optional[MultiVMOverheadModel],
    demands: Dict[str, ResourceVector],
    *,
    order: Sequence[str],
    seed: int,
    duration_s: float,
    clients: int,
) -> Tuple[TrialResult, int]:
    if scenario not in SCENARIOS:
        raise ValueError(f"scenario must be one of {SCENARIOS}")
    if sorted(order) != sorted(VM_NAMES):
        raise ValueError(f"order must be a permutation of {VM_NAMES}")
    placer = Placer(["pm1", "pm2"], strategy=strategy, model=model)
    requests = [
        PlacementRequest(spec=_vm_spec(name), demand=demands[name])
        for name in order
    ]
    plan = placer.place(requests)

    sim = Simulator(seed=seed)
    cluster = Cluster(sim)
    cluster.create_pm("pm1")
    cluster.create_pm("pm2")
    vms = {
        name: cluster.place_vm(_vm_spec(name), plan.assignment[name])
        for name in VM_NAMES
    }
    for k, name in enumerate(VM_NAMES[2:]):
        if k < scenario:
            CpuHog(AUX_CPU_PCT).attach(vms[name])
    app = RUBiSApplication(
        cluster,
        vms[VM_NAMES[0]],
        vms[VM_NAMES[1]],
        ClientPopulation(
            clients, ramp_s=10.0, rng=sim.rng("trial-clients")
        ),
    )
    cluster.start()
    app.start()
    cluster.run(duration_s)
    result = TrialResult(
        scenario=scenario,
        strategy=strategy,
        plan=plan,
        throughput_rps=app.mean_throughput(),
        total_time_s=app.total_time(),
    )
    return result, sim.dispatched


def run_scenario_experiment(
    model: MultiVMOverheadModel,
    *,
    scenarios: Sequence[int] = SCENARIOS,
    trials: int = DEFAULT_TRIALS,
    duration_s: float = 120.0,
    seed: int = 2015,
    profile_s: float = 60.0,
) -> List[ScenarioResult]:
    """The full Figure 10 grid: scenarios x {VOA, VOU} x trials.

    Profiling and the trial-order shuffles stay serial (the shuffle
    stream must be consumed in exactly the order the serial loops drew
    it); the trials themselves -- the expensive part -- are independent
    :class:`~repro.perf.cells.ScenarioTrialCell` descriptors fanned out
    by :func:`~repro.perf.executor.run_cells` and merged back in trial
    order, so parallel output is byte-identical to serial.
    """
    rng = generator_from_seed(seed)
    results: List[ScenarioResult] = []
    by_key: Dict[Tuple[int, str], ScenarioResult] = {}
    work: List[ScenarioTrialCell] = []
    for scenario in scenarios:
        demands = profile_demands(
            scenario, seed=seed + scenario, profile_s=profile_s
        )
        for strategy in (VOA, VOU):
            cell_result = ScenarioResult(scenario=scenario, strategy=strategy)
            by_key[(scenario, strategy)] = cell_result
            results.append(cell_result)
        for trial in range(trials):
            order = list(VM_NAMES)
            rng.shuffle(order)
            for strategy in (VOA, VOU):
                work.append(
                    ScenarioTrialCell(
                        scenario=scenario,
                        strategy=strategy,
                        order=tuple(order),
                        seed=seed * 1000 + scenario * 100 + trial,
                        duration_s=duration_s,
                        clients=SCENARIO_CLIENTS,
                        model=model if strategy == VOA else None,
                        demands=demands,
                    )
                )
    for cell, trial_result in zip(work, run_cells(work)):
        by_key[(cell.scenario, cell.strategy)].trials.append(trial_result)
    return results
