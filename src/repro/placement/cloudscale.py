"""CloudScale-style online resource-demand prediction.

The paper's Section VI-B plugs its overhead model into CloudScale
(Shen et al., SoCC'11), "a system that employs online resource demand
prediction".  CloudScale's predictor has two tiers:

1. an **FFT signature detector**: if the recent demand window shows a
   dominant periodic component, the window from one period ago is the
   prediction;
2. otherwise a **discrete-time Markov chain** over quantized demand
   states predicts the expected next state;

plus **padding**: a burst headroom added to the raw prediction (the
maximum of recent under-prediction errors), because under-provisioning
hurts more than over-provisioning.

This module implements that stack for one metric; placement composes
four of them into a per-VM demand vector.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np


@dataclass(frozen=True)
class PredictorConfig:
    """Tuning knobs of :class:`DemandPredictor`."""

    #: Sliding-window length in samples.
    window: int = 120
    #: Minimum samples before predictions are meaningful.
    min_history: int = 8
    #: A spectral peak must carry this fraction of non-DC energy to count
    #: as a signature (CloudScale's "signature-driven" mode gate).
    signature_threshold: float = 0.4
    #: Number of quantization bins for the Markov fallback.
    markov_bins: int = 10
    #: Window of recent errors considered for padding.
    padding_window: int = 20
    #: Extra padding as a fraction of the raw prediction.
    padding_frac: float = 0.05

    def __post_init__(self) -> None:
        if self.window < 4:
            raise ValueError("window must be >= 4")
        if not 2 <= self.min_history <= self.window:
            raise ValueError("min_history must be in [2, window]")
        if not 0.0 < self.signature_threshold <= 1.0:
            raise ValueError("signature_threshold must be in (0, 1]")
        if self.markov_bins < 2:
            raise ValueError("markov_bins must be >= 2")
        if self.padding_frac < 0:
            raise ValueError("padding_frac must be >= 0")


class DemandPredictor:
    """Online predictor for one resource metric of one VM."""

    def __init__(self, config: Optional[PredictorConfig] = None) -> None:
        self.config = config or PredictorConfig()
        self._history: Deque[float] = deque(maxlen=self.config.window)
        self._errors: Deque[float] = deque(maxlen=self.config.padding_window)
        self._last_raw: Optional[float] = None

    def __len__(self) -> int:
        return len(self._history)

    def update(self, value: float) -> None:
        """Feed one observed demand sample (and score the last prediction)."""
        if value < 0:
            raise ValueError("demand must be >= 0")
        if self._last_raw is not None:
            # Positive error = under-prediction = what padding must cover.
            self._errors.append(value - self._last_raw)
        self._history.append(float(value))

    def predict_raw(self) -> float:
        """Un-padded next-interval prediction (signature, else Markov)."""
        n = len(self._history)
        if n == 0:
            raise RuntimeError("no demand history yet")
        data = np.asarray(self._history)
        if n < self.config.min_history:
            return float(data.mean())
        period = self._detect_signature(data)
        if period is not None and period < n:
            return float(data[n - period])
        return self._markov_predict(data)

    def predict(self) -> float:
        """Padded prediction: raw + burst headroom (never negative)."""
        raw = self.predict_raw()
        self._last_raw = raw
        pad = self.config.padding_frac * raw
        if self._errors:
            pad = max(pad, max(self._errors))
        return max(0.0, raw + pad)

    # -- internals ---------------------------------------------------------

    def _detect_signature(self, data: np.ndarray) -> Optional[int]:
        """Dominant period in samples, or None if no strong signature."""
        detrended = data - data.mean()
        if np.allclose(detrended, 0.0):
            return None
        spectrum = np.abs(np.fft.rfft(detrended)) ** 2
        spectrum[0] = 0.0
        total = spectrum.sum()
        if total <= 0:
            return None
        k = int(np.argmax(spectrum))
        if spectrum[k] / total < self.config.signature_threshold:
            return None
        period = int(round(len(data) / k))
        return period if period >= 2 else None

    def _markov_predict(self, data: np.ndarray) -> float:
        """Expected next value under a first-order chain on value bins."""
        lo, hi = float(data.min()), float(data.max())
        if hi - lo < 1e-12:
            return lo
        nbins = self.config.markov_bins
        edges = np.linspace(lo, hi, nbins + 1)
        states = np.clip(np.digitize(data, edges) - 1, 0, nbins - 1)
        counts = np.zeros((nbins, nbins))
        for a, b in zip(states[:-1], states[1:]):
            counts[a, b] += 1.0
        current = states[-1]
        row = counts[current]
        centers = (edges[:-1] + edges[1:]) / 2.0
        if row.sum() == 0:
            return float(centers[current])
        probs = row / row.sum()
        return float(np.dot(probs, centers))
