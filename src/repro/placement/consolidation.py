"""Overhead-aware server consolidation.

The mirror image of hotspot mitigation: when the cluster is
underutilized, packing guests onto fewer PMs lets the remainder be
powered down.  Doing this *without* the overhead model is exactly the
VOU failure mode of Figure 10 -- a consolidation plan that looks
feasible by guest sums can exhaust a PM once Dom0 and hypervisor costs
materialize.  :class:`ConsolidationPlanner` therefore admits a packing
only when the Eq. (3) model predicts every destination stays under the
utilization target.

Algorithm: repeatedly try to empty the *least-loaded* PM by first-fit-
decreasing its guests (by predicted CPU) into the other PMs; a PM is
only released if every one of its guests fits somewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.models.multi_vm import MultiVMOverheadModel
from repro.placement.migration import Move, VmObservation
from repro.xen.calibration import DEFAULT_CALIBRATION, XenCalibration
from repro.xen.specs import MachineSpec


@dataclass
class ConsolidationPlan:
    """Outcome of a consolidation round."""

    moves: List[Move] = field(default_factory=list)
    #: PMs emptied by the plan, in release order.
    released_pms: List[str] = field(default_factory=list)

    @property
    def pms_saved(self) -> int:
        """How many machines can be powered down."""
        return len(self.released_pms)


class ConsolidationPlanner:
    """Model-checked first-fit-decreasing consolidation."""

    def __init__(
        self,
        model: MultiVMOverheadModel,
        *,
        spec: Optional[MachineSpec] = None,
        calibration: Optional[XenCalibration] = None,
        target_frac: float = 0.8,
    ) -> None:
        if not 0.0 < target_frac <= 1.0:
            raise ValueError("target_frac must be in (0, 1]")
        self.model = model
        self.spec = spec or MachineSpec()
        self.cal = calibration or DEFAULT_CALIBRATION
        self.target = target_frac * self.cal.effective_capacity_pct

    # -- admission ---------------------------------------------------------

    def _pm_cpu(self, vms: Sequence[VmObservation]) -> float:
        if not vms:
            return self.cal.dom0_cpu_base + self.cal.hyp_cpu_base
        return self.model.predict([v.demand for v in vms]).pm_cpu

    def _fits(self, resident: List[VmObservation], vm: VmObservation) -> bool:
        mem = self.cal.dom0_mem_mb + sum(r.mem_mb for r in resident) + vm.mem_mb
        if mem > self.spec.mem_mb:
            return False
        return self._pm_cpu(resident + [vm]) <= self.target

    # -- planning -------------------------------------------------------------

    def plan(
        self, placement: Dict[str, List[VmObservation]]
    ) -> ConsolidationPlan:
        """Plan moves that empty as many PMs as possible.

        ``placement`` maps PM name to resident guest observations; the
        input is not mutated.  The plan is conservative: a source PM is
        released only if *all* of its guests can be re-placed with every
        destination staying under the target.
        """
        if not placement:
            raise ValueError("placement must be non-empty")
        state: Dict[str, List[VmObservation]] = {
            pm: list(vms) for pm, vms in placement.items()
        }
        plan = ConsolidationPlan()
        progress = True
        while progress:
            progress = False
            # Candidate sources: non-empty PMs, least loaded first.
            sources = sorted(
                (pm for pm, vms in state.items() if vms),
                key=lambda pm: self._pm_cpu(state[pm]),
            )
            for src in sources:
                trial = {pm: list(vms) for pm, vms in state.items()}
                trial_moves: List[Move] = []
                # First-fit-decreasing by predicted guest CPU demand.
                evictees = sorted(
                    trial[src], key=lambda v: v.demand.cpu, reverse=True
                )
                ok = True
                for vm in evictees:
                    dst_found = None
                    for dst, resident in trial.items():
                        # Never move into the source or re-open an empty
                        # PM -- consolidation must reduce the PM count.
                        if dst == src or not resident:
                            continue
                        if self._fits(resident, vm):
                            dst_found = dst
                            break
                    if dst_found is None:
                        ok = False
                        break
                    trial[src].remove(vm)
                    trial[dst_found].append(vm)
                    trial_moves.append(Move(vm=vm.name, src=src, dst=dst_found))
                if ok:
                    state = trial
                    plan.moves.extend(trial_moves)
                    plan.released_pms.append(src)
                    progress = True
                    break  # recompute source ordering
        return plan

    def apply(
        self,
        placement: Dict[str, List[VmObservation]],
        plan: ConsolidationPlan,
    ) -> Dict[str, List[VmObservation]]:
        """Return the placement after executing a plan (for verification)."""
        state = {pm: list(vms) for pm, vms in placement.items()}
        for mv in plan.moves:
            vm = next(v for v in state[mv.src] if v.name == mv.vm)
            state[mv.src].remove(vm)
            state[mv.dst].append(vm)
        return state
