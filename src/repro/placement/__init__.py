"""Overhead-aware resource provisioning (paper Section VI-B)."""

from repro.placement.admission import AdmissionPolicy, LinearOverhead
from repro.placement.autoscaler import ScalerConfig, VerticalScaler
from repro.placement.cloudscale import DemandPredictor, PredictorConfig
from repro.placement.consolidation import ConsolidationPlan, ConsolidationPlanner
from repro.placement.migration import (
    HotspotDetector,
    MigrationPlanner,
    Move,
    VmObservation,
)
from repro.placement.resilient import (
    ExecutorStats,
    MigrationAttempt,
    MigrationExecutor,
    PmCircuitBreaker,
    ResilientControlLoop,
    RetryPolicy,
)
from repro.placement.placer import (
    VOA,
    VOU,
    Placer,
    PlacementPlan,
    PlacementRequest,
)
from repro.placement.scenario import (
    AUX_CPU_PCT,
    DEFAULT_TRIALS,
    SCENARIO_CLIENTS,
    SCENARIO_VM_MEM_MB,
    SCENARIOS,
    VM_NAMES,
    ScenarioResult,
    TrialResult,
    profile_demands,
    run_scenario_experiment,
    run_trial,
)

__all__ = [
    "AUX_CPU_PCT",
    "AdmissionPolicy",
    "LinearOverhead",
    "ConsolidationPlan",
    "ConsolidationPlanner",
    "ScalerConfig",
    "VerticalScaler",
    "ExecutorStats",
    "HotspotDetector",
    "MigrationAttempt",
    "MigrationExecutor",
    "MigrationPlanner",
    "Move",
    "PmCircuitBreaker",
    "ResilientControlLoop",
    "RetryPolicy",
    "VmObservation",
    "DEFAULT_TRIALS",
    "DemandPredictor",
    "Placer",
    "PlacementPlan",
    "PlacementRequest",
    "PredictorConfig",
    "SCENARIOS",
    "SCENARIO_CLIENTS",
    "SCENARIO_VM_MEM_MB",
    "ScenarioResult",
    "TrialResult",
    "VM_NAMES",
    "VOA",
    "VOU",
    "profile_demands",
    "run_scenario_experiment",
    "run_trial",
]
