"""Virtualization-overhead-aware vs -unaware VM placement.

The paper compares CloudScale-driven placement with (VOA) and without
(VOU) the virtualization-overhead model:

* **VOU** admits a VM onto a PM if the *sum of predicted guest demands*
  fits the nominal hardware (CPU: all cores; memory: all RAM) -- it
  "ignores the extra CPU consumptions in Dom0 and the PM".
* **VOA** runs the predicted guest demand vectors through the
  :class:`~repro.models.multi_vm.MultiVMOverheadModel` and admits only
  if the *predicted PM utilization* -- including Dom0 and hypervisor --
  fits the machine's effective capacity.

Both place VMs one by one (the order the scenario hands them in) with
first-fit over the PM list, falling back to the least-loaded PM if no
machine passes the check (something must host the VM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.models.multi_vm import MultiVMOverheadModel
from repro.monitor.metrics import ResourceVector
from repro.xen.calibration import DEFAULT_CALIBRATION, XenCalibration
from repro.xen.specs import MachineSpec, VMSpec

#: Strategy names.
VOA = "voa"
VOU = "vou"


@dataclass(frozen=True)
class PlacementRequest:
    """One VM awaiting placement: its spec plus predicted demand."""

    spec: VMSpec
    demand: ResourceVector

    @property
    def name(self) -> str:
        """The VM's name."""
        return self.spec.name


@dataclass
class PlacementPlan:
    """Outcome of a placement round."""

    #: VM name -> PM name.
    assignment: Dict[str, str]
    #: VMs that only fit via the least-loaded fallback (capacity checks
    #: failed everywhere).
    forced: List[str] = field(default_factory=list)

    def vms_on(self, pm_name: str) -> List[str]:
        """Names of VMs assigned to one PM."""
        return [vm for vm, pm in self.assignment.items() if pm == pm_name]


class Placer:
    """First-fit placement under a pluggable admission check."""

    def __init__(
        self,
        pm_names: Sequence[str],
        *,
        strategy: str = VOA,
        model: Optional[MultiVMOverheadModel] = None,
        spec: Optional[MachineSpec] = None,
        calibration: Optional[XenCalibration] = None,
        cpu_headroom: float = 1.0,
    ) -> None:
        if not pm_names:
            raise ValueError("need at least one PM")
        if strategy not in (VOA, VOU):
            raise ValueError(f"unknown strategy {strategy!r}")
        if strategy == VOA and model is None:
            raise ValueError("VOA placement requires an overhead model")
        if cpu_headroom <= 0 or cpu_headroom > 1.0:
            raise ValueError("cpu_headroom must be in (0, 1]")
        self.pm_names = list(pm_names)
        self.strategy = strategy
        self.model = model
        self.spec = spec or MachineSpec()
        self.cal = calibration or DEFAULT_CALIBRATION
        self.cpu_headroom = cpu_headroom

    def place(self, requests: Sequence[PlacementRequest]) -> PlacementPlan:
        """Assign every request to a PM, in the given order."""
        names = [r.name for r in requests]
        if len(set(names)) != len(names):
            raise ValueError("duplicate VM names in placement requests")
        hosted: Dict[str, List[PlacementRequest]] = {
            pm: [] for pm in self.pm_names
        }
        plan = PlacementPlan(assignment={})
        for req in requests:
            target = None
            for pm in self.pm_names:
                if self._admits(hosted[pm], req):
                    target = pm
                    break
            if target is None:
                # Least loaded by predicted guest CPU; something must
                # host the VM (the paper's VOU ends up overloading here).
                target = min(
                    self.pm_names,
                    key=lambda pm: sum(r.demand.cpu for r in hosted[pm]),
                )
                plan.forced.append(req.name)
            hosted[target].append(req)
            plan.assignment[req.name] = target
        return plan

    # -- admission checks --------------------------------------------------

    def _admits(
        self, resident: List[PlacementRequest], new: PlacementRequest
    ) -> bool:
        candidate = resident + [new]
        if self.strategy == VOU:
            return self._admits_vou(candidate)
        return self._admits_voa(candidate)

    def _admits_vou(self, candidate: List[PlacementRequest]) -> bool:
        """Naive check: guest sums against nominal hardware.

        Memory still accounts for Dom0's resident set because free
        memory is directly observable from the hypervisor (this is how
        the paper's VOU correctly predicts the 5th VM won't fit); the
        *CPU* overhead of Dom0/hypervisor is what VOU ignores.
        """
        cpu = sum(r.demand.cpu for r in candidate)
        mem = self.cal.dom0_mem_mb + sum(r.spec.mem_mb for r in candidate)
        io = sum(r.demand.io for r in candidate)
        bw = sum(r.demand.bw for r in candidate)
        return (
            cpu <= self.spec.cpu_capacity_pct
            and mem <= self.spec.mem_mb
            and io <= self.spec.disk_iops_cap
            and bw <= self.spec.nic_kbps
        )

    def _admits_voa(self, candidate: List[PlacementRequest]) -> bool:
        """Overhead-aware check: model-predicted PM utilization."""
        assert self.model is not None
        pred = self.model.predict([r.demand for r in candidate])
        mem = self.cal.dom0_mem_mb + sum(r.spec.mem_mb for r in candidate)
        return (
            pred.pm_cpu <= self.cal.effective_capacity_pct * self.cpu_headroom
            and mem <= self.spec.mem_mb
            and pred.pm_io <= self.spec.disk_iops_cap
            and pred.pm_bw <= self.spec.nic_kbps
        )
