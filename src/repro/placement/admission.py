"""O(1) admission predicates over per-PM demand aggregates.

The paper-scale :class:`repro.placement.placer.Placer` re-walks every
resident VM's demand vector on each admission check -- fine for 7 PMs,
quadratic pain for a datacenter.  At fleet scale the coordinator keeps
one aggregate per PM -- the element-wise sum of resident peak-demand
vectors plus the resident count -- and both placement strategies
reduce to affine functions of that aggregate:

* **VOU** (overhead-unaware) admits while the guest CPU sum fits the
  *nominal* hardware capacity and guest memory plus the Dom0 working
  set fits physical RAM -- exactly the check that ignores where Dom0
  and hypervisor cycles come from.
* **VOA** (overhead-aware) admits while the *predicted PM* CPU --
  guests plus Dom0 plus hypervisor via the linear form of the paper's
  Eq. (3) -- fits the effective (schedulable) capacity with headroom.

:class:`LinearOverhead` carries the linear rates of the Xen
calibration (the convex/batching refinements matter for per-PM
accuracy, not for capacity planning), so a check is a handful of
multiply-adds and the vectorized variants answer "which of these 1000
PMs admit this VM?" in one numpy pass.

Demand vectors are ``[cpu_pct, mem_mb, io_bps, bw_kbps]`` (the
:data:`CPU` .. :data:`BW` column order used across the fleet modules).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.placement.placer import VOA, VOU
from repro.xen.calibration import XenCalibration
from repro.xen.specs import MachineSpec

#: Demand-vector column indices.
CPU, MEM, IO, BW = 0, 1, 2, 3


@dataclass(frozen=True)
class LinearOverhead:
    """Dom0 + hypervisor CPU as an affine function of aggregate demand.

    ``overhead_cpu = base + cpu_rate*sum_cpu + io_rate*sum_io +
    bw_rate*sum_bw`` -- the linear rates of
    :class:`repro.xen.calibration.XenCalibration`, Dom0 and hypervisor
    folded together.
    """

    base: float
    cpu_rate: float
    io_rate: float
    bw_rate: float

    @classmethod
    def from_calibration(
        cls, calibration: XenCalibration | None = None
    ) -> "LinearOverhead":
        cal = calibration or XenCalibration()
        return cls(
            base=cal.dom0_cpu_base + cal.hyp_cpu_base,
            cpu_rate=cal.dom0_ctl_lin + cal.hyp_ctl_lin,
            io_rate=cal.dom0_io_pct_per_bps + cal.hyp_io_pct_per_bps,
            bw_rate=cal.dom0_net_pct_per_kbps + cal.hyp_net_pct_per_kbps,
        )

    def overhead_cpu(self, sum_m: np.ndarray) -> float:
        """Virtualization CPU (pct points) for one aggregate vector."""
        return (
            self.base
            + self.cpu_rate * float(sum_m[CPU])
            + self.io_rate * float(sum_m[IO])
            + self.bw_rate * float(sum_m[BW])
        )

    def required_cpu(self, sum_m: np.ndarray) -> float:
        """Guests + Dom0 + hypervisor CPU for one aggregate vector."""
        return float(sum_m[CPU]) + self.overhead_cpu(sum_m)

    def required_cpu_array(self, sums: np.ndarray) -> np.ndarray:
        """:meth:`required_cpu` for a ``(pms, 4)`` aggregate matrix."""
        return (
            sums[:, CPU] * (1.0 + self.cpu_rate)
            + sums[:, IO] * self.io_rate
            + sums[:, BW] * self.bw_rate
            + self.base
        )


@dataclass(frozen=True)
class AdmissionPolicy:
    """One strategy's aggregate admission predicate.

    ``strategy`` is :data:`repro.placement.placer.VOA` or ``VOU``;
    ``vou_fill`` and ``voa_headroom`` are the fractions of the nominal
    respectively effective CPU budget the strategy packs up to.
    """

    strategy: str
    overhead: LinearOverhead = field(
        default_factory=LinearOverhead.from_calibration
    )
    machine: MachineSpec = field(default_factory=MachineSpec)
    effective_capacity_pct: float = 225.0
    dom0_mem_mb: float = 350.0
    vou_fill: float = 0.95
    voa_headroom: float = 0.88

    def __post_init__(self) -> None:
        if self.strategy not in (VOA, VOU):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if not 0.0 < self.vou_fill <= 1.0:
            raise ValueError("vou_fill must be in (0, 1]")
        if not 0.0 < self.voa_headroom <= 1.0:
            raise ValueError("voa_headroom must be in (0, 1]")

    @property
    def cpu_budget_pct(self) -> float:
        """The strategy's packing budget in CPU percentage points."""
        if self.strategy == VOU:
            return self.machine.cpu_capacity_pct * self.vou_fill
        return self.effective_capacity_pct * self.voa_headroom

    @property
    def mem_budget_mb(self) -> float:
        """Guest memory budget (VOA reserves the Dom0 working set)."""
        if self.strategy == VOU:
            return float(self.machine.mem_mb)
        return float(self.machine.mem_mb) - self.dom0_mem_mb

    def admits(self, sum_m: np.ndarray, template: np.ndarray) -> bool:
        """Would a PM with aggregate ``sum_m`` admit ``template``?"""
        joined = sum_m + template
        if float(joined[MEM]) > self.mem_budget_mb:
            return False
        if self.strategy == VOU:
            return float(joined[CPU]) <= self.cpu_budget_pct
        return self.overhead.required_cpu(joined) <= self.cpu_budget_pct

    def admits_array(
        self, sums: np.ndarray, template: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`admits` over a ``(pms, 4)`` matrix."""
        joined = sums + template[np.newaxis, :]
        fits_mem = joined[:, MEM] <= self.mem_budget_mb
        if self.strategy == VOU:
            return fits_mem & (joined[:, CPU] <= self.cpu_budget_pct)
        required = self.overhead.required_cpu_array(joined)
        return fits_mem & (required <= self.cpu_budget_pct)
