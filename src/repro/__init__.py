"""repro: a full reproduction of *Profiling and Understanding
Virtualization Overhead in Cloud* (Chen, Patel, Shen, Zhou -- ICPP 2015).

The package simulates the paper's Xen testbed from mechanism (credit
scheduler, Dom0 netback/blkback, striped virtual disks), re-runs its
measurement study (Figures 2-5), fits its virtualization-overhead
regression models (Eq. 1-3), validates them on a RUBiS-style two-tier
application (Figures 7-9), and reproduces the overhead-aware placement
result (Figure 10).

Quick start::

    from repro.sim import Simulator
    from repro.xen import PhysicalMachine, VMSpec
    from repro.monitor import MeasurementScript
    from repro.workloads import CpuHog

    sim = Simulator(seed=42)
    pm = PhysicalMachine(sim, name="pm1")
    vm = pm.create_vm(VMSpec(name="vm1"))
    CpuHog(90.0).attach(vm)
    pm.start()
    sim.run_until(3.0)
    report = MeasurementScript(pm).run(duration=120.0)
    print(report.mean("dom0", "cpu"), report.mean("hyp", "cpu"))

Subpackages
-----------
:mod:`repro.sim`
    Deterministic discrete-event kernel.
:mod:`repro.xen`
    The Xen substrate: PM, hypervisor + credit scheduler, Dom0, devices.
:mod:`repro.workloads`
    lookbusy/ping-style micro benchmarks (Table II).
:mod:`repro.monitor`
    xentop/top/mpstat/vmstat/ifconfig emulations (Table I) and the
    unified measurement script.
:mod:`repro.models`
    The paper's contribution: Eq. (1)-(3) overhead regression models.
:mod:`repro.rubis`
    Two-tier RUBiS application model (Section VI workload).
:mod:`repro.placement`
    CloudScale predictor and VOA/VOU placement (Section VI-B).
:mod:`repro.cluster`
    Multi-PM orchestration and inter-PM traffic routing.
:mod:`repro.experiments`
    One reproduction harness per table/figure, with shape checks.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
