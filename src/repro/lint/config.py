"""Lint configuration: defaults plus ``[tool.repro.lint]`` overrides.

The in-code defaults below are the canonical policy for this tree; the
``pyproject.toml`` table exists so the policy is visible next to the
rest of the project metadata and tweakable without editing the linter.
Keys may be written with dashes or underscores (``rng-allowed`` /
``rng_allowed``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Optional, Tuple

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]


@dataclass(frozen=True)
class LintConfig:
    """Rule selection and path scoping for one lint run."""

    #: Only these codes run when non-empty (e.g. ``("REP004",)``).
    select: Tuple[str, ...] = ()
    #: Codes never run (applied after ``select``).
    ignore: Tuple[str, ...] = ()
    #: Path fragments skipped entirely while walking directories.
    exclude: Tuple[str, ...] = ("__pycache__", ".git", "build", ".egg-info")
    #: Files allowed to construct raw generators (REP001/REP007 exempt).
    rng_allowed: Tuple[str, ...] = ("repro/sim/rng.py",)
    #: Deterministic-core paths where REP002/REP009 apply.
    wallclock_paths: Tuple[str, ...] = (
        "repro/sim", "repro/xen", "repro/models", "repro/monitor",
        "repro/placement", "repro/faults", "repro/workloads", "repro/rubis",
        "repro/cluster", "repro/obs",
    )
    #: Paths allowed to print() (CLI and report/analysis front-ends).
    print_allowed: Tuple[str, ...] = (
        "repro/cli.py", "repro/__main__.py", "repro/lint",
        "repro/experiments",
    )
    #: Files whose ``# repro: noqa`` comments must name codes and carry
    #: a justification (REP011) -- the sanctioned wall-clock funnels.
    noqa_justify: Tuple[str, ...] = (
        "repro/perf/profiler.py", "repro/perf/supervisor.py",
        "repro/obs/runtime.py",
    )
    #: Declared RNG stream manifest (REP102): ``(pattern, owners)``
    #: pairs loaded from ``[tool.repro.lint.streams]``.  Exact names or
    #: glob patterns (dynamic f-string families, declared verbatim) map
    #: to the path fragment(s) of their owning module(s).  Empty means
    #: "no manifest": REP102 then only checks cross-module collisions.
    streams: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    #: Dotted qualnames of functions executed inside ``--jobs`` pool
    #: workers; everything they reach is process-boundary code (REP103).
    worker_entrypoints: Tuple[str, ...] = (
        "repro.perf.executor._pool_worker",
        "repro.faults.workers.FaultableCell.run",
    )
    #: Modules whose module-level state is *meant* to be per-worker
    #: (sanitizer/obs process defaults, set and restored in the worker).
    worker_state_allowed: Tuple[str, ...] = (
        "repro/sim/sanitize.py", "repro/obs/runtime.py",
    )
    #: Collector-internal modules the deterministic core must not
    #: import (REP106); the runtime funnels are the sanctioned surface.
    obs_internal: Tuple[str, ...] = (
        "repro.obs.registry", "repro.obs.spans",
    )


_TUPLE_KEYS = {f.name for f in fields(LintConfig)}


def _normalise(key: str) -> str:
    return key.replace("-", "_")


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig`, overlaying ``[tool.repro.lint]``.

    ``pyproject`` defaults to ``./pyproject.toml``; a missing file or a
    missing table simply yields the defaults.  Unknown keys raise so
    config typos fail loudly rather than silently linting with the
    wrong policy.
    """
    cfg = LintConfig()
    path = pyproject if pyproject is not None else Path("pyproject.toml")
    if tomllib is None or not path.is_file():
        return cfg
    with path.open("rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro", {}).get("lint", {})
    overrides = {}
    for raw_key, value in table.items():
        key = _normalise(raw_key)
        if key not in _TUPLE_KEYS:
            raise ValueError(
                f"unknown [tool.repro.lint] key {raw_key!r}; "
                f"expected one of {sorted(_TUPLE_KEYS)}"
            )
        if key == "streams":
            if not isinstance(value, dict):
                raise ValueError(
                    "[tool.repro.lint.streams] must be a table of "
                    "stream name/pattern -> owning module path(s)"
                )
            overrides[key] = _normalise_streams(value)
            continue
        if isinstance(value, str):
            value = [value]
        overrides[key] = tuple(str(v) for v in value)
    return replace(cfg, **overrides)


def _normalise_streams(table: dict) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """``{pattern: path | [paths]}`` -> sorted hashable pairs."""
    pairs = []
    for pattern in sorted(table):
        owners = table[pattern]
        if isinstance(owners, str):
            owners = [owners]
        pairs.append((str(pattern), tuple(str(o) for o in owners)))
    return tuple(pairs)
