"""Determinism/correctness rules (``REPxxx``) and the rule registry.

Each rule is a small AST pass tuned to this codebase's reproducibility
contract: every random draw goes through the named-stream registry in
:mod:`repro.sim.rng`, no wall-clock leaks into simulated time, no
unordered iteration feeds scheduling or placement decisions, and errors
are never silently swallowed.

Rules subclass :class:`Rule` and register themselves with
:func:`register`; the engine instantiates the registry once and runs
every selected rule over each parsed file.  A rule reports hits by
yielding :class:`Violation` objects from :meth:`Rule.check`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Type

#: Pseudo-code used for files that fail to parse; always enabled.
PARSE_ERROR_CODE = "REP000"

#: ``# repro: noqa[CODES] justification`` suppression comments.
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def noqa_suppressions(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number -> suppressed codes (``None`` = all codes)."""
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return out


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def render(self) -> str:
        """``path:line:col: CODE message`` (1-based column, like flake8)."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
        }


class FileContext:
    """Per-file state shared by every rule during one lint pass."""

    def __init__(self, path: str, config) -> None:
        #: Posix-style path as handed to the engine (used in reports).
        self.path = path
        self.config = config
        #: Local name -> fully dotted origin, e.g. ``np -> numpy``,
        #: ``perf_counter -> time.perf_counter``.  Filled by the engine
        #: before rules run.
        self.aliases: Dict[str, str] = {}

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Expand the leading segment of ``dotted`` through import aliases."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains; ``None`` for anything fancier."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local import names to their dotted origins for one module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.partition(".")[0]] = (
                    alias.name if alias.asname else alias.name.partition(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def path_matches(path: str, patterns: Sequence[str]) -> bool:
    """True when ``path`` equals, ends with, or sits under any pattern."""
    slashed = "/" + path.strip("/")
    for pat in patterns:
        p = "/" + pat.strip("/")
        if slashed == p or slashed.endswith(p) or (p + "/") in (slashed + "/"):
            return True
    return False


class Rule:
    """Base class: one code, one summary, one AST pass."""

    code: str = ""
    name: str = ""
    summary: str = ""
    #: ``"file"`` rules run per parsed module; ``"project"`` rules run
    #: once over the whole-program :class:`repro.lint.graph.ProjectGraph`
    #: (they subclass ``ProjectRule`` in :mod:`repro.lint.rules_xmod`).
    scope: str = "file"

    def applies_to(self, ctx: FileContext) -> bool:
        """Path-level gate; rules scoped by config override this."""
        return True

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def hit(self, node: ast.AST, message: str, ctx: FileContext) -> Violation:
        return Violation(
            code=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


#: code -> rule instance, populated by :func:`register`.
REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    rule = cls()
    if not rule.code or rule.code in REGISTRY:
        raise ValueError(f"duplicate or empty rule code {rule.code!r}")
    REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    return [REGISTRY[code] for code in sorted(REGISTRY)]


# --------------------------------------------------------------------------
# The rules.
# --------------------------------------------------------------------------

#: Legacy module-level numpy.random draw/state functions (REP001).
_NP_CONSTRUCTORS = {
    "default_rng", "Generator", "RandomState", "PCG64", "PCG64DXSM",
    "MT19937", "Philox", "SFC64", "SeedSequence", "BitGenerator",
}

_WALLCLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.RandomState", "numpy.random.PCG64",
    "numpy.random.PCG64DXSM", "numpy.random.MT19937",
    "numpy.random.SeedSequence", "random.Random", "random.SystemRandom",
}


@register
class ModuleLevelRandom(Rule):
    """REP001: ``random`` / legacy ``numpy.random`` module state.

    The stdlib ``random`` module and legacy ``numpy.random.*`` functions
    share hidden global state: any import order change or extra draw
    shifts every downstream number.  All draws must come from named
    streams handed out by ``repro.sim.rng.RngRegistry``.
    """

    code = "REP001"
    name = "module-level-random"
    summary = "random / numpy.random module-level state outside repro/sim/rng.py"

    def applies_to(self, ctx: FileContext) -> bool:
        return not path_matches(ctx.path, ctx.config.rng_allowed)

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.hit(
                            node,
                            "stdlib 'random' has hidden global state; draw "
                            "from a named RngRegistry stream instead",
                            ctx,
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.hit(
                        node,
                        "import from stdlib 'random'; use "
                        "repro.sim.rng streams instead",
                        ctx,
                    )
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve(dotted_name(node.func))
                if (
                    resolved
                    and resolved.startswith("numpy.random.")
                    and resolved.rsplit(".", 1)[1] not in _NP_CONSTRUCTORS
                ):
                    yield self.hit(
                        node,
                        f"legacy module-level '{resolved}' mutates numpy's "
                        "global RNG state; use a named RngRegistry stream",
                        ctx,
                    )


@register
class WallClock(Rule):
    """REP002: wall-clock reads inside the deterministic core.

    Simulated components must consume ``sim.now`` only; a real-clock
    read makes run timing (and anything derived from it) irreproducible.
    """

    code = "REP002"
    name = "wall-clock"
    summary = "wall-clock call (time.time, datetime.now, perf_counter) in deterministic core"

    def applies_to(self, ctx: FileContext) -> bool:
        return path_matches(ctx.path, ctx.config.wallclock_paths)

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(dotted_name(node.func))
            if resolved in _WALLCLOCK:
                yield self.hit(
                    node,
                    f"wall-clock call '{resolved}' in deterministic core; "
                    "use the simulation clock (sim.now)",
                    ctx,
                )


@register
class UnorderedIteration(Rule):
    """REP003: iterating a set / ``dict.keys()`` without a sort key.

    Set iteration order depends on insertion history and hash seeding;
    feeding it into event scheduling or placement decisions makes runs
    diverge.  Iterate ``sorted(...)`` or the dict itself (insertion
    ordered) instead.
    """

    code = "REP003"
    name = "unordered-iteration"
    summary = "iteration over bare set / dict.keys() without an explicit sort key"

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        iters: List[ast.expr] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
                iters.append(node.iter)
        for it in iters:
            if isinstance(it, ast.Set):
                yield self.hit(
                    it,
                    "iteration over a set literal has no deterministic "
                    "order; wrap in sorted(...)",
                    ctx,
                )
            elif isinstance(it, ast.Call):
                if isinstance(it.func, ast.Name) and it.func.id in (
                    "set", "frozenset",
                ):
                    yield self.hit(
                        it,
                        f"iteration over {it.func.id}(...) has no "
                        "deterministic order; wrap in sorted(...)",
                        ctx,
                    )
                elif (
                    isinstance(it.func, ast.Attribute)
                    and it.func.attr == "keys"
                    and not it.args
                ):
                    yield self.hit(
                        it,
                        "iterate the mapping directly (insertion-ordered) "
                        "or sorted(d) instead of d.keys()",
                        ctx,
                    )


@register
class FloatEquality(Rule):
    """REP004: ``==`` / ``!=`` against a float literal.

    Exact float comparison silently breaks when a computation is
    reordered (e.g. a vectorized reduction).  Compare with a tolerance,
    or suppress with ``# repro: noqa[REP004]`` where exactness of a
    sentinel value is the point.
    """

    code = "REP004"
    name = "float-equality"
    summary = "float == / != comparison (use a tolerance or noqa an exact sentinel)"

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            ):
                yield self.hit(
                    node,
                    "exact float ==/!= comparison; use math.isclose / a "
                    "tolerance, or noqa an intentional sentinel check",
                    ctx,
                )


@register
class MutableDefault(Rule):
    """REP005: mutable default argument.

    A mutable default is shared across calls, so one run's state leaks
    into the next -- the classic aliasing bug, and a determinism hazard
    when the default accumulates draws or samples.
    """

    code = "REP005"
    name = "mutable-default"
    summary = "mutable default argument ([], {}, set())"

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")
                    and not default.args
                    and not default.keywords
                ):
                    yield self.hit(
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside",
                        ctx,
                    )


@register
class SilentExcept(Rule):
    """REP006: bare ``except:`` / silent ``except Exception: pass``.

    A swallowed :class:`SimulationError` turns a determinism violation
    into silently-wrong results.  Catch the narrowest type that can
    actually occur, and never discard it without acting.
    """

    code = "REP006"
    name = "silent-except"
    summary = "bare except / except Exception with a pass-only body"

    @staticmethod
    def _is_silent(body: Sequence[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, (ast.Pass, ast.Continue))
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
            for stmt in body
        )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.hit(
                    node,
                    "bare 'except:' catches SystemExit and hides "
                    "SimulationError; name the exception type",
                    ctx,
                )
                continue
            names = []
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for t in types:
                d = dotted_name(t)
                if d:
                    names.append(d.rsplit(".", 1)[-1])
            if (
                any(n in ("Exception", "BaseException") for n in names)
                and self._is_silent(node.body)
            ):
                yield self.hit(
                    node,
                    "'except Exception' with a pass-only body swallows "
                    "SimulationError; narrow the type or handle it",
                    ctx,
                )


@register
class RngBypass(Rule):
    """REP007: Generator construction bypassing the stream registry.

    Components must not mint their own generators or re-seed existing
    ones: stream derivation lives in ``repro.sim.rng`` so adding one
    noise source never shifts another component's numbers.
    """

    code = "REP007"
    name = "rng-bypass"
    summary = "RNG construction / re-seeding bypassing repro.sim.rng"

    def applies_to(self, ctx: FileContext) -> bool:
        return not path_matches(ctx.path, ctx.config.rng_allowed)

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(dotted_name(node.func))
            if resolved in _RNG_CONSTRUCTORS:
                yield self.hit(
                    node,
                    f"'{resolved}' bypasses the named-stream registry; "
                    "use repro.sim.rng (RngRegistry / generator_from_seed)",
                    ctx,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "seed"
                and node.args
            ):
                yield self.hit(
                    node,
                    "re-seeding a generator in place desynchronizes its "
                    "stream; derive a fresh named stream instead",
                    ctx,
                )


@register
class PrintInLibrary(Rule):
    """REP008: ``print()`` in library code.

    Library components report through monitor/report paths; stray
    prints corrupt machine-readable output (CSV/JSON) and break
    byte-identical report comparisons.
    """

    code = "REP008"
    name = "print-in-library"
    summary = "print() outside CLI / report code"

    def applies_to(self, ctx: FileContext) -> bool:
        return not path_matches(ctx.path, ctx.config.print_allowed)

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.hit(
                    node,
                    "print() in library code; route output through the "
                    "monitor/report layers or the CLI",
                    ctx,
                )


@register
class EnvRead(Rule):
    """REP009: environment reads inside the deterministic core.

    ``os.environ`` makes simulator behavior depend on the invoking
    shell.  Configuration must flow through explicit parameters so a
    seed fully determines a run.
    """

    code = "REP009"
    name = "env-read"
    summary = "os.environ / os.getenv read in deterministic core"

    def applies_to(self, ctx: FileContext) -> bool:
        return path_matches(ctx.path, ctx.config.wallclock_paths)

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                if ctx.resolve(dotted_name(node)) == "os.environ":
                    yield self.hit(
                        node,
                        "os.environ read in deterministic core; pass "
                        "configuration explicitly",
                        ctx,
                    )
            elif isinstance(node, ast.Call):
                if ctx.resolve(dotted_name(node.func)) == "os.getenv":
                    yield self.hit(
                        node,
                        "os.getenv in deterministic core; pass "
                        "configuration explicitly",
                        ctx,
                    )


@register
class UnstableSortKey(Rule):
    """REP010: sorting by ``hash`` / ``id``.

    ``hash`` of str/bytes is salted per process and ``id`` is an
    allocation address: both orderings change run to run, so any
    decision derived from them is irreproducible.
    """

    code = "REP010"
    name = "unstable-sort-key"
    summary = "sorted()/.sort() keyed on hash() or id()"

    @staticmethod
    def _key_is_unstable(key: ast.expr) -> bool:
        if isinstance(key, ast.Name) and key.id in ("hash", "id"):
            return True
        if isinstance(key, ast.Lambda):
            return any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name)
                and n.func.id in ("hash", "id")
                for n in ast.walk(key.body)
            )
        return False

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            is_sort = (
                isinstance(node.func, ast.Name) and node.func.id == "sorted"
            ) or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort"
            )
            if not is_sort:
                continue
            for kw in node.keywords:
                if kw.arg == "key" and self._key_is_unstable(kw.value):
                    yield self.hit(
                        node,
                        "sort keyed on hash()/id() is salted per process; "
                        "key on a stable field instead",
                        ctx,
                    )


@register
class JustifiedNoqa(Rule):
    """REP011: suppressions in audited files must be narrow and justified.

    The files in ``noqa-justify`` are the sanctioned funnels through
    which real time enters the tree (the profiler's ``wall_now``, the
    supervisor's deadline clock).  Every ``# repro: noqa`` there must
    name the code(s) it suppresses and say *why* after the bracket, so
    each exemption stays an auditable one-liner instead of a blanket
    waiver.  Detection lives in the engine on raw source lines -- this
    rule cannot be silenced by the very noqa comment it audits -- so
    ``check`` here is a no-op that exists to document the code in
    ``--list-rules``.
    """

    code = "REP011"
    name = "justified-noqa"
    summary = "noqa in audited files without named codes + justification"

    def applies_to(self, ctx: FileContext) -> bool:
        return False

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        return iter(())
