"""Cross-module determinism rules (``REP101``..``REP106``).

These rules run once per lint invocation over the whole-program
:class:`~repro.lint.graph.ProjectGraph` instead of per file: the bugs
they catch -- wall-clock laundered through helper funnels, RNG stream
names colliding between subsystems, state shipped across the ``--jobs``
process boundary -- are invisible to any single-file pass.

Suppression works exactly as for the per-file pack: an inline
``# repro: noqa[REP103] <why>`` on the reported line.  The engine
applies suppressions after ``check_project`` returns.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint import taint
from repro.lint.graph import ProjectGraph, StreamUse
from repro.lint.rules import Rule, Violation, path_matches, register


class ProjectRule(Rule):
    """Base for whole-program rules: one code, one graph pass."""

    scope = "project"

    def applies_to(self, ctx) -> bool:  # pragma: no cover - never file-run
        return False

    def check(self, tree, ctx) -> Iterator[Violation]:  # pragma: no cover
        return iter(())

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        raise NotImplementedError

    def at(self, path: str, line: int, col: int, message: str) -> Violation:
        return Violation(
            code=self.code, message=message, path=path, line=line, col=col
        )


@register
class LaunderedWallClock(ProjectRule):
    """REP101: wall-clock/env taint reaching the core through a chain.

    REP002/REP009 catch *direct* reads inside ``wallclock-paths``; this
    rule catches the laundered variant -- a core module calling a helper
    (defined outside the core) whose call chain eventually reads real
    time or the environment.  Funnels whose read carries a justified
    ``noqa[REP002]``/``noqa[REP009]`` do not seed taint, so the
    sanctioned entry points for real time stay transparent.
    """

    code = "REP101"
    name = "laundered-wall-clock"
    summary = "call chain from deterministic core reaching a wall-clock/env read"

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        cfg = graph.config
        tainted = taint.propagate(graph, taint.clock_sources(graph))
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            if not path_matches(mod.path, cfg.wallclock_paths):
                continue
            for fn in graph.iter_functions(name):
                for site in fn.calls:
                    callee = site.callee
                    if callee is None or callee not in tainted:
                        continue
                    callee_fn = graph.functions[callee]
                    if path_matches(callee_fn.path, cfg.wallclock_paths):
                        continue  # a direct read there is REP002's job
                    t = tainted[callee]
                    src = graph.functions[t.chain[-1]]
                    yield self.at(
                        mod.path,
                        site.line,
                        site.col,
                        f"call into '{callee}' reaches wall-clock: "
                        f"{t.render()} reads {t.read.resolved} at "
                        f"{src.path}:{t.read.line}; route real time "
                        "through a sanctioned funnel or pass sim.now in",
                    )


@register
class StreamManifest(ProjectRule):
    """REP102: RNG stream-name provenance across the whole codebase.

    Every statically-extractable stream name handed to the named-stream
    registry (``rng("...")``, ``sim.rng(f"faults.{kind}...")``) is
    collected project-wide.  Exact names must be unique across modules;
    with a ``[tool.repro.lint.streams]`` manifest declared, every name
    must be covered by an entry and used only from that entry's owning
    module(s).  Dynamic families (f-strings) must be declared verbatim
    as glob patterns (``"faults.worker.*"``).  Per-file REP007 cannot
    see two subsystems independently minting ``"noise"``; this rule
    can.
    """

    code = "REP102"
    name = "stream-manifest"
    summary = "RNG stream name undeclared, or colliding across modules"

    @staticmethod
    def _covering(
        use: StreamUse, manifest: Dict[str, Tuple[str, ...]]
    ) -> List[str]:
        if use.family:
            return [use.pattern] if use.pattern in manifest else []
        return [
            pat for pat in sorted(manifest)
            if fnmatch.fnmatchcase(use.pattern, pat)
        ]

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        manifest: Dict[str, Tuple[str, ...]] = dict(graph.config.streams)
        uses: List[Tuple[str, StreamUse]] = []
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            for use in mod.stream_uses:
                uses.append((name, use))
        if manifest:
            for name, use in uses:
                mod = graph.modules[name]
                covering = self._covering(use, manifest)
                if not covering:
                    kind = (
                        "dynamic RNG stream family"
                        if use.family else "RNG stream"
                    )
                    verbatim = (
                        " (families must be declared verbatim as a "
                        "glob pattern)" if use.family else ""
                    )
                    yield self.at(
                        mod.path,
                        use.line,
                        use.col,
                        f"{kind} '{use.pattern}' is not declared in "
                        f"[tool.repro.lint.streams]{verbatim}; declare "
                        "it with its owning module",
                    )
                    continue
                owned = any(
                    path_matches(mod.path, manifest[pat])
                    for pat in covering
                )
                if not owned:
                    owners = sorted(
                        {o for pat in covering for o in manifest[pat]}
                    )
                    yield self.at(
                        mod.path,
                        use.line,
                        use.col,
                        f"RNG stream '{use.pattern}' is declared to "
                        f"{', '.join(owners)}; drawing it from "
                        f"{mod.path} collides across subsystems",
                    )
        else:
            by_name: Dict[str, List[Tuple[str, StreamUse]]] = {}
            for name, use in uses:
                if not use.family:
                    by_name.setdefault(use.pattern, []).append((name, use))
            for stream in sorted(by_name):
                sites = by_name[stream]
                mods = sorted({m for m, _ in sites})
                if len(mods) < 2:
                    continue
                for mod_name, use in sites:
                    others = ", ".join(
                        graph.modules[m].path for m in mods
                        if m != mod_name
                    )
                    yield self.at(
                        graph.modules[mod_name].path,
                        use.line,
                        use.col,
                        f"RNG stream name '{stream}' is also minted in "
                        f"{others}; colliding names share one generator "
                        "and desynchronize both subsystems",
                    )


@register
class WorkerSharedState(ProjectRule):
    """REP103: state that cannot cross the ``--jobs`` process boundary.

    Functions reachable from a pool-worker entrypoint
    (``worker-entrypoints``) run in a forked/spawned worker: writes to
    module-level state there die with the worker (or race the parent's
    copy) instead of being observed by the parent.  Modules in
    ``worker-state-allowed`` (the sanitizer/obs per-process defaults,
    set and restored inside the worker by design) are exempt.  Also
    flags lambdas / locally-nested functions handed to ``.submit`` --
    they cannot be pickled by name.
    """

    code = "REP103"
    name = "worker-shared-state"
    summary = "module state written in pool-reachable code / unpicklable submit"

    def _is_module_global(self, graph: ProjectGraph, name: str) -> bool:
        """Does a *candidate* dotted write name hit a real module global?

        Bare names were validated against the writer's own globals at
        visit time; dotted ones (``repro.sim.core.SHARED``) are kept
        only when the prefix is a linted module defining that global --
        local attribute chains (``self.buf.append``) drop out here.
        """
        if "." not in name:
            return True
        mod_name, _, attr = name.rpartition(".")
        mod = graph.modules.get(mod_name)
        return mod is not None and attr in mod.global_names

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        cfg = graph.config
        reach = graph.reachable(cfg.worker_entrypoints)
        for qual in sorted(reach):
            fn = graph.functions[qual]
            if path_matches(fn.path, cfg.worker_state_allowed):
                continue
            entry, _ = reach[qual]
            for write in fn.global_writes:
                if not self._is_module_global(graph, write.name):
                    continue
                target_mod = graph.modules.get(
                    write.name.rpartition(".")[0]
                )
                if target_mod is not None and path_matches(
                    target_mod.path, cfg.worker_state_allowed
                ):
                    continue
                yield self.at(
                    fn.path,
                    write.line,
                    write.col,
                    f"'{qual}' is reachable from pool-worker entrypoint "
                    f"'{entry}' and writes module-level '{write.name}'; "
                    "a worker's write never reaches the parent process "
                    "(ship it via the returned outcome instead)",
                )
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            for issue in mod.submit_issues:
                what = (
                    "a lambda" if issue.kind == "lambda"
                    else "a locally-nested function"
                )
                yield self.at(
                    mod.path,
                    issue.line,
                    issue.col,
                    f"{what} submitted to a process pool cannot be "
                    "pickled by name; submit a module-level function",
                )


@register
class UnorderedReduction(ProjectRule):
    """REP104: float accumulation whose order is not pinned.

    ``sum()`` over a set (or a comprehension over one) accumulates IEEE
    floats in an order that varies run to run; the same applies when an
    unordered collection is passed into a *reduction helper* -- a
    function the call graph shows summing one of its parameters (the
    sweep-merge helpers).  Sort first, or use ``math.fsum`` (correctly
    rounded, order-independent).
    """

    code = "REP104"
    name = "unordered-reduction"
    summary = "sum() over an unordered collection (directly or via a reduction helper)"

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            for line, col in mod.unordered_sums:
                yield self.at(
                    mod.path,
                    line,
                    col,
                    "sum() over an unordered collection accumulates "
                    "floats in a run-varying order; sort first or use "
                    "math.fsum",
                )
            for fn in graph.iter_functions(name):
                for site in fn.calls:
                    if not site.unordered_arg or site.callee is None:
                        continue
                    callee = graph.functions[site.callee]
                    if not callee.reduces_params:
                        continue
                    yield self.at(
                        mod.path,
                        site.line,
                        site.col,
                        "unordered collection passed to float-reduction "
                        f"helper '{site.callee}' ({callee.path}:"
                        f"{callee.line}); its accumulation order varies "
                        "run to run -- sort before merging",
                    )


@register
class SchemaDrift(ProjectRule):
    """REP105: artifact schema-version literals must not drift or fork.

    Integrity-guarded artifacts (cache entries, checkpoints, the obs
    summary, model snapshots) are tagged with ``"<prefix>/v<N>"``
    literals.  A writer and reader disagreeing on the version, or a
    reader re-typing the literal instead of importing the writer's
    constant, silently turns every artifact into a structured-warning
    miss after the next bump.  The whole-program pass sees every
    occurrence at once.
    """

    code = "REP105"
    name = "schema-drift"
    summary = "schema-version literal re-typed across modules or version-forked"

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        by_literal: Dict[str, List[Tuple[str, object]]] = {}
        by_prefix: Dict[str, Dict[str, List[Tuple[str, object]]]] = {}
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            for use in mod.schema_uses:
                by_literal.setdefault(use.literal, []).append((name, use))
                by_prefix.setdefault(use.prefix, {}).setdefault(
                    use.version, []
                ).append((name, use))
        for prefix in sorted(by_prefix):
            versions = by_prefix[prefix]
            if len(versions) < 2:
                continue
            pinned = ", ".join(
                f"{v} in {graph.modules[m].path}:{u.line}"
                for v in sorted(versions)
                for m, u in versions[v]
            )
            for version in sorted(versions):
                for mod_name, use in versions[version]:
                    yield self.at(
                        graph.modules[mod_name].path,
                        use.line,
                        use.col,
                        f"schema prefix '{prefix}' is pinned at multiple "
                        f"versions ({pinned}); writer and reader must "
                        "share one constant",
                    )
        for literal in sorted(by_literal):
            sites = by_literal[literal]
            mods = sorted({m for m, _ in sites})
            if len(mods) < 2:
                continue
            def_mods = sorted(
                {m for m, u in sites if u.const_def is not None}
            )
            if len(def_mods) == 1:
                owner = graph.modules[def_mods[0]]
                const = next(
                    u.const_def for m, u in sites
                    if m == def_mods[0] and u.const_def
                )
                for mod_name, use in sites:
                    if mod_name == def_mods[0]:
                        continue
                    yield self.at(
                        graph.modules[mod_name].path,
                        use.line,
                        use.col,
                        f"re-typed schema literal '{literal}'; import "
                        f"{const} from {owner.path} so writer and "
                        "reader can never drift",
                    )
            else:
                for mod_name, use in sites:
                    yield self.at(
                        graph.modules[mod_name].path,
                        use.line,
                        use.col,
                        f"schema literal '{literal}' is defined in "
                        f"{len(mods)} modules "
                        f"({', '.join(graph.modules[m].path for m in mods)});"
                        " keep one owning constant and import it",
                    )


@register
class ObsFunnel(ProjectRule):
    """REP106: deterministic core uses only the zero-overhead obs funnels.

    The core instruments itself through ``repro.obs.runtime``'s helpers
    (``inc``/``set_gauge``/``observe``/``span``), which are no-ops when
    no collector is installed -- that is what keeps obs-disabled runs
    byte-identical.  Importing the collector internals
    (``repro.obs.registry``, ``repro.obs.spans``) into a core module
    bypasses that contract and mutates collector state directly.
    """

    code = "REP106"
    name = "obs-funnel"
    summary = "deterministic core importing repro.obs internals instead of the runtime funnels"

    def check_project(self, graph: ProjectGraph) -> Iterator[Violation]:
        cfg = graph.config
        banned = tuple(cfg.obs_internal)
        for name in sorted(graph.modules):
            mod = graph.modules[name]
            if not path_matches(mod.path, cfg.wallclock_paths):
                continue
            if mod.name == "repro.obs" or mod.name.startswith("repro.obs."):
                continue
            for origin, line, col in mod.import_sites:
                hit: Optional[str] = None
                for prefix in banned:
                    if origin == prefix or origin.startswith(prefix + "."):
                        hit = prefix
                        break
                if hit is not None:
                    yield self.at(
                        mod.path,
                        line,
                        col,
                        f"deterministic core imports '{origin}' (collector "
                        "internals); instrument through the zero-overhead "
                        "repro.obs runtime funnels (inc/set_gauge/observe/"
                        "span) instead",
                    )
