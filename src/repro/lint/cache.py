"""Incremental lint cache: content hashes + config digest + SCC closure.

The expensive part of a lint run is the per-file rule pass; parsing is
cheap and the whole-program graph must exist every run anyway (the
cross-module pack and the cache's own invalidation both need it).  So
the cache stores each file's **file-scope** violations keyed by

    sha256(engine version, config digest,
           content hashes of the file's import-dependency closure)

computed on the SCC condensation of the import graph.  Touching one
leaf module therefore re-analyzes exactly that module plus its
transitive dependents -- everything else replays from cache -- and a
config or engine change invalidates everything at once.  Cross-module
violations are *never* cached: they are recomputed each run from the
already-built graph (a cheap worklist), which keeps global rules sound
without cross-file invalidation bookkeeping.

The cache file is a single JSON document written atomically; a corrupt
or version-skewed cache degrades to a full re-analysis, never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.rules import Violation

#: Bump on any change to rules or engine semantics.
ENGINE_VERSION = "2"

_CACHE_FORMAT = "repro-lint-cache/1"


def file_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def config_digest(config, rule_codes: Sequence[str]) -> str:
    """Digest of the effective policy: config + enabled rules + engine."""
    payload = json.dumps(
        {
            "engine": ENGINE_VERSION,
            "config": asdict(config),
            "rules": sorted(rule_codes),
        },
        sort_keys=True,
        default=list,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def closure_key(
    cfg_digest: str, closure_hashes: Sequence[str]
) -> str:
    """Cache key for one file given its dependency-closure hashes."""
    h = hashlib.sha256()
    h.update(cfg_digest.encode("ascii"))
    for digest in sorted(closure_hashes):
        h.update(digest.encode("ascii"))
    return h.hexdigest()


def _violation_to_dict(v: Violation) -> Dict[str, object]:
    return {
        "code": v.code, "message": v.message, "path": v.path,
        "line": v.line, "col": v.col,
    }


def _violation_from_dict(d: Dict[str, object]) -> Violation:
    return Violation(
        code=str(d["code"]),
        message=str(d["message"]),
        path=str(d["path"]),
        line=int(d["line"]),  # type: ignore[arg-type]
        col=int(d["col"]),  # type: ignore[arg-type]
    )


class LintCache:
    """Per-file result cache persisted under ``--cache-dir``."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "repro-lint-cache.json"
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("format") != _CACHE_FORMAT:
            return
        entries = data.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, path: str, key: str) -> Optional[List[Violation]]:
        """Cached file-scope violations, or ``None`` on any mismatch."""
        entry = self._entries.get(path)
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        raw = entry.get("violations")
        if not isinstance(raw, list):
            return None
        try:
            return [_violation_from_dict(d) for d in raw]
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, path: str, key: str, violations: List[Violation]) -> None:
        self._entries[path] = {
            "key": key,
            "violations": [_violation_to_dict(v) for v in violations],
        }
        self._dirty = True

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer part of the run."""
        live = set(live_paths)
        stale = [p for p in sorted(self._entries) if p not in live]
        for p in stale:
            del self._entries[p]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"format": _CACHE_FORMAT, "files": self._entries},
            sort_keys=True,
        )
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, self.path)
        self._dirty = False
