"""``repro lint``: the CLI front-end of the static-analysis pass.

Exit codes follow CI conventions: 0 clean, 1 violations found, 2 usage
error (unknown path / unknown rule code).

Output formats: ``text`` (human, plus optional per-rule statistics and
cache counters), ``json`` (machine), ``sarif`` (SARIF 2.1.0, for
GitHub code-scanning upload).  ``--cache-dir`` enables the incremental
cache; ``--fix`` applies the mechanical autofixes (REP003/REP005)
before reporting what remains.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint import sarif
from repro.lint.cache import LintCache
from repro.lint.config import load_config
from repro.lint.engine import LintEngine
from repro.lint.fixes import FIXABLE_CODES, fix_source
from repro.lint.rules import REGISTRY, all_rules


def _catalogue_range() -> str:
    codes = sorted(REGISTRY)
    return f"{codes[0]}..{codes[-1]}"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint`` arguments to ``parser`` (shared with main CLI)."""
    parser.epilog = (
        f"rule catalogue: {_catalogue_range()} "
        "(file-scope REP0xx, cross-module REP1xx); "
        "run --list-rules for the full table"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif emits SARIF 2.1.0)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. REP004,REP102)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro.lint] from "
        "(default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="enable the incremental cache: re-analyze only files whose "
        "import-dependency closure changed since the cached run",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="report analyzed vs cache-replayed file counts",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical autofixes "
        f"({', '.join(FIXABLE_CODES)}) before reporting",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule violation count summary",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [c.strip().upper() for c in raw.split(",") if c.strip()]
    unknown = [c for c in codes if c not in REGISTRY]
    if unknown:
        raise SystemExit(
            f"error: unknown rule code(s) {', '.join(unknown)}; "
            f"have {', '.join(sorted(REGISTRY))}"
        )
    return codes


def _rule_table() -> str:
    lines = ["code    name                  scope    summary"]
    for rule in all_rules():
        lines.append(
            f"{rule.code}  {rule.name:<20}  {rule.scope:<7}  {rule.summary}"
        )
    return "\n".join(lines)


def _apply_fixes(engine: LintEngine, paths: Sequence[Path]) -> None:
    """Rewrite fixable violations in place; summary goes to stderr so
    machine-readable stdout (json/sarif) stays clean."""
    fixed_total = 0
    fixed_files = 0
    for path in engine.walk(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        new, n = fix_source(source, path=path.as_posix(), config=engine.config)
        if n and new != source:
            path.write_text(new, encoding="utf-8")
            fixed_total += n
            fixed_files += 1
    print(
        f"--fix: rewrote {fixed_total} violation(s) in {fixed_files} file(s)",
        file=sys.stderr,
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro lint`` invocation."""
    if args.list_rules:
        print(_rule_table())
        return 0
    try:
        config = load_config(args.config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        select = _parse_codes(args.select)
        ignore = _parse_codes(args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    if select is not None or ignore is not None:
        from dataclasses import replace

        config = replace(
            config,
            select=tuple(select) if select is not None else config.select,
            ignore=tuple(ignore) if ignore is not None else config.ignore,
        )

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        names = ", ".join(str(p) for p in missing)
        print(f"error: no such file or directory: {names}", file=sys.stderr)
        return 2

    engine = LintEngine(config)
    if args.fix:
        _apply_fixes(engine, paths)
    cache = LintCache(args.cache_dir) if args.cache_dir is not None else None
    report = engine.run(paths, cache=cache)
    violations = report.violations

    if args.format == "json":
        payload = {
            "files": len(report.files),
            "count": len(violations),
            "violations": [v.as_dict() for v in violations],
        }
        if args.stats:
            payload["analyzed"] = report.analyzed
            payload["cached"] = report.cached
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        print(sarif.render_text(violations, engine.rules()))
        if args.stats:
            print(
                f"cache: {report.analyzed} analyzed, "
                f"{report.cached} replayed",
                file=sys.stderr,
            )
    else:
        for v in violations:
            print(v.render())
        if args.statistics and violations:
            print()
            for code, n in sorted(Counter(v.code for v in violations).items()):
                print(f"{code}  {n:4d}  {REGISTRY[code].name}")
        summary = (
            f"{len(violations)} violation(s) in {len(report.files)} file(s)"
            if violations
            else f"clean: 0 violations in {len(report.files)} file(s)"
        )
        print(summary)
        if args.stats:
            print(
                f"cache: {report.analyzed} file(s) analyzed, "
                f"{report.cached} replayed from cache"
            )
    return 1 if violations else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "determinism/correctness static analysis "
            f"(rules {_catalogue_range()})"
        ),
    )
    configure_parser(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
