"""``repro lint``: the CLI front-end of the static-analysis pass.

Exit codes follow CI conventions: 0 clean, 1 violations found, 2 usage
error (unknown path / unknown rule code).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine
from repro.lint.rules import REGISTRY, all_rules


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint`` arguments to ``parser`` (shared with main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. REP004,REP007)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro.lint] from "
        "(default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule violation count summary",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [c.strip().upper() for c in raw.split(",") if c.strip()]
    unknown = [c for c in codes if c not in REGISTRY]
    if unknown:
        raise SystemExit(
            f"error: unknown rule code(s) {', '.join(unknown)}; "
            f"have {', '.join(sorted(REGISTRY))}"
        )
    return codes


def _rule_table() -> str:
    lines = ["code    name                  summary"]
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name:<20}  {rule.summary}")
    return "\n".join(lines)


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro lint`` invocation."""
    if args.list_rules:
        print(_rule_table())
        return 0
    try:
        config = load_config(args.config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        select = _parse_codes(args.select)
        ignore = _parse_codes(args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    if select is not None or ignore is not None:
        from dataclasses import replace

        config = replace(
            config,
            select=tuple(select) if select is not None else config.select,
            ignore=tuple(ignore) if ignore is not None else config.ignore,
        )

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        names = ", ".join(str(p) for p in missing)
        print(f"error: no such file or directory: {names}", file=sys.stderr)
        return 2

    engine = LintEngine(config)
    files = engine.walk(paths)
    violations = engine.lint_paths(paths)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files": len(files),
                    "count": len(violations),
                    "violations": [v.as_dict() for v in violations],
                },
                indent=2,
            )
        )
    else:
        for v in violations:
            print(v.render())
        if args.statistics and violations:
            print()
            for code, n in sorted(Counter(v.code for v in violations).items()):
                print(f"{code}  {n:4d}  {REGISTRY[code].name}")
        summary = (
            f"{len(violations)} violation(s) in {len(files)} file(s)"
            if violations
            else f"clean: 0 violations in {len(files)} file(s)"
        )
        print(summary)
    return 1 if violations else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism/correctness static analysis (REPxxx rules)",
    )
    configure_parser(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
