"""Whole-program model: symbol table, import graph, approximate call graph.

:class:`ProjectGraph` parses every file of a lint run once and extracts
the per-module facts the cross-module rule pack (REP101..REP106,
:mod:`repro.lint.rules_xmod`) and the incremental cache need:

* a project-wide **symbol table** of functions/methods keyed by dotted
  qualname (``repro.perf.executor._pool_worker``);
* the **import graph** between project modules (and its strongly
  connected components, for cache invalidation);
* an approximate **call graph**: call sites are resolved through import
  aliases, local definitions, and ``self.method`` within a class; calls
  through arbitrary objects stay unresolved (documented approximation);
* determinism-relevant facts per function -- wall-clock/env reads (with
  their noqa status, so a justified funnel stops taint), module-global
  writes, float-reduction parameters -- plus per-module RNG stream-name
  literals and schema-version literals.

Everything iterates in sorted order so analysis output is itself
deterministic.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.rules import dotted_name, noqa_suppressions

#: Wall-clock reads (shared with REP002); module-level so the taint
#: pass and the per-file rule can never drift apart.
WALLCLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Environment reads (shared with REP009).
ENV_READS = {"os.getenv", "os.environ"}

#: Codes whose inline noqa sanctions a clock/env read as a funnel --
#: a suppressed source does not propagate taint (REP101).
_SOURCE_CODES = frozenset({"REP002", "REP009", "REP101"})

#: Method names that mutate their receiver in place (REP103).
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
}

#: Call names that mint/fetch a named RNG stream (REP102).
_STREAM_CALLEES = {"rng", "fresh"}

#: Integrity/artifact schema tags, e.g. ``"repro.perf.checkpoint/v1"``
#: or ``"repro-obs/1"`` (REP105).
SCHEMA_LITERAL_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_.-]{2,}/v?(\d+)$")


def module_name_for(path: str) -> str:
    """Dotted module name for a posix path (rooted at ``repro``)."""
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[idx:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


@dataclass
class ClockRead:
    """One wall-clock/env read inside a function."""

    resolved: str
    line: int
    col: int
    #: True when the line carries a noqa naming REP002/REP009/REP101
    #: (or a blanket noqa): the read is a sanctioned funnel and does
    #: not seed taint.
    suppressed: bool


@dataclass
class CallSite:
    """One call expression, before and after resolution."""

    raw: str
    line: int
    col: int
    #: A positional argument is a set literal / ``set()`` / ``frozenset()``
    #: (or a comprehension over one) -- unordered (REP104).
    unordered_arg: bool = False
    #: Filled by :meth:`ProjectGraph._bind`: project qualname, or None.
    callee: Optional[str] = None


@dataclass
class GlobalWrite:
    """A write to module-level state from inside a function (REP103)."""

    name: str
    line: int
    col: int


@dataclass
class StreamUse:
    """A statically-extracted RNG stream name or family (REP102)."""

    #: Exact name, or a glob pattern with ``*`` for dynamic segments.
    pattern: str
    #: True when the name came from an f-string (declared verbatim).
    family: bool
    line: int
    col: int


@dataclass
class SchemaUse:
    """A schema-version string literal occurrence (REP105)."""

    literal: str
    line: int
    col: int
    #: Constant name when this occurrence *defines* a module-level
    #: constant (``CHECKPOINT_SCHEMA = "repro.perf.checkpoint/v1"``).
    const_def: Optional[str] = None

    @property
    def prefix(self) -> str:
        return self.literal.rsplit("/", 1)[0]

    @property
    def version(self) -> str:
        return self.literal.rsplit("/", 1)[1]


@dataclass
class SubmitIssue:
    """A lambda / locally-nested function handed to ``.submit`` (REP103)."""

    kind: str  # "lambda" | "nested"
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One function/method (or the module body pseudo-function)."""

    qualname: str
    module: str
    path: str
    line: int
    col: int
    params: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)
    clock_reads: List[ClockRead] = field(default_factory=list)
    global_writes: List[GlobalWrite] = field(default_factory=list)
    #: Parameters this function float-reduces (``sum(p)`` or a
    #: ``for v in p: acc += v`` loop) -- it is a *reduction helper*.
    reduces_params: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """Per-module facts extracted in one AST walk."""

    name: str
    path: str
    source: str
    tree: ast.AST
    aliases: Dict[str, str] = field(default_factory=dict)
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict
    )
    #: Raw dotted import origins with their statement locations.
    import_sites: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Project modules this module imports (bound by the graph).
    deps: Set[str] = field(default_factory=set)
    #: Names assigned at module level (mutable-state candidates).
    global_names: Set[str] = field(default_factory=set)
    #: Module-level string constants (for f-string stream prefixes).
    consts: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Set[str] = field(default_factory=set)
    stream_uses: List[StreamUse] = field(default_factory=list)
    schema_uses: List[SchemaUse] = field(default_factory=list)
    submit_issues: List[SubmitIssue] = field(default_factory=list)
    #: ``sum(...)`` over a statically-unordered collection (REP104).
    unordered_sums: List[Tuple[int, int]] = field(default_factory=list)
    #: The module body as a pseudo-function (import-time calls count).
    body: FunctionInfo = None  # type: ignore[assignment]


def _is_unordered(node: ast.expr) -> bool:
    """True for set displays, ``set()``/``frozenset()`` calls, and
    comprehensions/generators whose first iterable is one of those."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        if node.generators:
            return _is_unordered(node.generators[0].iter)
    return False


class _ModuleVisitor(ast.NodeVisitor):
    """One pass over a module, filling its :class:`ModuleInfo`."""

    def __init__(self, mod: ModuleInfo) -> None:
        self.mod = mod
        self.func_stack: List[FunctionInfo] = []
        self.declared_globals: List[Set[str]] = []
        self.local_defs: List[Set[str]] = []
        self.name_stack: List[str] = []
        self.class_stack: List[str] = []

    # -- helpers ----------------------------------------------------

    def _targets(self) -> List[FunctionInfo]:
        """Facts attach to every enclosing function (closure writes and
        reads count against the function that will ship the closure),
        or to the module body at top level."""
        return self.func_stack if self.func_stack else [self.mod.body]

    def _resolve(self, dotted: Optional[str]) -> Optional[str]:
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.mod.aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def _source_suppressed(self, lineno: int) -> bool:
        codes = self.mod.suppressions.get(lineno, frozenset())
        if codes is None:
            return True
        return bool(codes & _SOURCE_CODES)

    # -- imports ----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.mod.import_sites.append(
                (alias.name, node.lineno, node.col_offset)
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self.mod.name.rsplit(".", node.level)[0] if (
                self.mod.name.count(".") >= node.level
            ) else self.mod.name
            module = f"{base}.{node.module}" if node.module else base
        else:
            module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                origin = module
            else:
                origin = f"{module}.{alias.name}" if module else alias.name
            self.mod.import_sites.append(
                (origin, node.lineno, node.col_offset)
            )
        self.generic_visit(node)

    # -- definitions ------------------------------------------------

    def _visit_def(self, node) -> None:
        qual = ".".join([self.mod.name, *self.name_stack, node.name])
        if self.local_defs:
            self.local_defs[-1].add(node.name)
        args = node.args
        params = tuple(
            a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        )
        info = FunctionInfo(
            qualname=qual,
            module=self.mod.name,
            path=self.mod.path,
            line=node.lineno,
            col=node.col_offset,
            params=params,
        )
        self.mod.functions.setdefault(qual, info)
        self.func_stack.append(info)
        self.declared_globals.append(set())
        self.local_defs.append(set())
        self.name_stack.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self.name_stack.pop()
        self.local_defs.pop()
        self.declared_globals.pop()
        self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = ".".join([self.mod.name, *self.name_stack, node.name])
        self.mod.classes.add(qual)
        self.name_stack.append(node.name)
        self.class_stack.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self.class_stack.pop()
        self.name_stack.pop()

    def visit_Global(self, node: ast.Global) -> None:
        if self.declared_globals:
            self.declared_globals[-1].update(node.names)

    # -- assignments (module globals + writes) ----------------------

    def _record_write(self, name: str, node: ast.AST) -> None:
        for fn in self._targets():
            if fn is not self.mod.body:
                fn.global_writes.append(
                    GlobalWrite(name, node.lineno, node.col_offset)
                )

    def _record_candidate(self, base: ast.expr, node: ast.AST) -> None:
        """A write through a dotted base (``core.SHARED``): record it as
        a *candidate*; REP103 keeps only names that resolve to a module
        global in the bound graph, so local attribute chains drop out."""
        if not self.func_stack:
            return
        dotted = dotted_name(base)
        resolved = self._resolve(dotted)
        if resolved and "." in resolved:
            self._record_write(resolved, node)

    def _handle_assign_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if not self.func_stack:
                self.mod.global_names.add(target.id)
            elif (
                self.declared_globals
                and target.id in self.declared_globals[-1]
            ):
                self._record_write(target.id, node)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name):
                if (
                    self.func_stack
                    and target.value.id in self.mod.global_names
                ):
                    self._record_write(target.value.id, node)
            elif isinstance(target.value, ast.Attribute):
                self._record_candidate(target.value, node)
        elif isinstance(target, ast.Attribute):
            self._record_candidate(target, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_assign_target(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_assign_target(target, node)
        if not self.func_stack:
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                name = node.targets[0].id
                self.mod.consts[name] = node.value.value
                if SCHEMA_LITERAL_RE.match(node.value.value):
                    self.mod.schema_uses.append(
                        SchemaUse(
                            node.value.value,
                            node.value.lineno,
                            node.value.col_offset,
                            const_def=name,
                        )
                    )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_assign_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_assign_target(node.target, node)
        self.generic_visit(node)

    # -- expressions ------------------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and SCHEMA_LITERAL_RE.match(node.value):
            already = any(
                u.line == node.lineno and u.col == node.col_offset
                for u in self.mod.schema_uses
            )
            if not already:
                self.mod.schema_uses.append(
                    SchemaUse(node.value, node.lineno, node.col_offset)
                )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self._resolve(dotted_name(node))
        if resolved == "os.environ":
            for fn in self._targets():
                fn.clock_reads.append(
                    ClockRead(
                        resolved,
                        node.lineno,
                        node.col_offset,
                        self._source_suppressed(node.lineno),
                    )
                )
        self.generic_visit(node)

    def _extract_stream(self, arg: ast.expr) -> Optional[StreamUse]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return StreamUse(arg.value, False, arg.lineno, arg.col_offset)
        if isinstance(arg, ast.Name) and arg.id in self.mod.consts:
            return StreamUse(
                self.mod.consts[arg.id], False, arg.lineno, arg.col_offset
            )
        if isinstance(arg, ast.JoinedStr):
            parts: List[str] = []
            for value in arg.values:
                if isinstance(value, ast.Constant):
                    parts.append(str(value.value))
                elif isinstance(value, ast.FormattedValue) and isinstance(
                    value.value, ast.Name
                ) and value.value.id in self.mod.consts:
                    parts.append(self.mod.consts[value.value.id])
                else:
                    parts.append("*")
            pattern = "".join(parts)
            return StreamUse(pattern, "*" in pattern, arg.lineno, arg.col_offset)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        resolved = self._resolve(dotted)
        raw = resolved or dotted or ""
        if (
            dotted
            and dotted.startswith("self.")
            and dotted.count(".") == 1
            and self.class_stack
        ):
            raw = ".".join(
                [self.mod.name, self.class_stack[-1], dotted.split(".", 1)[1]]
            )
        unordered = any(_is_unordered(a) for a in node.args)
        if raw:
            for fn in self._targets():
                fn.calls.append(
                    CallSite(raw, node.lineno, node.col_offset, unordered)
                )
        if resolved in WALLCLOCK_CALLS or resolved == "os.getenv":
            for fn in self._targets():
                fn.clock_reads.append(
                    ClockRead(
                        resolved,
                        node.lineno,
                        node.col_offset,
                        self._source_suppressed(node.lineno),
                    )
                )
        # in-place mutation of module state (REP103)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            base = node.func.value
            if isinstance(base, ast.Name):
                if self.func_stack and base.id in self.mod.global_names:
                    self._record_write(base.id, node)
            elif isinstance(base, ast.Attribute):
                self._record_candidate(base, node)
        # .submit(<lambda or locally nested def>, ...)
        is_submit = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "submit"
        ) or (isinstance(node.func, ast.Name) and node.func.id == "submit")
        if is_submit and node.args:
            first = node.args[0]
            if isinstance(first, ast.Lambda):
                self.mod.submit_issues.append(
                    SubmitIssue("lambda", first.lineno, first.col_offset)
                )
            elif (
                isinstance(first, ast.Name)
                and self.local_defs
                and any(first.id in defs for defs in self.local_defs)
            ):
                self.mod.submit_issues.append(
                    SubmitIssue("nested", first.lineno, first.col_offset)
                )
        # named RNG stream extraction
        is_stream_call = (
            isinstance(node.func, ast.Name) and node.func.id in _STREAM_CALLEES
        ) or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _STREAM_CALLEES
        ) or (resolved or "").endswith("generator_from_seed") or (
            dotted == "generator_from_seed"
        )
        if is_stream_call and node.args:
            use = self._extract_stream(node.args[0])
            if use is not None:
                self.mod.stream_uses.append(use)
        # float reduction via builtin sum
        if isinstance(node.func, ast.Name) and node.func.id == "sum":
            if node.args:
                arg = node.args[0]
                if _is_unordered(arg):
                    self.mod.unordered_sums.append(
                        (node.lineno, node.col_offset)
                    )
                if isinstance(arg, ast.Name) and self.func_stack:
                    fn = self.func_stack[-1]
                    if arg.id in fn.params:
                        fn.reduces_params.add(arg.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        # ``for v in p: acc += v`` over a parameter = reduction helper.
        if isinstance(node.iter, ast.Name) and self.func_stack:
            fn = self.func_stack[-1]
            if node.iter.id in fn.params:
                loop_vars = {
                    n.id for n in ast.walk(node.target)
                    if isinstance(n, ast.Name)
                }
                for stmt in ast.walk(node):
                    if (
                        isinstance(stmt, ast.AugAssign)
                        and isinstance(stmt.op, ast.Add)
                        and isinstance(stmt.value, ast.Name)
                        and stmt.value.id in loop_vars
                    ):
                        fn.reduces_params.add(node.iter.id)
        self.generic_visit(node)


class ProjectGraph:
    """The bound whole-program model over one lint run's files."""

    def __init__(self, config) -> None:
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}
        #: qualname -> FunctionInfo across all modules (module bodies
        #: included under ``<mod>.<module>``).
        self.functions: Dict[str, FunctionInfo] = {}
        #: callee qualname -> set of caller qualnames.
        self.callers: Dict[str, Set[str]] = {}
        #: module name -> modules that import it.
        self.dependents: Dict[str, Set[str]] = {}

    # -- construction -----------------------------------------------

    @classmethod
    def build(
        cls,
        entries: Sequence[Tuple[str, str, ast.AST]],
        config,
    ) -> "ProjectGraph":
        """Build and bind a graph from ``(posix_path, source, tree)``."""
        from repro.lint.rules import collect_aliases

        graph = cls(config)
        for path, source, tree in entries:
            name = module_name_for(path)
            mod = ModuleInfo(name=name, path=path, source=source, tree=tree)
            mod.aliases = collect_aliases(tree)
            mod.suppressions = noqa_suppressions(source)
            mod.body = FunctionInfo(
                qualname=f"{name}.<module>",
                module=name,
                path=path,
                line=1,
                col=0,
            )
            # module-level names must be known before the main walk so
            # in-function mutations of them can be recognised.
            for stmt in tree.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            mod.global_names.add(target.id)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(stmt.target, ast.Name):
                        mod.global_names.add(stmt.target.id)
            _ModuleVisitor(mod).visit(tree)
            graph.modules[name] = mod
        graph._bind()
        return graph

    def _bind(self) -> None:
        for name in sorted(self.modules):
            mod = self.modules[name]
            for fn in [*mod.functions.values(), mod.body]:
                self.functions[fn.qualname] = fn
        all_classes: Set[str] = set()
        for mod in self.modules.values():
            all_classes |= mod.classes
        for name in sorted(self.modules):
            mod = self.modules[name]
            # imports -> project deps
            for origin, _, _ in mod.import_sites:
                dep = self._module_prefix(origin)
                if dep and dep != name:
                    mod.deps.add(dep)
                    self.dependents.setdefault(dep, set()).add(name)
            # call sites -> project functions
            for fn in [*mod.functions.values(), mod.body]:
                for site in fn.calls:
                    site.callee = self._bind_call(site.raw, name, all_classes)
                    if site.callee is not None:
                        self.callers.setdefault(site.callee, set()).add(
                            fn.qualname
                        )

    def _module_prefix(self, origin: str) -> Optional[str]:
        parts = origin.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return candidate
        return None

    def _bind_call(
        self, raw: str, module: str, all_classes: Set[str]
    ) -> Optional[str]:
        for candidate in (raw, f"{module}.{raw}"):
            if candidate in self.functions:
                return candidate
            if candidate in all_classes:
                init = f"{candidate}.__init__"
                if init in self.functions:
                    return init
        return None

    # -- queries ----------------------------------------------------

    def iter_functions(self, module: str) -> List[FunctionInfo]:
        mod = self.modules[module]
        out = [mod.functions[q] for q in sorted(mod.functions)]
        out.append(mod.body)
        return out

    def reachable(
        self, entrypoints: Sequence[str]
    ) -> Dict[str, Tuple[str, Tuple[str, ...]]]:
        """Forward closure over call edges from ``entrypoints``.

        Returns ``qualname -> (entrypoint, chain)`` where ``chain`` is
        the call path from the entrypoint to the function.  Entrypoints
        absent from the graph are ignored (fixture trees).
        """
        out: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        queue: List[str] = []
        for ep in sorted(entrypoints):
            if ep in self.functions and ep not in out:
                out[ep] = (ep, (ep,))
                queue.append(ep)
        while queue:
            qual = queue.pop(0)
            entry, chain = out[qual]
            fn = self.functions[qual]
            callees = sorted(
                {s.callee for s in fn.calls if s.callee is not None}
            )
            for callee in callees:
                if callee not in out:
                    out[callee] = (entry, chain + (callee,))
                    queue.append(callee)
        return out

    # -- import-graph condensation (incremental invalidation) -------

    def sccs(self) -> List[Tuple[str, ...]]:
        """Strongly connected components of the import graph, sorted."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        out: List[Tuple[str, ...]] = []

        def strongconnect(v: str) -> None:
            # iterative Tarjan (module graphs are small but cycles and
            # deep chains must not hit the recursion limit)
            work = [(v, iter(sorted(self.modules[v].deps)))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in self.modules:
                        continue
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(self.modules[w].deps))))
                        advanced = True
                        break
                    elif w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    out.append(tuple(sorted(comp)))

        for v in sorted(self.modules):
            if v not in index:
                strongconnect(v)
        return sorted(out)

    def dependency_closure(self, module: str) -> FrozenSet[str]:
        """``module`` plus every project module it transitively imports.

        Computed on the SCC condensation, so import cycles terminate;
        the closure of a cycle member includes the whole cycle.
        """
        if not hasattr(self, "_closures"):
            self._closures: Dict[str, FrozenSet[str]] = {}
            comp_of: Dict[str, Tuple[str, ...]] = {}
            for comp in self.sccs():
                for m in comp:
                    comp_of[m] = comp
            memo: Dict[Tuple[str, ...], FrozenSet[str]] = {}

            def comp_closure(comp: Tuple[str, ...]) -> FrozenSet[str]:
                if comp in memo:
                    return memo[comp]
                memo[comp] = frozenset(comp)  # cycle guard
                acc: Set[str] = set(comp)
                for m in comp:
                    for dep in sorted(self.modules[m].deps):
                        if dep in comp_of and comp_of[dep] != comp:
                            acc |= comp_closure(comp_of[dep])
                memo[comp] = frozenset(acc)
                return memo[comp]

            for comp in self.sccs():
                closure = comp_closure(comp)
                for m in comp:
                    self._closures[m] = closure
        return self._closures.get(module, frozenset({module}))

    def dependents_closure(self, module: str) -> FrozenSet[str]:
        """``module`` plus every module whose dependency closure
        contains it (the set a change to ``module`` invalidates)."""
        out = {
            m for m in self.modules
            if module in self.dependency_closure(m)
        }
        return frozenset(out)
