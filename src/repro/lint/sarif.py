"""SARIF 2.1.0 output for ``repro lint --format sarif``.

Emits a single-run SARIF log whose driver carries the full rule
catalogue (so GitHub code-scanning renders rule help inline) and whose
results point at 1-based line/column regions.  :func:`validate` is a
structural validator for the subset of the 2.1.0 schema this renderer
uses -- CI and the self-check script validate every emitted document
before uploading, so a malformed log can never reach the annotation
step silently.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.rules import PARSE_ERROR_CODE, Rule, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = ("none", "note", "warning", "error")


def render(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> Dict[str, object]:
    """Build the SARIF log object for one lint run."""
    catalogue = list(rules)
    ids = [r.code for r in catalogue]
    if PARSE_ERROR_CODE not in ids:
        ids.insert(0, PARSE_ERROR_CODE)
        catalogue = [_parse_error_rule(), *catalogue]
    index_of = {code: i for i, code in enumerate(ids)}
    results = []
    for v in violations:
        results.append(
            {
                "ruleId": v.code,
                "ruleIndex": index_of.get(v.code, -1),
                "level": "error",
                "message": {"text": f"{v.code} {v.message}"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": v.path},
                            "region": {
                                "startLine": max(1, v.line),
                                "startColumn": v.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    rule_objs = [
        {
            "id": rule.code,
            "name": _pascal(rule.name or rule.code),
            "shortDescription": {"text": rule.summary or rule.code},
        }
        for rule in catalogue
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro#determinism-"
                            "enforcement"
                        ),
                        "rules": rule_objs,
                    }
                },
                "results": results,
            }
        ],
    }


def render_text(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> str:
    return json.dumps(render(violations, rules), indent=2)


def _pascal(name: str) -> str:
    return "".join(part.capitalize() for part in name.split("-") if part)


class _ParseErrorRule(Rule):
    """Unregistered stand-in so REP000 results resolve to a rule."""

    code = PARSE_ERROR_CODE
    name = "parse-error"
    summary = "file failed to parse; no rule can vouch for it"


def _parse_error_rule() -> Rule:
    return _ParseErrorRule()


def validate(doc: object) -> List[str]:
    """Structural 2.1.0 validation; returns a list of problems (empty
    = valid for the subset of the schema this tool emits)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("version") != SARIF_VERSION:
        errors.append(f"version must be {SARIF_VERSION!r}")
    if not isinstance(doc.get("$schema"), str):
        errors.append("$schema must be a string URI")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return [*errors, "runs must be a non-empty array"]
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver", {}) if isinstance(
            run.get("tool"), dict
        ) else {}
        if not isinstance(driver.get("name"), str) or not driver.get("name"):
            errors.append(f"{where}.tool.driver.name missing")
        rules = driver.get("rules", [])
        ids: List[str] = []
        if not isinstance(rules, list):
            errors.append(f"{where}.tool.driver.rules must be an array")
            rules = []
        for j, rule in enumerate(rules):
            if not isinstance(rule, dict) or not isinstance(
                rule.get("id"), str
            ):
                errors.append(f"{where}.tool.driver.rules[{j}].id missing")
                continue
            ids.append(rule["id"])
        if len(ids) != len(set(ids)):
            errors.append(f"{where}: duplicate rule ids")
        results = run.get("results")
        if not isinstance(results, list):
            errors.append(f"{where}.results must be an array")
            continue
        for j, res in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not isinstance(res, dict):
                errors.append(f"{rwhere} is not an object")
                continue
            if not isinstance(res.get("ruleId"), str):
                errors.append(f"{rwhere}.ruleId missing")
            elif ids and res["ruleId"] not in ids:
                errors.append(
                    f"{rwhere}.ruleId {res['ruleId']!r} not in driver rules"
                )
            if res.get("level") not in _LEVELS:
                errors.append(f"{rwhere}.level invalid")
            message = res.get("message")
            if not isinstance(message, dict) or not isinstance(
                message.get("text"), str
            ):
                errors.append(f"{rwhere}.message.text missing")
            locations = res.get("locations")
            if not isinstance(locations, list) or not locations:
                errors.append(f"{rwhere}.locations must be non-empty")
                continue
            for k, loc in enumerate(locations):
                lwhere = f"{rwhere}.locations[{k}]"
                phys = loc.get("physicalLocation") if isinstance(
                    loc, dict
                ) else None
                if not isinstance(phys, dict):
                    errors.append(f"{lwhere}.physicalLocation missing")
                    continue
                art = phys.get("artifactLocation")
                if not isinstance(art, dict) or not isinstance(
                    art.get("uri"), str
                ):
                    errors.append(f"{lwhere}...artifactLocation.uri missing")
                region = phys.get("region")
                if not isinstance(region, dict):
                    errors.append(f"{lwhere}...region missing")
                    continue
                start = region.get("startLine")
                if not isinstance(start, int) or start < 1:
                    errors.append(f"{lwhere}...region.startLine must be >= 1")
    return errors
