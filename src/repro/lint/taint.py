"""Worklist taint propagation over the approximate call graph.

A *source* is a function that performs a tainting operation directly
(for REP101: an unsuppressed wall-clock or environment read).  Taint
propagates **backwards** along call edges -- every caller of a tainted
function is tainted -- until a fixpoint.  The result maps each tainted
function to the call chain that reaches the source, so rule messages
can show exactly how real time launders into the deterministic core.

The propagation is a breadth-first worklist seeded in sorted order, so
chains are shortest-first and byte-stable run to run.  Cycles in the
call graph terminate naturally: a function already tainted is never
re-enqueued.

A noqa at the funnel stops taint at the source: reads whose line is
suppressed (``# repro: noqa[REP002] ...``) never seed the worklist,
which is what makes the sanctioned funnels (``profiler.wall_now``,
``obs.runtime.wall_now``) transparent to REP101.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.lint.graph import ClockRead, ProjectGraph


@dataclass(frozen=True)
class Taint:
    """Why a function is tainted.

    ``chain`` runs from the function itself down to the source
    function; ``read`` is the source's offending operation.
    """

    chain: Tuple[str, ...]
    read: ClockRead

    def render(self, max_hops: int = 4) -> str:
        hops = self.chain
        if len(hops) > max_hops:
            shown = [*hops[: max_hops - 1], "...", hops[-1]]
        else:
            shown = list(hops)
        return " -> ".join(shown)


def clock_sources(graph: ProjectGraph) -> Dict[str, ClockRead]:
    """Functions with a direct, *unsuppressed* wall-clock/env read."""
    out: Dict[str, ClockRead] = {}
    for name in sorted(graph.modules):
        for fn in graph.iter_functions(name):
            for read in fn.clock_reads:
                if read.suppressed:
                    continue
                if fn.qualname not in out:
                    out[fn.qualname] = read
    return out


def propagate(
    graph: ProjectGraph, sources: Dict[str, ClockRead]
) -> Dict[str, Taint]:
    """Backward-propagate taint from ``sources`` to every caller."""
    tainted: Dict[str, Taint] = {}
    queue: deque[str] = deque()
    for qual in sorted(sources):
        tainted[qual] = Taint(chain=(qual,), read=sources[qual])
        queue.append(qual)
    while queue:
        qual = queue.popleft()
        taint = tainted[qual]
        for caller in sorted(graph.callers.get(qual, ())):
            if caller in tainted:
                continue
            tainted[caller] = Taint(
                chain=(caller, *taint.chain), read=taint.read
            )
            queue.append(caller)
    return tainted
