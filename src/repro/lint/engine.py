"""The lint engine: parse, run rules, apply suppressions.

:class:`LintEngine` binds a :class:`~repro.lint.config.LintConfig` to
the rule registry and walks files/directories.  Suppression is by
inline comment on the offending line::

    x = rng or np.random.default_rng(0)  # repro: noqa[REP007]

``# repro: noqa`` without a bracket suppresses every code on that line.
Files that fail to parse report the pseudo-code ``REP000`` so syntax
errors cannot hide real violations.

In the files listed by ``noqa-justify`` (the sanctioned wall-clock
funnels), every noqa must name its code(s) and carry a justification
after the bracket; violations report REP011 and are checked on the raw
source line *after* suppression filtering -- a noqa comment can never
silence the audit of itself.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.lint.config import LintConfig
from repro.lint.rules import (
    PARSE_ERROR_CODE,
    FileContext,
    Rule,
    Violation,
    all_rules,
    collect_aliases,
    path_matches,
)

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Engine-driven rule: unjustified/blanket noqa in audited files.
NOQA_JUSTIFY_CODE = "REP011"

#: ``None`` means "all codes suppressed on this line".
_Suppressions = Dict[int, Optional[FrozenSet[str]]]


def _suppressions(source: str) -> _Suppressions:
    out: _Suppressions = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return out


class LintEngine:
    """Run the registered rules over sources, files, or trees."""

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config or LintConfig()

    def rules(self) -> List[Rule]:
        """The rules enabled by this engine's select/ignore config."""
        selected = []
        for rule in all_rules():
            if self.config.select and rule.code not in self.config.select:
                continue
            if rule.code in self.config.ignore:
                continue
            selected.append(rule)
        return selected

    def lint_source(self, source: str, path: str = "<string>") -> List[Violation]:
        """Lint one in-memory module; ``path`` scopes path-gated rules."""
        posix = Path(path).as_posix()
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            return [
                Violation(
                    code=PARSE_ERROR_CODE,
                    message=f"syntax error: {exc.msg}",
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                )
            ]
        ctx = FileContext(posix, self.config)
        ctx.aliases = collect_aliases(tree)
        found: List[Violation] = []
        for rule in self.rules():
            if not rule.applies_to(ctx):
                continue
            found.extend(rule.check(tree, ctx))
        suppressed = _suppressions(source)
        kept = []
        for v in found:
            codes = suppressed.get(v.line, frozenset())
            if codes is None or v.code in codes:
                continue
            kept.append(v)
        # REP011 runs after suppression filtering on purpose: the noqa
        # comments it audits must not be able to suppress it.
        kept.extend(self._noqa_violations(source, posix))
        kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return kept

    def _noqa_violations(self, source: str, posix: str) -> List[Violation]:
        """REP011: audit noqa comments in ``noqa-justify`` files."""
        if NOQA_JUSTIFY_CODE not in {r.code for r in self.rules()}:
            return []
        if not path_matches(posix, self.config.noqa_justify):
            return []
        out: List[Violation] = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _NOQA_RE.search(line)
            if not m:
                continue
            codes = m.group("codes")
            justification = line[m.end():].strip()
            if codes is None:
                out.append(
                    Violation(
                        code=NOQA_JUSTIFY_CODE,
                        message=(
                            "blanket '# repro: noqa' in an audited file "
                            "suppresses every rule; name the code(s) "
                            "(e.g. noqa[REP002]) and justify after the "
                            "bracket"
                        ),
                        path=posix,
                        line=lineno,
                        col=m.start(),
                    )
                )
            elif not justification:
                pretty = ",".join(
                    c.strip() for c in codes.split(",") if c.strip()
                )
                out.append(
                    Violation(
                        code=NOQA_JUSTIFY_CODE,
                        message=(
                            f"noqa[{pretty}] in an audited file needs a "
                            "justification after the bracket saying why "
                            "the exemption is sound"
                        ),
                        path=posix,
                        line=lineno,
                        col=m.start(),
                    )
                )
        return out

    def lint_file(self, path: Path) -> List[Violation]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Violation(
                    code=PARSE_ERROR_CODE,
                    message=f"cannot read file: {exc}",
                    path=path.as_posix(),
                    line=1,
                    col=0,
                )
            ]
        return self.lint_source(source, path=path.as_posix())

    def walk(self, paths: Iterable[Path]) -> List[Path]:
        """Expand directories into sorted ``.py`` files, minus excludes."""
        out: List[Path] = []
        for path in paths:
            if path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                candidates = [path]
            for c in candidates:
                if path_matches(c.as_posix(), self.config.exclude):
                    continue
                out.append(c)
        return out

    def lint_paths(self, paths: Sequence[Path]) -> List[Violation]:
        """Lint files and/or directory trees; results are sorted."""
        out: List[Violation] = []
        for path in self.walk(paths):
            out.extend(self.lint_file(path))
        out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return out


def lint_source(
    source: str, path: str = "<string>", config: Optional[LintConfig] = None
) -> List[Violation]:
    """Module-level convenience wrapper over :class:`LintEngine`."""
    return LintEngine(config).lint_source(source, path=path)


def lint_paths(
    paths: Sequence[Path], config: Optional[LintConfig] = None
) -> List[Violation]:
    """Lint files/trees with the given (or default) config."""
    return LintEngine(config).lint_paths(paths)
