"""The lint engine: parse, build the project graph, run rules, suppress.

:class:`LintEngine` binds a :class:`~repro.lint.config.LintConfig` to
the rule registry and walks files/directories.  Two rule scopes run in
one pass:

* **file** rules (REP001..REP011) see one parsed module at a time;
* **project** rules (REP101..REP106, :mod:`repro.lint.rules_xmod`) see
  the whole-program :class:`~repro.lint.graph.ProjectGraph` -- symbol
  table, import graph, approximate call graph -- built from every file
  in the run.

Suppression is by inline comment on the offending line::

    x = rng or np.random.default_rng(0)  # repro: noqa[REP007]

``# repro: noqa`` without a bracket suppresses every code on that line,
for project-scope violations exactly as for file-scope ones.  Files
that fail to parse report the pseudo-code ``REP000`` so syntax errors
cannot hide real violations.

In the files listed by ``noqa-justify`` (the sanctioned wall-clock
funnels), every noqa must name its code(s) and carry a justification
after the bracket; violations report REP011 and are checked on the raw
source line *after* suppression filtering -- a noqa comment can never
silence the audit of itself.

With a :class:`~repro.lint.cache.LintCache` attached, file-scope
results replay from cache when a file's import-dependency closure is
byte-identical to the previous run; project rules are recomputed every
run from the (always freshly built) graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.lint import cache as cache_mod
from repro.lint.config import LintConfig
from repro.lint.graph import ProjectGraph, module_name_for
from repro.lint.rules import (
    NOQA_RE,
    PARSE_ERROR_CODE,
    FileContext,
    Rule,
    Violation,
    all_rules,
    collect_aliases,
    noqa_suppressions,
    path_matches,
)

# the cross-module pack registers its rules on import
from repro.lint import rules_xmod  # noqa: F401  (registration side effect)

#: Engine-driven rule: unjustified/blanket noqa in audited files.
NOQA_JUSTIFY_CODE = "REP011"

#: ``None`` means "all codes suppressed on this line".
_Suppressions = Dict[int, Optional[FrozenSet[str]]]

#: Backwards-compatible alias (pre-graph engine exposed this here).
_suppressions = noqa_suppressions


@dataclass
class LintReport:
    """One lint run: sorted violations plus cache accounting."""

    violations: List[Violation]
    files: List[Path]
    #: Files whose rule pass actually ran this invocation.
    analyzed: int = 0
    #: Files whose file-scope results replayed from the cache.
    cached: int = 0


@dataclass
class _Entry:
    """One walked file, parsed (or its REP000 failure)."""

    path: Path
    posix: str
    source: str = ""
    tree: Optional[ast.AST] = None
    parse_violations: List[Violation] = field(default_factory=list)


class LintEngine:
    """Run the registered rules over sources, files, or trees."""

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config or LintConfig()

    def rules(self) -> List[Rule]:
        """The rules enabled by this engine's select/ignore config."""
        selected = []
        for rule in all_rules():
            if self.config.select and rule.code not in self.config.select:
                continue
            if rule.code in self.config.ignore:
                continue
            selected.append(rule)
        return selected

    def file_rules(self) -> List[Rule]:
        return [r for r in self.rules() if r.scope == "file"]

    def project_rules(self) -> List[Rule]:
        return [r for r in self.rules() if r.scope == "project"]

    # -- single-file front door -------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> List[Violation]:
        """Lint one in-memory module; ``path`` scopes path-gated rules.

        Project rules run over a one-module graph, so cross-module
        checks with purely local evidence (a duplicated literal, a
        worker-reachable global write when the entrypoint is local)
        still fire.
        """
        posix = Path(path).as_posix()
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            return [
                Violation(
                    code=PARSE_ERROR_CODE,
                    message=f"syntax error: {exc.msg}",
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                )
            ]
        found = self._file_scope(source, posix, tree)
        graph = ProjectGraph.build([(posix, source, tree)], self.config)
        found.extend(self._project_scope(graph))
        found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return found

    # -- rule passes ------------------------------------------------

    def _file_scope(
        self, source: str, posix: str, tree: ast.AST
    ) -> List[Violation]:
        """File rules + suppression filtering + the REP011 audit."""
        ctx = FileContext(posix, self.config)
        ctx.aliases = collect_aliases(tree)
        found: List[Violation] = []
        for rule in self.file_rules():
            if not rule.applies_to(ctx):
                continue
            found.extend(rule.check(tree, ctx))
        kept = _apply_suppressions(found, noqa_suppressions(source))
        # REP011 runs after suppression filtering on purpose: the noqa
        # comments it audits must not be able to suppress it.
        kept.extend(self._noqa_violations(source, posix))
        return kept

    def _project_scope(self, graph: ProjectGraph) -> List[Violation]:
        """Project rules over the graph, suppressed per owning file."""
        suppressions: Dict[str, _Suppressions] = {
            mod.path: mod.suppressions for mod in graph.modules.values()
        }
        out: List[Violation] = []
        seen = set()
        for rule in self.project_rules():
            for v in rule.check_project(graph):
                codes = suppressions.get(v.path, {}).get(
                    v.line, frozenset()
                )
                if codes is None or v.code in codes:
                    continue
                key = (v.code, v.path, v.line, v.col)
                if key in seen:
                    continue
                seen.add(key)
                out.append(v)
        return out

    def _noqa_violations(self, source: str, posix: str) -> List[Violation]:
        """REP011: audit noqa comments in ``noqa-justify`` files."""
        if NOQA_JUSTIFY_CODE not in {r.code for r in self.rules()}:
            return []
        if not path_matches(posix, self.config.noqa_justify):
            return []
        out: List[Violation] = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = NOQA_RE.search(line)
            if not m:
                continue
            codes = m.group("codes")
            justification = line[m.end():].strip()
            if codes is None:
                out.append(
                    Violation(
                        code=NOQA_JUSTIFY_CODE,
                        message=(
                            "blanket '# repro: noqa' in an audited file "
                            "suppresses every rule; name the code(s) "
                            "(e.g. noqa[REP002]) and justify after the "
                            "bracket"
                        ),
                        path=posix,
                        line=lineno,
                        col=m.start(),
                    )
                )
            elif not justification:
                pretty = ",".join(
                    c.strip() for c in codes.split(",") if c.strip()
                )
                out.append(
                    Violation(
                        code=NOQA_JUSTIFY_CODE,
                        message=(
                            f"noqa[{pretty}] in an audited file needs a "
                            "justification after the bracket saying why "
                            "the exemption is sound"
                        ),
                        path=posix,
                        line=lineno,
                        col=m.start(),
                    )
                )
        return out

    # -- tree-walking front door ------------------------------------

    def lint_file(self, path: Path) -> List[Violation]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Violation(
                    code=PARSE_ERROR_CODE,
                    message=f"cannot read file: {exc}",
                    path=path.as_posix(),
                    line=1,
                    col=0,
                )
            ]
        return self.lint_source(source, path=path.as_posix())

    def walk(self, paths: Iterable[Path]) -> List[Path]:
        """Expand directories into sorted ``.py`` files, minus excludes."""
        out: List[Path] = []
        for path in paths:
            if path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                candidates = [path]
            for c in candidates:
                if path_matches(c.as_posix(), self.config.exclude):
                    continue
                out.append(c)
        return out

    def run(
        self,
        paths: Sequence[Path],
        cache: Optional["cache_mod.LintCache"] = None,
    ) -> LintReport:
        """Lint files/trees in one whole-program pass.

        Every file is read and parsed (the graph needs all of them);
        the per-file rule pass is skipped for files whose cache key --
        config digest plus the content hashes of their import-dependency
        closure -- matches the attached ``cache``.
        """
        entries: List[_Entry] = []
        for path in self.walk(paths):
            entry = _Entry(path=path, posix=path.as_posix())
            try:
                entry.source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                entry.parse_violations = [
                    Violation(
                        code=PARSE_ERROR_CODE,
                        message=f"cannot read file: {exc}",
                        path=entry.posix,
                        line=1,
                        col=0,
                    )
                ]
                entries.append(entry)
                continue
            try:
                entry.tree = ast.parse(entry.source, filename=entry.posix)
            except SyntaxError as exc:
                entry.parse_violations = [
                    Violation(
                        code=PARSE_ERROR_CODE,
                        message=f"syntax error: {exc.msg}",
                        path=entry.posix,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                    )
                ]
            entries.append(entry)

        parsed = [e for e in entries if e.tree is not None]
        graph = ProjectGraph.build(
            [(e.posix, e.source, e.tree) for e in parsed], self.config
        )

        cfg_digest = cache_mod.config_digest(
            self.config, [r.code for r in self.rules()]
        )
        hashes = {
            module_name_for(e.posix): cache_mod.file_digest(e.source)
            for e in parsed
        }

        report = LintReport(violations=[], files=[e.path for e in entries])
        for entry in entries:
            if entry.tree is None:
                report.violations.extend(entry.parse_violations)
                report.analyzed += 1
                continue
            key = None
            if cache is not None:
                closure = graph.dependency_closure(
                    module_name_for(entry.posix)
                )
                key = cache_mod.closure_key(
                    cfg_digest,
                    [hashes[m] for m in sorted(closure) if m in hashes],
                )
                hit = cache.get(entry.posix, key)
                if hit is not None:
                    report.violations.extend(hit)
                    report.cached += 1
                    continue
            found = self._file_scope(entry.source, entry.posix, entry.tree)
            report.analyzed += 1
            if cache is not None and key is not None:
                cache.put(entry.posix, key, found)
            report.violations.extend(found)

        report.violations.extend(self._project_scope(graph))
        report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        if cache is not None:
            cache.prune([e.posix for e in entries])
            cache.save()
        return report

    def lint_paths(self, paths: Sequence[Path]) -> List[Violation]:
        """Lint files and/or directory trees; results are sorted."""
        return self.run(paths).violations


def _apply_suppressions(
    found: Sequence[Violation], suppressed: _Suppressions
) -> List[Violation]:
    kept = []
    for v in found:
        codes = suppressed.get(v.line, frozenset())
        if codes is None or v.code in codes:
            continue
        kept.append(v)
    return kept


def lint_source(
    source: str, path: str = "<string>", config: Optional[LintConfig] = None
) -> List[Violation]:
    """Module-level convenience wrapper over :class:`LintEngine`."""
    return LintEngine(config).lint_source(source, path=path)


def lint_paths(
    paths: Sequence[Path], config: Optional[LintConfig] = None
) -> List[Violation]:
    """Lint files/trees with the given (or default) config."""
    return LintEngine(config).lint_paths(paths)
