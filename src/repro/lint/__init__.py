"""``repro lint``: determinism & correctness static analysis.

An AST-based rule engine that machine-enforces this reproduction's
determinism contract -- named RNG streams only, no wall-clock in the
simulated core, no unordered iteration feeding decisions, no silently
swallowed errors.  See :mod:`repro.lint.rules` for the rule catalogue
(``REP001``..``REP010``) and :mod:`repro.lint.cli` for the CLI.

Typical library use::

    from repro.lint import LintEngine, load_config

    engine = LintEngine(load_config())
    violations = engine.lint_paths([Path("src")])
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine, lint_paths, lint_source
from repro.lint.rules import REGISTRY, Rule, Violation, all_rules

__all__ = [
    "LintConfig",
    "LintEngine",
    "REGISTRY",
    "Rule",
    "Violation",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_config",
]
