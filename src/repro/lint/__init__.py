"""``repro lint``: determinism & correctness static analysis.

An AST-based rule engine that machine-enforces this reproduction's
determinism contract -- named RNG streams only, no wall-clock in the
simulated core, no unordered iteration feeding decisions, no silently
swallowed errors.  Two rule scopes share one registry:

* file-scope rules (``REP001``..``REP011``, :mod:`repro.lint.rules`)
  see one module at a time;
* project-scope rules (``REP101``..``REP106``,
  :mod:`repro.lint.rules_xmod`) see the whole-program
  :class:`~repro.lint.graph.ProjectGraph` -- symbol table, import
  graph, approximate call graph -- plus taint propagation
  (:mod:`repro.lint.taint`) over it.

The CLI (:mod:`repro.lint.cli`) adds SARIF 2.1.0 output
(:mod:`repro.lint.sarif`), an incremental cache
(:mod:`repro.lint.cache`) and mechanical autofixes
(:mod:`repro.lint.fixes`).

Typical library use::

    from repro.lint import LintEngine, load_config

    engine = LintEngine(load_config())
    violations = engine.lint_paths([Path("src")])
"""

from repro.lint.cache import LintCache
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine, LintReport, lint_paths, lint_source
from repro.lint.fixes import FIXABLE_CODES, fix_source
from repro.lint.graph import ProjectGraph
from repro.lint.rules import REGISTRY, Rule, Violation, all_rules

__all__ = [
    "FIXABLE_CODES",
    "LintCache",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "ProjectGraph",
    "REGISTRY",
    "Rule",
    "Violation",
    "all_rules",
    "fix_source",
    "lint_paths",
    "lint_source",
    "load_config",
]
