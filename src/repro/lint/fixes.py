"""``repro lint --fix``: autofixes for the mechanical rule subset.

Only rewrites whose semantics are fully determined by the AST are
attempted:

* **REP003** (unordered iteration): wrap the offending iterable in
  ``sorted(...)`` -- ``for x in {a, b}:`` becomes
  ``for x in sorted({a, b}):``; ``d.keys()`` becomes ``sorted(d)``.
* **REP005** (mutable default): the standard sentinel rewrite --
  the default becomes ``None`` and a guard is inserted at the top of
  the body (after the docstring)::

      def f(xs=[]):          def f(xs=None):
          ...          ->        if xs is None:
                                     xs = []
                                 ...

Fixes are applied bottom-up from exact AST spans, then the file is
re-linted and the pass repeats until it converges, so the result is
idempotent: running ``--fix`` on its own output changes nothing, and
on an already-clean tree it is byte-identical a no-op
(``scripts/lint_selfcheck.sh`` asserts exactly that).

Violations suppressed with ``# repro: noqa[...]`` are never touched --
an intentional, annotated hit stays as written.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.rules import Violation

#: Codes the fixer knows how to rewrite.
FIXABLE_CODES = ("REP003", "REP005")

#: Maximum convergence passes per file (each pass fixes every
#: currently-reported violation, so 2 is the norm).
_MAX_PASSES = 10

#: (line0, col_start, col_end, replacement) -- single-line span edit.
_Edit = Tuple[int, int, int, str]

#: (line0, text) -- full line(s) inserted *before* line0.
_Insert = Tuple[int, str]


def fix_source(
    source: str, path: str = "<string>", config: Optional[LintConfig] = None
) -> Tuple[str, int]:
    """Return ``(fixed_source, number_of_violations_fixed)``."""
    total = 0
    for _ in range(_MAX_PASSES):
        new, n = _fix_once(source, path, config)
        if n == 0 or new == source:
            break
        source = new
        total += n
    return source, total


def _fix_once(
    source: str, path: str, config: Optional[LintConfig]
) -> Tuple[str, int]:
    from repro.lint.engine import LintEngine

    engine = LintEngine(config)
    violations = [
        v for v in engine.lint_source(source, path=path)
        if v.code in FIXABLE_CODES
    ]
    if not violations:
        return source, 0
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    lines = source.splitlines(keepends=True)
    edits: List[_Edit] = []
    inserts: List[_Insert] = []
    fixed = 0
    for v in violations:
        if v.code == "REP003":
            done = _fix_unordered_iteration(tree, lines, v, edits)
        else:
            done = _fix_mutable_default(tree, lines, v, edits, inserts)
        if done:
            fixed += 1
    if not fixed:
        return source, 0
    _apply(lines, edits, inserts)
    return "".join(lines), fixed


def _segment(lines: List[str], node: ast.expr) -> Optional[str]:
    """Source text of a single-line node, or ``None``."""
    if node.end_lineno != node.lineno or node.end_col_offset is None:
        return None
    return lines[node.lineno - 1][node.col_offset: node.end_col_offset]


def _fix_unordered_iteration(
    tree: ast.AST, lines: List[str], v: Violation, edits: List[_Edit]
) -> bool:
    target: Optional[ast.expr] = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            it = node.iter
            if it.lineno == v.line and it.col_offset == v.col:
                target = it
                break
    if target is None or _segment(lines, target) is None:
        return False
    seg = _segment(lines, target)
    if (
        isinstance(target, ast.Call)
        and isinstance(target.func, ast.Attribute)
        and target.func.attr == "keys"
        and not target.args
    ):
        obj = _segment(lines, target.func.value)
        if obj is None:
            return False
        replacement = f"sorted({obj})"
    else:
        replacement = f"sorted({seg})"
    edits.append(
        (target.lineno - 1, target.col_offset, target.end_col_offset,
         replacement)
    )
    return True


def _fix_mutable_default(
    tree: ast.AST,
    lines: List[str],
    v: Violation,
    edits: List[_Edit],
    inserts: List[_Insert],
) -> bool:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        pairs = _defaults_with_args(node)
        for arg_name, default in pairs:
            if default.lineno != v.line or default.col_offset != v.col:
                continue
            # the guard re-creates the original default verbatim, so
            # non-empty displays ([0] * 3 is not flagged; [1, 2] is)
            # keep their contents
            ctor = _segment(lines, default)
            if ctor is None:
                return False
            body = node.body
            insert_at = body[0]
            if (
                isinstance(insert_at, ast.Expr)
                and isinstance(insert_at.value, ast.Constant)
                and isinstance(insert_at.value.value, str)
                and len(body) > 1
            ):
                insert_at = body[1]
            if insert_at.lineno == node.lineno:
                return False  # one-liner def; leave it to a human
            indent = " " * insert_at.col_offset
            guard = (
                f"{indent}if {arg_name} is None:\n"
                f"{indent}    {arg_name} = {ctor}\n"
            )
            edits.append(
                (default.lineno - 1, default.col_offset,
                 default.end_col_offset, "None")
            )
            inserts.append((insert_at.lineno - 1, guard))
            return True
    return False


def _defaults_with_args(node) -> List[Tuple[str, ast.expr]]:
    """Pair each default expression with the argument it belongs to."""
    args = node.args
    out: List[Tuple[str, ast.expr]] = []
    positional = [*args.posonlyargs, *args.args]
    for arg, default in zip(
        positional[len(positional) - len(args.defaults):], args.defaults
    ):
        out.append((arg.arg, default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            out.append((arg.arg, default))
    return out


def _apply(
    lines: List[str], edits: List[_Edit], inserts: List[_Insert]
) -> None:
    for line0, start, end, replacement in sorted(
        edits, key=lambda e: (e[0], e[1]), reverse=True
    ):
        text = lines[line0]
        lines[line0] = text[:start] + replacement + text[end:]
    for line0, text in sorted(inserts, key=lambda i: i[0], reverse=True):
        lines.insert(line0, text)
