"""The two-tier RUBiS deployment on the simulated testbed.

A :class:`RUBiSApplication` wires a web-tier guest and a database-tier
guest (placed on any PMs of a :class:`~repro.cluster.Cluster`) to a
:class:`~repro.rubis.client.ClientPopulation`:

* client requests arrive at the web PM's NIC (external inbound);
* the web tier answers clients (external outbound flow) and queries the
  DB tier (inter- or intra-PM flow, depending on placement);
* the DB tier returns result rows and pays disk I/O per query.

Throughput is closed-loop: when either tier's granted CPU falls short
of its demand, completed requests scale down proportionally -- this is
what degrades under the overhead-unaware placement of Figure 10.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.cluster import Cluster
from repro.rubis.client import ClientPopulation
from repro.rubis.requests import BIDDING_MIX, mix_demand
from repro.sim.process import PeriodicProcess
from repro.xen.machine import WORKLOAD_PRIORITY
from repro.xen.network import Flow, external_host
from repro.xen.vm import GuestVM


class RUBiSApplication:
    """One web + DB RUBiS instance driven by an emulated client pool."""

    def __init__(
        self,
        cluster: Cluster,
        web_vm: GuestVM,
        db_vm: GuestVM,
        clients: ClientPopulation,
        *,
        name: str = "rubis",
        mix=BIDDING_MIX,
    ) -> None:
        if web_vm.name == db_vm.name:
            raise ValueError("web and DB tiers must be distinct VMs")
        self.cluster = cluster
        self.web_vm = web_vm
        self.db_vm = db_vm
        self.clients = clients
        self.name = name
        self.mix = mix
        self._resp_flow = web_vm.add_flow(
            Flow(src=web_vm.name, dst=external_host(f"{name}-clients"))
        )
        self._query_flow = web_vm.add_flow(
            Flow(src=web_vm.name, dst=db_vm.name)
        )
        self._result_flow = db_vm.add_flow(
            Flow(src=db_vm.name, dst=web_vm.name)
        )
        self._proc: Optional[PeriodicProcess] = None
        self._t0: Optional[float] = None
        self._prev_offered: Optional[float] = None
        self._prev_web_demand = 0.0
        self._prev_db_demand = 0.0
        #: Per-second series, aligned: offered and completed requests/s.
        self.times: List[float] = []
        self.offered_rps: List[float] = []
        self.completed_rps: List[float] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin driving the tiers (1 Hz updates)."""
        if self._proc is not None and not self._proc.stopped:
            raise RuntimeError(f"{self.name} already started")
        self._t0 = self.cluster.sim.now
        self._proc = PeriodicProcess(
            self.cluster.sim, 1.0, self._tick, priority=WORKLOAD_PRIORITY
        )

    def stop(self) -> None:
        """Stop driving; tiers keep their last demand."""
        if self._proc is not None:
            self._proc.stop()
            self._proc = None

    # -- per-second update -------------------------------------------------

    def _tick(self, now: float) -> None:
        assert self._t0 is not None
        rel = now - self._t0

        # Score the *previous* second first: the current grants reflect
        # the demand written at the last tick, so this is the consistent
        # (offered, demand, grant) pairing.
        if self._prev_offered is not None:
            completed = self._prev_offered * min(
                1.0,
                self._satisfaction(self.web_vm, self._prev_web_demand),
                self._satisfaction(self.db_vm, self._prev_db_demand),
            )
            self.times.append(now)
            self.offered_rps.append(self._prev_offered)
            self.completed_rps.append(completed)

        offered = self.clients.request_rate(rel)
        demand = mix_demand(offered, self.mix)

        # Tier demands for the coming second.
        self.web_vm.demand.cpu_pct = demand.web_cpu_pct
        self.db_vm.demand.cpu_pct = demand.db_cpu_pct
        self.db_vm.demand.io_bps = demand.db_io_bps
        self._resp_flow.kbps = demand.web_to_client_kbps
        self._query_flow.kbps = demand.web_to_db_kbps
        self._result_flow.kbps = demand.db_to_web_kbps

        # Client request traffic arrives at whatever PM currently hosts
        # the web tier (placement may move it).
        web_pm = self.cluster.pm_of(self.web_vm.name)
        key = f"app-{self.name}:{self.web_vm.name}"
        for pm in self.cluster.pms.values():
            pm.external_inbound_kbps.pop(key, None)
        web_pm.external_inbound_kbps[key] = demand.client_to_web_kbps

        self._prev_offered = offered
        self._prev_web_demand = self.web_vm.cpu_demand_total
        self._prev_db_demand = self.db_vm.cpu_demand_total

    @staticmethod
    def _satisfaction(vm: GuestVM, demand: float) -> float:
        if demand <= 0:
            return 1.0
        return min(1.0, vm.granted.cpu_pct / demand)

    # -- results -----------------------------------------------------------

    @property
    def total_offered(self) -> float:
        """Requests offered since start (1 s bins)."""
        return float(sum(self.offered_rps))

    @property
    def total_completed(self) -> float:
        """Requests completed since start."""
        return float(sum(self.completed_rps))

    def mean_throughput(self) -> float:
        """Mean completed requests/s (Figure 10(a)'s metric)."""
        if not self.completed_rps:
            raise RuntimeError(f"{self.name} has no samples yet")
        return self.total_completed / len(self.completed_rps)

    def total_time(self) -> float:
        """Seconds needed to process the offered work at the achieved
        rate (Figure 10(b)'s metric): offered volume / throughput."""
        tput = self.mean_throughput()
        if tput <= 0:
            return float("inf")
        return self.total_offered / tput
