"""Open-loop client arrivals for fleet-scale load.

The paper's RUBiS drive is *closed-loop*: a fixed population of
clients, each waiting out a think time before its next request
(:class:`repro.rubis.client.ClientPopulation`).  That model is faithful
at 7 PMs but does not transport to a datacenter: at 10^5 - 10^6
concurrent users the population is effectively infinite and, as the
web-workload characterization literature observes (Wang et al., see
PAPERS.md), aggregate arrivals decouple from individual sessions --
the fleet sees an *open-loop* arrival rate that follows the diurnal
profile regardless of how fast the servers answer.

:class:`OpenLoopArrivals` is that profile: a deterministic, analytic
function of simulated time (warm-up ramp plus a sinusoidal wave around
the plateau), with no RNG of its own -- stochasticity lives in the
per-PM demand noise so the arrival curve is identical on every shard
of a fleet run.  ``concurrency(t)`` scales the paper's client ramp to
``peak_clients``; ``request_rate(t)`` converts it through the familiar
think-time law ``lambda = N / Z``; ``load_factor(t)`` normalizes to
the peak for use as a global demand multiplier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class OpenLoopArrivals:
    """Deterministic open-loop arrival profile (ramp + diurnal wave)."""

    #: Plateau concurrency -- the fleet experiment runs this at 1e5-1e6.
    peak_clients: float = 100_000.0
    #: Mean think time between a user's requests (paper Section VI-B).
    think_time_s: float = 6.0
    #: Linear warm-up: concurrency reaches the plateau at ``ramp_s``.
    ramp_s: float = 120.0
    #: Relative amplitude of the post-ramp sinusoidal wave.
    wave_amplitude: float = 0.06
    #: Wave period in seconds (co-prime-ish with the tick lattice).
    wave_period_s: float = 331.0

    def __post_init__(self) -> None:
        if self.peak_clients <= 0:
            raise ValueError("peak_clients must be positive")
        if self.think_time_s <= 0:
            raise ValueError("think_time_s must be positive")
        if self.ramp_s < 0:
            raise ValueError("ramp_s must be >= 0")
        if not 0.0 <= self.wave_amplitude < 1.0:
            raise ValueError("wave_amplitude must be in [0, 1)")
        if self.wave_period_s <= 0:
            raise ValueError("wave_period_s must be positive")

    def concurrency(self, t: float) -> float:
        """Concurrent users at time ``t`` (0 before the run starts)."""
        if t <= 0.0:
            return 0.0
        ramp = 1.0 if self.ramp_s == 0 else min(1.0, t / self.ramp_s)
        wave = 1.0 + self.wave_amplitude * math.sin(
            2.0 * math.pi * t / self.wave_period_s
        )
        return self.peak_clients * ramp * wave

    def request_rate(self, t: float) -> float:
        """Aggregate arrival rate in requests/s (``N(t) / Z``)."""
        return self.concurrency(t) / self.think_time_s

    def load_factor(self, t: float) -> float:
        """Concurrency normalized to the plateau (0 .. 1+amplitude)."""
        return self.concurrency(t) / self.peak_clients
