"""RUBiS request classes and per-request resource costs.

RUBiS (the Rice University Bidding System) is the eBay-like two-tier
benchmark the paper validates its model on: a web front-end VM and a
database back-end VM serve a browsing/bidding mix from emulated clients.
We model the standard bidding mix's main interaction classes, each with
per-request costs on both tiers:

* web CPU (request parsing, templating) and DB CPU (query execution),
* client<->web traffic (request in, HTML response out),
* web<->db traffic (SQL out, result rows back),
* DB disk reads for queries that miss the buffer pool.

The absolute numbers are synthetic but sized so a 500-client load
produces the operating region the paper describes (web tier
bandwidth-heavy and CPU-loaded, DB tier lighter on bandwidth -- the
stated reason PM2's prediction errors run higher than PM1's).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class RequestClass:
    """Cost profile of one RUBiS interaction type.

    CPU costs are in percent-seconds of one VCPU per request (i.e. a
    cost of 0.5 occupies 0.5 % of a VCPU at 1 request/s); traffic in Kb
    per request; disk in blocks per request.
    """

    name: str
    #: Fraction of the workload mix (all classes sum to 1).
    mix: float
    web_cpu_pct_s: float
    db_cpu_pct_s: float
    req_kb: float
    resp_kb: float
    query_kb: float
    result_kb: float
    db_io_blocks: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.mix <= 1.0:
            raise ValueError("mix must be in [0, 1]")
        for f in (
            "web_cpu_pct_s",
            "db_cpu_pct_s",
            "req_kb",
            "resp_kb",
            "query_kb",
            "result_kb",
            "db_io_blocks",
        ):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be >= 0")


#: The RUBiS bidding mix (browsing-heavy, per the standard workload).
#: Costs are sized so the paper's largest scenario -- three RUBiS web
#: tiers sharing one PM at 700 clients each (Figure 9) -- stays inside
#: the PM's effective capacity, like the authors' testbed did.
BIDDING_MIX: Tuple[RequestClass, ...] = (
    RequestClass(
        name="browse_categories",
        mix=0.30,
        web_cpu_pct_s=0.68,
        db_cpu_pct_s=0.185,
        req_kb=1.3,
        resp_kb=7.2,
        query_kb=0.64,
        result_kb=2.4,
        db_io_blocks=0.15,
    ),
    RequestClass(
        name="search_items",
        mix=0.25,
        web_cpu_pct_s=0.82,
        db_cpu_pct_s=0.37,
        req_kb=1.45,
        resp_kb=8.8,
        query_kb=0.96,
        result_kb=3.6,
        db_io_blocks=0.40,
    ),
    RequestClass(
        name="view_item",
        mix=0.25,
        web_cpu_pct_s=0.59,
        db_cpu_pct_s=0.23,
        req_kb=1.2,
        resp_kb=6.4,
        query_kb=0.48,
        result_kb=2.0,
        db_io_blocks=0.20,
    ),
    RequestClass(
        name="place_bid",
        mix=0.12,
        web_cpu_pct_s=0.91,
        db_cpu_pct_s=0.51,
        req_kb=1.6,
        resp_kb=4.8,
        query_kb=1.1,
        result_kb=1.0,
        db_io_blocks=0.50,
    ),
    RequestClass(
        name="register_buy",
        mix=0.08,
        web_cpu_pct_s=1.05,
        db_cpu_pct_s=0.60,
        req_kb=1.75,
        resp_kb=4.0,
        query_kb=1.3,
        result_kb=0.8,
        db_io_blocks=0.60,
    ),
)


@dataclass(frozen=True)
class TierDemand:
    """Aggregate per-second demand induced by a request rate."""

    web_cpu_pct: float
    db_cpu_pct: float
    client_to_web_kbps: float
    web_to_client_kbps: float
    web_to_db_kbps: float
    db_to_web_kbps: float
    db_io_bps: float


def mix_demand(
    rps: float, mix: Tuple[RequestClass, ...] = BIDDING_MIX
) -> TierDemand:
    """Demand vector for ``rps`` requests/s under a workload mix."""
    if rps < 0:
        raise ValueError("request rate must be >= 0")
    total_mix = sum(rc.mix for rc in mix)
    if abs(total_mix - 1.0) > 1e-6:
        raise ValueError(f"mix fractions sum to {total_mix}, expected 1.0")
    web_cpu = db_cpu = c2w = w2c = w2d = d2w = io = 0.0
    for rc in mix:
        r = rps * rc.mix
        web_cpu += r * rc.web_cpu_pct_s
        db_cpu += r * rc.db_cpu_pct_s
        c2w += r * rc.req_kb
        w2c += r * rc.resp_kb
        w2d += r * rc.query_kb
        d2w += r * rc.result_kb
        io += r * rc.db_io_blocks
    return TierDemand(
        web_cpu_pct=web_cpu,
        db_cpu_pct=db_cpu,
        client_to_web_kbps=c2w,
        web_to_client_kbps=w2c,
        web_to_db_kbps=w2d,
        db_to_web_kbps=d2w,
        db_io_bps=io,
    )


def per_request_cost(mix: Tuple[RequestClass, ...] = BIDDING_MIX) -> Dict[str, float]:
    """Mix-weighted mean cost of one request (capacity planning)."""
    d = mix_demand(1.0, mix)
    return {
        "web_cpu_pct_s": d.web_cpu_pct,
        "db_cpu_pct_s": d.db_cpu_pct,
        "client_to_web_kb": d.client_to_web_kbps,
        "web_to_client_kb": d.web_to_client_kbps,
        "web_to_db_kb": d.web_to_db_kbps,
        "db_to_web_kb": d.db_to_web_kbps,
        "db_io_blocks": d.db_io_bps,
    }
