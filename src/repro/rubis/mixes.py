"""Alternative RUBiS workload mixes.

RUBiS ships two standard transition tables: the **bidding mix** (15 %
read-write interactions; the default used by the paper's evaluation and
by :data:`repro.rubis.requests.BIDDING_MIX`) and the **browsing mix**
(read-only).  The browsing mix shifts load toward the web tier (heavier
page traffic, no write transactions, fewer DB blocks), which changes
the overhead profile the model must predict -- useful for testing the
model on workloads outside its RUBiS-bidding comfort zone.
"""

from __future__ import annotations

from typing import Tuple

from repro.rubis.requests import BIDDING_MIX, RequestClass

#: The read-only browsing mix: no bids/buys, more browsing and viewing.
BROWSING_MIX: Tuple[RequestClass, ...] = (
    RequestClass(
        name="browse_categories",
        mix=0.42,
        web_cpu_pct_s=0.68,
        db_cpu_pct_s=0.185,
        req_kb=1.3,
        resp_kb=7.2,
        query_kb=0.64,
        result_kb=2.4,
        db_io_blocks=0.12,
    ),
    RequestClass(
        name="search_items",
        mix=0.30,
        web_cpu_pct_s=0.82,
        db_cpu_pct_s=0.37,
        req_kb=1.45,
        resp_kb=8.8,
        query_kb=0.96,
        result_kb=3.6,
        db_io_blocks=0.35,
    ),
    RequestClass(
        name="view_item",
        mix=0.28,
        web_cpu_pct_s=0.59,
        db_cpu_pct_s=0.23,
        req_kb=1.2,
        resp_kb=6.4,
        query_kb=0.48,
        result_kb=2.0,
        db_io_blocks=0.18,
    ),
)

#: Named mixes for configuration surfaces.
MIXES = {
    "bidding": BIDDING_MIX,
    "browsing": BROWSING_MIX,
}


def get_mix(name: str) -> Tuple[RequestClass, ...]:
    """Look a standard mix up by name."""
    try:
        return MIXES[name]
    except KeyError:
        raise ValueError(
            f"unknown RUBiS mix {name!r}; have {sorted(MIXES)}"
        ) from None
