"""RUBiS application model (paper Section VI evaluation workload)."""

from repro.rubis.app import RUBiSApplication
from repro.rubis.client import (
    DEFAULT_THINK_TIME_S,
    PAPER_CLIENT_COUNTS,
    ClientPopulation,
)
from repro.rubis.mixes import BROWSING_MIX, MIXES, get_mix
from repro.rubis.openloop import OpenLoopArrivals
from repro.rubis.requests import (
    BIDDING_MIX,
    RequestClass,
    TierDemand,
    mix_demand,
    per_request_cost,
)

__all__ = [
    "BIDDING_MIX",
    "BROWSING_MIX",
    "MIXES",
    "get_mix",
    "ClientPopulation",
    "DEFAULT_THINK_TIME_S",
    "OpenLoopArrivals",
    "PAPER_CLIENT_COUNTS",
    "RequestClass",
    "RUBiSApplication",
    "TierDemand",
    "mix_demand",
    "per_request_cost",
]
