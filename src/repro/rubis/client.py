"""The emulated client population.

The paper's workload generator loads RUBiS "between 300 and 700
simultaneous clients" and creates "a variable rate workload ... by
increasing the number of clients over a ten minute period".
:class:`ClientPopulation` models a closed-loop population: each client
issues a request, waits out a think time, and repeats, so the offered
request rate is ``active_clients / think_time``.  Within a run the
active count ramps up to the nominal level and carries a small periodic
wave plus noise, giving the per-second variability the prediction
experiments need.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

#: RUBiS-style mean think time between requests, seconds.
DEFAULT_THINK_TIME_S = 6.0
#: Client counts evaluated by the paper (Figures 7-9 curves).
PAPER_CLIENT_COUNTS = (300, 400, 500, 600, 700)


class ClientPopulation:
    """A closed-loop client population with ramp-up and variability.

    Parameters
    ----------
    nominal_clients:
        Target population (the figure legend value).
    think_time_s:
        Mean think time; the offered rate is ``active / think``.
    ramp_s:
        Seconds to ramp from 60 % to 100 % of the nominal population.
    wave_amplitude:
        Relative amplitude of the slow sinusoidal load wave.
    wave_period_s:
        Period of the load wave.
    rng:
        Generator for per-second arrival noise; omit for a noiseless
        population.
    noise_rel:
        Relative std-dev of per-second request-rate noise.
    """

    def __init__(
        self,
        nominal_clients: int,
        *,
        think_time_s: float = DEFAULT_THINK_TIME_S,
        ramp_s: float = 120.0,
        wave_amplitude: float = 0.08,
        wave_period_s: float = 97.0,
        rng: Optional[np.random.Generator] = None,
        noise_rel: float = 0.03,
    ) -> None:
        if nominal_clients <= 0:
            raise ValueError("nominal_clients must be positive")
        if think_time_s <= 0:
            raise ValueError("think_time_s must be positive")
        if ramp_s < 0:
            raise ValueError("ramp_s must be >= 0")
        if not 0.0 <= wave_amplitude < 1.0:
            raise ValueError("wave_amplitude must be in [0, 1)")
        if noise_rel < 0:
            raise ValueError("noise_rel must be >= 0")
        self.nominal_clients = nominal_clients
        self.think_time_s = think_time_s
        self.ramp_s = ramp_s
        self.wave_amplitude = wave_amplitude
        self.wave_period_s = wave_period_s
        self._rng = rng
        self.noise_rel = noise_rel

    def active_clients(self, t: float) -> float:
        """Deterministic active-population curve at time ``t``."""
        if t < 0:
            raise ValueError("time must be >= 0")
        if self.ramp_s > 0:
            ramp = 0.6 + 0.4 * min(1.0, t / self.ramp_s)
        else:
            ramp = 1.0
        wave = 1.0 + self.wave_amplitude * math.sin(
            2.0 * math.pi * t / self.wave_period_s
        )
        return self.nominal_clients * ramp * wave

    def request_rate(self, t: float) -> float:
        """Offered requests/s at time ``t`` (noise applied if seeded)."""
        rate = self.active_clients(t) / self.think_time_s
        if self._rng is not None and self.noise_rel > 0:
            rate *= float(
                np.exp(self._rng.normal(0.0, self.noise_rel))
            )
        return max(0.0, rate)

    @property
    def steady_rate(self) -> float:
        """Nominal offered rate once fully ramped (requests/s)."""
        return self.nominal_clients / self.think_time_s
